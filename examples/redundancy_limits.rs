//! The Section 4.3 limit study: how much of a program's redundancy can
//! instruction reuse capture at all?
//!
//! Classifies every result-producing dynamic instruction as unique /
//! repeated / derivable (Figure 8), splits repeated instructions by
//! input readiness (Figure 9), and reports the reusable fraction of the
//! total redundancy (Figure 10 — the paper finds 84–97%).
//!
//! ```text
//! cargo run --release --example redundancy_limits
//! ```

use vpir::redundancy::{analyze, LimitConfig};
use vpir::stats::AsciiBars;
use vpir::workloads::{Bench, Scale};

fn main() {
    println!("bench     unique  repeated  derivable  | prod-reused  far  not-ready | reusable%");
    let mut bars = AsciiBars::new(40, 100.0);
    for bench in Bench::ALL {
        let program = bench.program(Scale::of(4));
        let study = analyze(&program, 1_000_000, LimitConfig::default());
        let (u, r, d, _) = study.classification_pct();
        let (pr, far, near) = study.readiness_pct();
        println!(
            "{:<9} {u:>5.1}%  {r:>7.1}%  {d:>8.1}%  | {pr:>10.1}% {far:>4.1}% {near:>9.1}% | {:>7.1}%",
            bench.name(),
            study.reusable_pct(),
        );
        bars.bar(bench.name(), study.reusable_pct());
    }
    println!("\nreusable fraction of total redundancy:\n{}", bars.render());
}
