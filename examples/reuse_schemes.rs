//! Ablation: the three reuse-test schemes.
//!
//! * `Sn` — operand names + valid bits (ISCA'97 baseline)
//! * `SnD` — names + dependence chains (ISCA'97 `S_{n+d}`)
//! * `SnDValues` — the MICRO'98 augmentation with stored operand values
//!   and entry re-validation (the scheme the paper evaluates)
//!
//! ```text
//! cargo run --release --example reuse_schemes
//! ```

use vpir::core::{CoreConfig, IrConfig, RunLimits, Simulator};
use vpir::reuse::{RbConfig, ReuseScheme};
use vpir::workloads::{Bench, Scale};

fn main() {
    println!("bench     scheme      reuse%  addr%  speedup");
    for bench in [Bench::M88ksim, Bench::Compress, Bench::Go] {
        let program = bench.program(Scale::of(4));
        let mut base = Simulator::new(&program, CoreConfig::table1());
        let base_ipc = base.run(RunLimits::cycles(4_000_000)).ipc();
        for scheme in [ReuseScheme::Sn, ReuseScheme::SnD, ReuseScheme::SnDValues] {
            let ir = IrConfig {
                rb: RbConfig {
                    scheme,
                    ..RbConfig::table1()
                },
                ..IrConfig::table1()
            };
            let mut sim = Simulator::new(&program, CoreConfig::with_ir(ir));
            let s = sim.run(RunLimits::cycles(4_000_000)).clone();
            println!(
                "{:<9} {:<10}  {:>5.1}  {:>5.1}  {:>7.3}",
                bench.name(),
                format!("{scheme:?}"),
                s.reuse_result_rate(),
                s.reuse_addr_rate(),
                s.ipc() / base_ipc,
            );
        }
    }
    println!(
        "\nStored operand values (SnDValues) both catch more reuse and avoid\n\
         the name-based schemes' invalidation on same-value overwrites."
    );
}
