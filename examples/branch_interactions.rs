//! The paper's central sensitivity result: how branches with
//! value-speculative operands are resolved (SB vs NSB) decides whether
//! value prediction helps or hurts.
//!
//! With an accurate predictor (`VP_Magic`) speculative resolution (SB)
//! wins — branches resolve sooner and spurious squashes are rare. With
//! an inaccurate one (`VP_LVP`) SB floods the pipeline with spurious
//! branch squashes and non-speculative resolution (NSB) is safer.
//!
//! ```text
//! cargo run --release --example branch_interactions
//! ```

use vpir::core::{BranchResolution, CoreConfig, RunLimits, Simulator, VpConfig};
use vpir::workloads::{Bench, Scale};

fn main() {
    let bench = Bench::Perl; // high spurious-misprediction potential
    let program = bench.program(Scale::of(4));

    let mut base = Simulator::new(&program, CoreConfig::table1());
    let base_stats = base.run(RunLimits::cycles(4_000_000)).clone();
    println!(
        "{} base: IPC {:.3}, {} branch squashes\n",
        bench.name(),
        base_stats.ipc(),
        base_stats.squashes
    );

    println!("predictor  resolution  speedup  squashes  spurious  res-latency");
    for (name, vp) in [
        ("magic", VpConfig::magic()),
        ("lvp  ", VpConfig::lvp()),
    ] {
        for br in [BranchResolution::Sb, BranchResolution::Nsb] {
            let cfg = CoreConfig::with_vp(vp.with_branches(br));
            let mut sim = Simulator::new(&program, cfg);
            let s = sim.run(RunLimits::cycles(4_000_000)).clone();
            println!(
                "{name}      {:>4}       {:>6.3}  {:>8}  {:>8}  {:>10.2}",
                match br {
                    BranchResolution::Sb => "SB",
                    BranchResolution::Nsb => "NSB",
                },
                s.ipc() / base_stats.ipc(),
                s.squashes,
                s.spurious_squashes,
                s.branch_resolution_latency(),
            );
        }
    }
    println!(
        "\nThe paper's conclusion: no single branch-resolution policy wins —\n\
         low value-misprediction rates favour SB, high rates favour NSB."
    );
}
