//! Visualising Figure 2: the flow of a dependent chain through the base
//! pipeline, the VP pipeline, and the IR pipeline.
//!
//! Prints a per-instruction timeline (`D` dispatch, `i` issue,
//! `x` complete, `C` commit) for the same dependent chain under each
//! mechanism — the collapse of the chain under VP and IR is visible in
//! the commit column.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```

use vpir::core::{CoreConfig, IrConfig, RunLimits, Simulator, VpConfig};
use vpir::isa::asm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Warm the structures with one pass, then trace the second pass of
    // the dependent chain I -> J -> K (as in the paper's Figure 2).
    let program = asm::assemble(
        "        li   r6, 30
         outer:  li   r1, 5
                 add  r2, r1, r1      # I
                 add  r3, r2, r2      # J  (depends on I)
                 add  r4, r3, r3      # K  (depends on J)
                 add  r20, r20, r4
                 addi r6, r6, -1
                 bne  r6, r0, outer
                 halt",
    )?;

    for (name, config) in [
        ("base superscalar", CoreConfig::table1()),
        ("with VP (magic)", CoreConfig::with_vp(VpConfig::magic())),
        ("with IR (Sn+d)", CoreConfig::with_ir(IrConfig::table1())),
    ] {
        let mut sim = Simulator::new(&program, config);
        // Warm up: run most of the loop, then trace a steady-state slice.
        sim.run(vpir::core::RunLimits::insts(150));
        sim.enable_trace(8);
        sim.run(RunLimits::insts(sim.stats().committed + 24));
        println!("=== {name}\n{}", sim.trace().expect("tracing enabled").render());
    }
    Ok(())
}
