//! Quickstart: assemble a program, run it on the base machine, then with
//! value prediction and with instruction reuse, and compare.
//!
//! The workload is deliberately multiplier-bound: four serial multiplies
//! per iteration on the Table 1 machine's single multiply unit. Value
//! prediction breaks the dependences but every multiply still *executes*
//! to verify its prediction, so the multiplier stays saturated and VP
//! gains nothing — while instruction reuse skips the executions entirely
//! (the paper's Section 3.2 resource-demand argument, in one loop).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vpir::core::{CoreConfig, IrConfig, RunLimits, Simulator, VpConfig};
use vpir::isa::{asm, Machine, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop that recomputes the same values every iteration — the
    // redundancy both mechanisms exploit.
    let program = asm::assemble(
        "        .data 0x200000
         vals:   .word 6, 2, 8, 2
                 .text
                 li   r6, 2000
         outer:  la   r7, vals
                 lw   r3, 0(r7)
                 mul  r4, r3, r3      # serial multiply chain:
                 mul  r5, r4, r3      # 3 cycles each on the base machine,
                 mul  r9, r5, r4      # collapsed by VP and IR
                 mul  r10, r9, r5
                 add  r20, r20, r10
                 addi r6, r6, -1
                 bne  r6, r0, outer
                 halt",
    )?;

    // Golden model: the functional interpreter.
    let mut machine = Machine::new(&program);
    machine.run(1_000_000)?;
    println!(
        "functional: {} instructions, r20 = {}",
        machine.icount,
        machine.regs.read(Reg::int(20))
    );

    // The paper's Table 1 machine, in its three personalities.
    for (name, config) in [
        ("base      ", CoreConfig::table1()),
        ("VP (magic)", CoreConfig::with_vp(VpConfig::magic())),
        ("IR (Sn+d) ", CoreConfig::with_ir(IrConfig::table1())),
    ] {
        let mut sim = Simulator::new(&program, config);
        let stats = sim.run(RunLimits::unbounded()).clone();
        assert_eq!(
            sim.arch_regs().read(Reg::int(20)),
            machine.regs.read(Reg::int(20)),
            "timing simulation must match the golden model"
        );
        println!(
            "{name}: {:>6} cycles  IPC {:.2}  reused {:>5}  predicted {:>5}",
            stats.cycles,
            stats.ipc(),
            stats.reused_full,
            stats.result_pred_correct,
        );
    }
    Ok(())
}
