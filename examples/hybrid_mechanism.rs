//! Beyond the paper: the hybrid its conclusion calls for.
//!
//! > "We feel, that will help in designing other techniques (possibly
//! > hybrid of VP and IR) that exploit the redundancy in programs more
//! > profitably."
//!
//! The hybrid runs the non-speculative reuse test first; instructions
//! that miss in the reuse buffer fall back to value prediction. Reused
//! results are validated early (no verification, no execution); only the
//! predicted remainder is value-speculative.
//!
//! ```text
//! cargo run --release --example hybrid_mechanism
//! ```

use vpir::core::{CoreConfig, IrConfig, RunLimits, Simulator, VpConfig, VpKind};
use vpir::workloads::{Bench, Scale};

fn run(program: &vpir::isa::Program, config: CoreConfig) -> vpir::core::SimStats {
    let mut sim = Simulator::new(program, config);
    sim.run(RunLimits::cycles(4_000_000)).clone()
}

fn main() {
    println!("bench     base-IPC  VP     IR     hybrid  (speedups; hybrid reuse%+pred%)");
    for bench in Bench::ALL {
        let program = bench.program(Scale::of(4));
        let base = run(&program, CoreConfig::table1());
        let vp = run(&program, CoreConfig::with_vp(VpConfig::magic()));
        let ir = run(&program, CoreConfig::with_ir(IrConfig::table1()));
        let hybrid = run(
            &program,
            CoreConfig::with_hybrid(VpConfig::magic(), IrConfig::table1()),
        );
        println!(
            "{:<9} {:>7.3}  {:>5.3}  {:>5.3}  {:>6.3}  ({:.1}% reused + {:.1}% predicted)",
            bench.name(),
            base.ipc(),
            vp.ipc() / base.ipc(),
            ir.ipc() / base.ipc(),
            hybrid.ipc() / base.ipc(),
            hybrid.reuse_result_rate(),
            hybrid.vp_result_rate(),
        );
    }

    // A stride predictor captures the "derivable" slice the paper's
    // Figure 8 identifies — useful inside the hybrid for induction chains.
    println!("\nwith a stride predictor in the hybrid:");
    for bench in [Bench::Ijpeg, Bench::Compress] {
        let program = bench.program(Scale::of(4));
        let base = run(&program, CoreConfig::table1());
        let stride_vp = VpConfig {
            kind: VpKind::Stride,
            ..VpConfig::magic()
        };
        let hybrid = run(
            &program,
            CoreConfig::with_hybrid(stride_vp, IrConfig::table1()),
        );
        println!(
            "{:<9} hybrid(stride) speedup {:.3}  ({:.1}% reused + {:.1}% predicted)",
            bench.name(),
            hybrid.ipc() / base.ipc(),
            hybrid.reuse_result_rate(),
            hybrid.vp_result_rate(),
        );
    }
}
