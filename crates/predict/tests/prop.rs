//! Property-based tests for the value predictors.

use proptest::prelude::*;

use vpir_predict::{
    LastValuePredictor, MagicPredictor, StridePredictor, ValuePredictor, VptConfig,
};

fn cfg() -> VptConfig {
    VptConfig {
        entries: 64,
        assoc: 4,
        confidence_threshold: 2,
    }
}

proptest! {
    /// Magic never predicts a value it has not been trained with.
    #[test]
    fn magic_only_predicts_stored_values(
        trains in proptest::collection::vec((0u64..16, 0u64..8), 1..100),
        probes in proptest::collection::vec((0u64..16, 0u64..8), 1..30),
    ) {
        let mut vp = MagicPredictor::new(cfg());
        let mut seen: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
            std::collections::HashMap::new();
        for (pc, v) in &trains {
            let pc = 0x1000 + pc * 4;
            vp.train(pc, *v);
            seen.entry(pc).or_default().insert(*v);
        }
        for (pc, oracle) in &probes {
            let pc = 0x1000 + pc * 4;
            if let Some(p) = vp.predict(pc, Some(*oracle)) {
                prop_assert!(
                    seen.get(&pc).is_some_and(|s| s.contains(&p)),
                    "magic invented {p} for {pc:#x}"
                );
            }
        }
    }

    /// Magic's oracle selection picks the correct value whenever it is
    /// among the confident stored instances.
    #[test]
    fn magic_oracle_selection_is_exact(values in proptest::collection::vec(0u64..4, 8..40)) {
        let mut vp = MagicPredictor::new(cfg());
        // Train every value in the (small) domain to confidence.
        for v in &values {
            vp.train(0x10, *v);
        }
        for v in &values {
            vp.train(0x10, *v);
        }
        // Any value that is stored + confident must be selected exactly.
        for v in 0u64..4 {
            if let Some(p) = vp.predict(0x10, Some(v)) {
                // Either the oracle value (if stored) or a stored fallback.
                prop_assert!(p < 4);
            }
        }
    }

    /// A constant stream makes every predictor confident and exact.
    #[test]
    fn constant_stream_predicts_exactly(pc in 0u64..64, value in any::<u64>()) {
        let pc = 0x1000 + pc * 4;
        let mut magic = MagicPredictor::new(cfg());
        let mut lvp = LastValuePredictor::new(cfg());
        let mut stride = StridePredictor::new(cfg());
        for _ in 0..6 {
            magic.train(pc, value);
            lvp.train(pc, value);
            stride.train(pc, value);
        }
        prop_assert_eq!(magic.predict(pc, Some(value)), Some(value));
        prop_assert_eq!(lvp.predict(pc, None), Some(value));
        prop_assert_eq!(stride.predict(pc, None), Some(value));
    }

    /// Stride tracks any affine sequence exactly after warm-up.
    #[test]
    fn stride_tracks_affine_sequences(
        start in any::<u64>(),
        step in -1000i64..1000,
        len in 5u64..40,
    ) {
        prop_assume!(step != 0);
        let mut vp = StridePredictor::new(cfg());
        let mut hits = 0;
        let mut total = 0;
        for i in 0..len {
            let v = start.wrapping_add((step as u64).wrapping_mul(i));
            // Two-delta warm-up: allocate, observe delta, promote it,
            // then reach the confidence threshold — 4 trainings.
            if i >= 4 {
                total += 1;
                if vp.predict(0x20, None) == Some(v) {
                    hits += 1;
                }
            }
            vp.train(0x20, v);
        }
        prop_assert_eq!(hits, total, "stride must be exact after warm-up");
    }

    /// Prediction never mutates training state: two probes in a row give
    /// the same answer.
    #[test]
    fn predict_is_idempotent(trains in proptest::collection::vec((0u64..8, 0u64..6), 1..60)) {
        let mut magic = MagicPredictor::new(cfg());
        let mut stride = StridePredictor::new(cfg());
        for (pc, v) in &trains {
            let pc = 0x1000 + pc * 4;
            magic.train(pc, *v);
            stride.train(pc, *v);
        }
        for pc in (0u64..8).map(|p| 0x1000 + p * 4) {
            prop_assert_eq!(magic.predict(pc, None), magic.predict(pc, None));
            prop_assert_eq!(stride.predict(pc, None), stride.predict(pc, None));
        }
    }

    /// Lookup/prediction statistics stay consistent.
    #[test]
    fn stats_monotone(events in proptest::collection::vec((0u64..8, 0u64..6, any::<bool>()), 1..80)) {
        let mut vp = LastValuePredictor::new(cfg());
        for (pc, v, is_train) in events {
            let pc = 0x1000 + pc * 4;
            if is_train {
                vp.train(pc, v);
            } else {
                vp.predict(pc, None);
            }
            let s = vp.stats();
            prop_assert!(s.predictions <= s.lookups);
            prop_assert!(s.allocations <= s.trainings);
        }
    }
}
