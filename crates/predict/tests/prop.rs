//! Property-based tests for the value predictors.

use vpir_predict::{
    LastValuePredictor, MagicPredictor, StridePredictor, ValuePredictor, VptConfig,
};
use vpir_testkit::check;

fn cfg() -> VptConfig {
    VptConfig {
        entries: 64,
        assoc: 4,
        confidence_threshold: 2,
    }
}

/// Magic never predicts a value it has not been trained with.
#[test]
fn magic_only_predicts_stored_values() {
    check("magic_only_predicts_stored_values", 256, |rng| {
        let mut vp = MagicPredictor::new(cfg());
        let mut seen: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
            std::collections::HashMap::new();
        for _ in 0..rng.gen_range(1usize..100) {
            let pc = 0x1000 + rng.gen_range(0u64..16) * 4;
            let v = rng.gen_range(0u64..8);
            vp.train(pc, v);
            seen.entry(pc).or_default().insert(v);
        }
        for _ in 0..rng.gen_range(1usize..30) {
            let pc = 0x1000 + rng.gen_range(0u64..16) * 4;
            let oracle = rng.gen_range(0u64..8);
            if let Some(p) = vp.predict(pc, Some(oracle)) {
                assert!(
                    seen.get(&pc).is_some_and(|s| s.contains(&p)),
                    "magic invented {p} for {pc:#x}"
                );
            }
        }
    });
}

/// Magic's oracle selection picks the correct value whenever it is
/// among the confident stored instances.
#[test]
fn magic_oracle_selection_is_exact() {
    check("magic_oracle_selection_is_exact", 128, |rng| {
        let values: Vec<u64> = (0..rng.gen_range(8usize..40))
            .map(|_| rng.gen_range(0u64..4))
            .collect();
        let mut vp = MagicPredictor::new(cfg());
        // Train every value in the (small) domain to confidence.
        for v in &values {
            vp.train(0x10, *v);
        }
        for v in &values {
            vp.train(0x10, *v);
        }
        // Any value that is stored + confident must be selected exactly.
        for v in 0u64..4 {
            if let Some(p) = vp.predict(0x10, Some(v)) {
                // Either the oracle value (if stored) or a stored fallback.
                assert!(p < 4);
            }
        }
    });
}

/// A constant stream makes every predictor confident and exact.
#[test]
fn constant_stream_predicts_exactly() {
    check("constant_stream_predicts_exactly", 128, |rng| {
        let pc = 0x1000 + rng.gen_range(0u64..64) * 4;
        let value = rng.gen_u64();
        let mut magic = MagicPredictor::new(cfg());
        let mut lvp = LastValuePredictor::new(cfg());
        let mut stride = StridePredictor::new(cfg());
        for _ in 0..6 {
            magic.train(pc, value);
            lvp.train(pc, value);
            stride.train(pc, value);
        }
        assert_eq!(magic.predict(pc, Some(value)), Some(value));
        assert_eq!(lvp.predict(pc, None), Some(value));
        assert_eq!(stride.predict(pc, None), Some(value));
    });
}

/// Stride tracks any affine sequence exactly after warm-up.
#[test]
fn stride_tracks_affine_sequences() {
    check("stride_tracks_affine_sequences", 256, |rng| {
        let start = rng.gen_u64();
        let step = rng.gen_range(-1000i64..1000);
        if step == 0 {
            return;
        }
        let len = rng.gen_range(5u64..40);
        let mut vp = StridePredictor::new(cfg());
        let mut hits = 0;
        let mut total = 0;
        for i in 0..len {
            let v = start.wrapping_add((step as u64).wrapping_mul(i));
            // Two-delta warm-up: allocate, observe delta, promote it,
            // then reach the confidence threshold — 4 trainings.
            if i >= 4 {
                total += 1;
                if vp.predict(0x20, None) == Some(v) {
                    hits += 1;
                }
            }
            vp.train(0x20, v);
        }
        assert_eq!(hits, total, "stride must be exact after warm-up");
    });
}

/// Prediction never mutates training state: two probes in a row give
/// the same answer.
#[test]
fn predict_is_idempotent() {
    check("predict_is_idempotent", 256, |rng| {
        let mut magic = MagicPredictor::new(cfg());
        let mut stride = StridePredictor::new(cfg());
        for _ in 0..rng.gen_range(1usize..60) {
            let pc = 0x1000 + rng.gen_range(0u64..8) * 4;
            let v = rng.gen_range(0u64..6);
            magic.train(pc, v);
            stride.train(pc, v);
        }
        for pc in (0u64..8).map(|p| 0x1000 + p * 4) {
            assert_eq!(magic.predict(pc, None), magic.predict(pc, None));
            assert_eq!(stride.predict(pc, None), stride.predict(pc, None));
        }
    });
}

/// Lookup/prediction statistics stay consistent.
#[test]
fn stats_monotone() {
    check("stats_monotone", 256, |rng| {
        let mut vp = LastValuePredictor::new(cfg());
        for _ in 0..rng.gen_range(1usize..80) {
            let pc = 0x1000 + rng.gen_range(0u64..8) * 4;
            let v = rng.gen_range(0u64..6);
            if rng.gen_bool(0.5) {
                vp.train(pc, v);
            } else {
                vp.predict(pc, None);
            }
            let s = vp.stats();
            assert!(s.predictions <= s.lookups);
            assert!(s.allocations <= s.trainings);
        }
    });
}
