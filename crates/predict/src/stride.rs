//! A two-delta stride value predictor.
//!
//! The paper's Section 4.3 classifies a slice of results as *derivable* —
//! values that fall on a stride (loop induction variables, walking
//! pointers). A last-value predictor misses every one of them; a stride
//! predictor captures exactly that slice. This implementation uses the
//! classic two-delta scheme (Eickemeyer & Vassiliadis): the stride only
//! updates after the same delta is observed twice, which keeps one-off
//! jumps from polluting a stable stride.

use crate::table::{VptConfig, VptStats};
use crate::ValuePredictor;

#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    tag: u64,
    last: u64,
    /// Committed stride (applied for predictions).
    stride: i64,
    /// Most recently observed delta (promoted to `stride` on repeat).
    pending: i64,
    confidence: u8,
    valid: bool,
    lru: u64,
}

const EMPTY: StrideEntry = StrideEntry {
    tag: 0,
    last: 0,
    stride: 0,
    pending: 0,
    confidence: 0,
    valid: false,
    lru: 0,
};

/// A set-associative two-delta stride predictor.
///
/// # Examples
///
/// ```
/// use vpir_predict::{StridePredictor, ValuePredictor, VptConfig};
/// let mut vp = StridePredictor::new(VptConfig::table1());
/// for v in [10u64, 13, 16, 19] {
///     vp.train(0x1000, v);
/// }
/// assert_eq!(vp.predict(0x1000, None), Some(22));
/// ```
#[derive(Debug, Clone)]
pub struct StridePredictor {
    config: VptConfig,
    sets: Vec<Vec<StrideEntry>>,
    stats: VptStats,
    tick: u64,
}

impl StridePredictor {
    /// Creates an empty predictor with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `assoc`.
    pub fn new(config: VptConfig) -> StridePredictor {
        assert!(config.assoc > 0, "associativity must be positive");
        assert!(
            config.entries > 0 && config.entries.is_multiple_of(config.assoc),
            "entries must be a positive multiple of assoc"
        );
        StridePredictor {
            config,
            sets: vec![vec![EMPTY; config.assoc]; config.sets()],
            stats: VptStats::default(),
            tick: 0,
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) % self.config.sets() as u64) as usize
    }
}

impl ValuePredictor for StridePredictor {
    fn predict(&mut self, pc: u64, _oracle: Option<u64>) -> Option<u64> {
        self.stats.lookups += 1;
        let set = &self.sets[self.set_of(pc)];
        let hit = set
            .iter()
            .find(|e| e.valid && e.tag == pc && e.confidence >= self.config.confidence_threshold)
            .map(|e| e.last.wrapping_add(e.stride as u64));
        if hit.is_some() {
            self.stats.predictions += 1;
        }
        hit
    }

    fn train(&mut self, pc: u64, actual: u64) {
        self.stats.trainings += 1;
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_of(pc);
        let set = &mut self.sets[set_idx];

        if let Some(e) = set.iter_mut().find(|e| e.valid && e.tag == pc) {
            let delta = actual.wrapping_sub(e.last) as i64;
            if delta == e.stride {
                e.confidence = (e.confidence + 1).min(3);
            } else if delta == e.pending {
                // Two-delta promotion: the new stride is established.
                e.stride = delta;
                e.confidence = 1;
            } else {
                e.pending = delta;
                e.confidence = e.confidence.saturating_sub(1);
            }
            e.last = actual;
            e.lru = tick;
            return;
        }
        self.stats.allocations += 1;
        // The set is non-empty (assoc is validated positive at
        // construction); bailing instead of panicking is
        // behavior-identical on the reachable path.
        let Some(victim) = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
        else {
            return;
        };
        *victim = StrideEntry {
            tag: pc,
            last: actual,
            stride: 0,
            pending: 0,
            confidence: 0,
            valid: true,
            lru: tick,
        };
    }

    fn name(&self) -> &'static str {
        "VP_Stride"
    }

    fn stats(&self) -> VptStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp() -> StridePredictor {
        StridePredictor::new(VptConfig {
            entries: 64,
            assoc: 4,
            confidence_threshold: 2,
        })
    }

    #[test]
    fn learns_a_stride() {
        let mut p = vp();
        for v in [100u64, 104, 108, 112] {
            p.train(0x10, v);
        }
        assert_eq!(p.predict(0x10, None), Some(116));
    }

    #[test]
    fn learns_a_negative_stride() {
        let mut p = vp();
        for v in [50u64, 49, 48, 47] {
            p.train(0x10, v);
        }
        assert_eq!(p.predict(0x10, None), Some(46));
    }

    #[test]
    fn constant_value_is_a_zero_stride() {
        let mut p = vp();
        for _ in 0..4 {
            p.train(0x10, 7);
        }
        assert_eq!(p.predict(0x10, None), Some(7));
    }

    #[test]
    fn one_off_jump_does_not_break_a_stable_stride() {
        let mut p = vp();
        for v in [0u64, 4, 8, 12, 16] {
            p.train(0x10, v);
        }
        p.train(0x10, 100); // excursion: confidence drops, stride kept
        p.train(0x10, 104);
        p.train(0x10, 108); // stride 4 re-established around new values
        assert_eq!(p.predict(0x10, None), Some(112));
    }

    #[test]
    fn random_values_never_confident() {
        let mut p = vp();
        for v in [3u64, 17, 2, 91, 44, 8, 63] {
            p.train(0x10, v);
        }
        assert_eq!(p.predict(0x10, None), None);
    }

    #[test]
    fn untrained_pc_predicts_nothing() {
        let mut p = vp();
        p.train(0x10, 4);
        assert_eq!(p.predict(0x20, None), None);
    }

    #[test]
    fn stride_beats_lvp_on_induction_variable() {
        use crate::LastValuePredictor;
        let mut stride = vp();
        let mut lvp = LastValuePredictor::new(VptConfig {
            entries: 64,
            assoc: 4,
            confidence_threshold: 2,
        });
        let mut s_hits = 0;
        let mut l_hits = 0;
        for i in 0..100u64 {
            let v = i * 8;
            if stride.predict(0x40, None) == Some(v) {
                s_hits += 1;
            }
            if lvp.predict(0x40, None) == Some(v) {
                l_hits += 1;
            }
            stride.train(0x40, v);
            lvp.train(0x40, v);
        }
        assert!(s_hits > 90, "stride hits: {s_hits}");
        assert_eq!(l_hits, 0, "LVP cannot track a stride");
    }
}
