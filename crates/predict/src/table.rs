//! The set-associative value prediction table.

/// Geometry and policy of a [`VptTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VptConfig {
    /// Total entries (ways × sets).
    pub entries: usize,
    /// Ways per set — also the maximum instances stored per instruction.
    pub assoc: usize,
    /// Minimum 2-bit confidence (0–3) required to predict.
    pub confidence_threshold: u8,
}

impl VptConfig {
    /// The paper's configuration: 16K entries, 4-way, threshold 2.
    pub fn table1() -> VptConfig {
        VptConfig {
            entries: 16 * 1024,
            assoc: 4,
            confidence_threshold: 2,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.entries / self.assoc
    }
}

/// Lookup/training counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VptStats {
    /// Total prediction lookups.
    pub lookups: u64,
    /// Lookups that produced a prediction.
    pub predictions: u64,
    /// Training updates.
    pub trainings: u64,
    /// Entries newly allocated (capacity misses on training).
    pub allocations: u64,
}

#[derive(Debug, Clone, Copy)]
struct VptWay {
    tag: u64,
    value: u64,
    confidence: u8,
    valid: bool,
    lru: u64,
}

const EMPTY_WAY: VptWay = VptWay {
    tag: 0,
    value: 0,
    confidence: 0,
    valid: false,
    lru: 0,
};

/// A set-associative, LRU table of `(pc, value, confidence)` triples.
///
/// One instruction (PC) may occupy several ways of its set — that is how
/// `VP_Magic` stores multiple unique values. [`VptTable::train_last`]
/// enforces the single-instance discipline of `VP_LVP` instead.
///
/// Storage is one flat `Vec<VptWay>`; set `s` occupies the contiguous
/// slice `[s * assoc, (s + 1) * assoc)`. A lookup touches exactly one
/// cache-friendly stripe and never allocates.
#[derive(Debug, Clone)]
pub struct VptTable {
    config: VptConfig,
    ways: Vec<VptWay>,
    /// `sets - 1` when the set count is a power of two, letting
    /// `set_of` mask instead of divide.
    set_mask: Option<u64>,
    stats: VptStats,
    tick: u64,
}

impl VptTable {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `assoc`.
    pub fn new(config: VptConfig) -> VptTable {
        assert!(config.assoc > 0, "associativity must be positive");
        assert!(
            config.entries > 0 && config.entries.is_multiple_of(config.assoc),
            "entries must be a positive multiple of assoc"
        );
        VptTable {
            config,
            ways: vec![EMPTY_WAY; config.entries],
            set_mask: config
                .sets()
                .is_power_of_two()
                .then(|| config.sets() as u64 - 1),
            stats: VptStats::default(),
            tick: 0,
        }
    }

    /// The table's configuration.
    pub fn config(&self) -> &VptConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> VptStats {
        self.stats
    }

    fn set_of(&self, pc: u64) -> usize {
        match self.set_mask {
            Some(mask) => ((pc >> 2) & mask) as usize,
            None => ((pc >> 2) % self.config.sets() as u64) as usize,
        }
    }

    fn set(&self, pc: u64) -> &[VptWay] {
        let start = self.set_of(pc) * self.config.assoc;
        &self.ways[start..start + self.config.assoc]
    }

    fn set_mut(&mut self, pc: u64) -> &mut [VptWay] {
        let start = self.set_of(pc) * self.config.assoc;
        let assoc = self.config.assoc;
        &mut self.ways[start..start + assoc]
    }

    /// Records a lookup (and whether it produced a prediction).
    pub fn note_lookup(&mut self, predicted: bool) {
        self.stats.lookups += 1;
        if predicted {
            self.stats.predictions += 1;
        }
    }

    /// All confident values stored for `pc`, most confident first
    /// (ties broken towards most recently used).
    pub fn confident_values(&self, pc: u64) -> Vec<u64> {
        let threshold = self.config.confidence_threshold;
        let mut hits: Vec<&VptWay> = self
            .set(pc)
            .iter()
            .filter(|w| w.valid && w.tag == pc && w.confidence >= threshold)
            .collect();
        hits.sort_by(|a, b| b.confidence.cmp(&a.confidence).then(b.lru.cmp(&a.lru)));
        hits.iter().map(|w| w.value).collect()
    }

    /// Oracle selection over the confident values stored for `pc`,
    /// without materializing them (`VP_Magic`'s lookup): the correct
    /// value if stored and confident, else the most confident stored
    /// value (ties towards most recently used), else `None`.
    ///
    /// Equivalent to checking [`Self::confident_values`] for `oracle`
    /// and falling back to its first element, minus the allocation.
    pub fn select_confident(&self, pc: u64, oracle: Option<u64>) -> Option<u64> {
        let threshold = self.config.confidence_threshold;
        let mut best: Option<&VptWay> = None;
        let mut oracle_stored = false;
        for w in self.set(pc) {
            if !(w.valid && w.tag == pc && w.confidence >= threshold) {
                continue;
            }
            if Some(w.value) == oracle {
                oracle_stored = true;
            }
            // `lru` ticks are unique, so (confidence, lru) totally orders
            // the ways of a set — the max is the sort's first element.
            if !best.is_some_and(|b| (b.confidence, b.lru) >= (w.confidence, w.lru)) {
                best = Some(w);
            }
        }
        if oracle_stored {
            return oracle;
        }
        best.map(|w| w.value)
    }

    /// The single stored value for `pc` if it is confident (LVP lookup).
    pub fn last_confident_value(&self, pc: u64) -> Option<u64> {
        self.set(pc)
            .iter()
            .find(|w| w.valid && w.tag == pc)
            .filter(|w| w.confidence >= self.config.confidence_threshold)
            .map(|w| w.value)
    }

    /// Multi-instance training (`VP_Magic`): if `actual` is stored, raise
    /// its confidence; otherwise lower the most confident instance's and
    /// allocate a new way for `actual`.
    pub fn train_multi(&mut self, pc: u64, actual: u64) {
        self.stats.trainings += 1;
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_mut(pc);

        if let Some(way) = set
            .iter_mut()
            .find(|w| w.valid && w.tag == pc && w.value == actual)
        {
            way.confidence = (way.confidence + 1).min(3);
            way.lru = tick;
            return;
        }
        // A stored-but-wrong instance loses confidence (the counter is
        // "incremented or decremented depending on whether prediction is
        // right or wrong").
        if let Some(way) = set
            .iter_mut()
            .filter(|w| w.valid && w.tag == pc)
            .max_by_key(|w| (w.confidence, w.lru))
        {
            way.confidence = way.confidence.saturating_sub(1);
        }
        self.allocate(pc, actual);
    }

    /// Single-instance training (`VP_LVP`): one way per PC; a changed
    /// value decays confidence and replaces the value at zero confidence.
    pub fn train_last(&mut self, pc: u64, actual: u64) {
        self.stats.trainings += 1;
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_mut(pc);

        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == pc) {
            if way.value == actual {
                way.confidence = (way.confidence + 1).min(3);
            } else {
                way.confidence = way.confidence.saturating_sub(1);
                if way.confidence == 0 {
                    way.value = actual;
                }
            }
            way.lru = tick;
            return;
        }
        self.allocate(pc, actual);
    }

    fn allocate(&mut self, pc: u64, value: u64) {
        self.stats.allocations += 1;
        let tick = self.tick;
        // The set is non-empty (assoc is validated positive at
        // construction); bailing instead of panicking is
        // behavior-identical on the reachable path.
        let Some(way) = self
            .set_mut(pc)
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
        else {
            return;
        };
        *way = VptWay {
            tag: pc,
            value,
            confidence: 1,
            valid: true,
            lru: tick,
        };
    }

    /// Number of valid instances currently stored for `pc`.
    pub fn instances(&self, pc: u64) -> usize {
        self.set(pc)
            .iter()
            .filter(|w| w.valid && w.tag == pc)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> VptTable {
        VptTable::new(VptConfig {
            entries: 16,
            assoc: 4,
            confidence_threshold: 2,
        })
    }

    #[test]
    fn multi_stores_up_to_assoc_instances() {
        let mut t = table();
        for v in 0..6u64 {
            t.train_multi(0x100, v);
            t.train_multi(0x100, v); // reach confidence
        }
        assert_eq!(t.instances(0x100), 4, "bounded by associativity");
    }

    #[test]
    fn confident_ordering_most_confident_first() {
        let mut t = table();
        t.train_multi(0x100, 7); // conf 1
        for _ in 0..3 {
            t.train_multi(0x100, 9); // conf 3 (first one decays 7 to 0)
        }
        t.train_multi(0x100, 7); // conf 1
        t.train_multi(0x100, 7); // conf 2
        let vals = t.confident_values(0x100);
        assert_eq!(vals, vec![9, 7]);
    }

    #[test]
    fn wrong_value_decays_confidence_multi() {
        let mut t = table();
        for _ in 0..2 {
            t.train_multi(0x100, 5);
        }
        assert_eq!(t.confident_values(0x100), vec![5]);
        t.train_multi(0x100, 6); // 5 decays to 1, 6 allocated
        assert!(t.confident_values(0x100).is_empty());
    }

    #[test]
    fn lvp_single_way_per_pc() {
        let mut t = table();
        t.train_last(0x100, 1);
        t.train_last(0x100, 1);
        t.train_last(0x100, 2); // decay
        assert_eq!(t.instances(0x100), 1);
    }

    #[test]
    fn distinct_pcs_in_same_set_coexist() {
        let mut t = table(); // 4 sets
        let (a, b) = (0x100u64, 0x100 + 4 * 4); // same set (stride = sets*4)
        t.train_last(a, 10);
        t.train_last(a, 10);
        t.train_last(b, 20);
        t.train_last(b, 20);
        assert_eq!(t.last_confident_value(a), Some(10));
        assert_eq!(t.last_confident_value(b), Some(20));
    }

    #[test]
    fn lru_eviction_on_set_pressure() {
        let mut t = table(); // 4 sets, 4 ways
        let stride = 4 * 4u64; // same-set stride
        for i in 0..5u64 {
            let pc = 0x100 + i * stride;
            t.train_last(pc, i);
        }
        // First PC evicted by the fifth.
        assert_eq!(t.instances(0x100), 0);
        assert_eq!(t.instances(0x100 + 4 * stride), 1);
    }

    #[test]
    #[should_panic(expected = "multiple of assoc")]
    fn bad_geometry_rejected() {
        VptTable::new(VptConfig {
            entries: 10,
            assoc: 4,
            confidence_threshold: 2,
        });
    }
}
