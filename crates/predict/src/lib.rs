//! # vpir-predict — value prediction tables
//!
//! The Value Prediction Table (VPT) of the paper's Figure 1(a) pipeline,
//! in the two flavours studied:
//!
//! * [`MagicPredictor`] (`VP_Magic`, Section 4.1.1) — stores the last *n*
//!   unique results of each instruction with a 2-bit confidence counter
//!   per result. Only confident results are predicted. Selection is
//!   *oracle*: if the correct result is among the stored values it is
//!   selected, otherwise the most confident stored value is. (The scheme
//!   is still realistic — Wang & Franklin's hybrid predictor achieves
//!   accurate selection among *n* buffered values — but the paper uses
//!   oracle selection so the VPT's instance-selection power matches the
//!   reuse buffer's.)
//! * [`LastValuePredictor`] (`VP_LVP`) — the classic Lipasti/Shen last
//!   value predictor: one instance per instruction, predicted when its
//!   confidence is above threshold.
//!
//! Both are views over a common set-associative [`VptTable`]. The paper's
//! configuration is 16K entries, 4-way set-associative, LRU
//! ([`VptConfig::table1`]).
//!
//! # Examples
//!
//! ```
//! use vpir_predict::{LastValuePredictor, ValuePredictor, VptConfig};
//! let mut vp = LastValuePredictor::new(VptConfig::table1());
//! // Train the same result twice to reach the confidence threshold.
//! vp.train(0x1000, 7);
//! vp.train(0x1000, 7);
//! assert_eq!(vp.predict(0x1000, None), Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod stride;
mod table;

pub use stride::StridePredictor;
pub use table::{VptConfig, VptStats, VptTable};

/// A value predictor: predicts instruction results (or effective
/// addresses) by PC.
///
/// `oracle` carries the architecturally correct value when the simulator
/// knows it at prediction time (our pipeline executes at dispatch, like
/// SimpleScalar); only [`MagicPredictor`] uses it, and *only to select
/// among values it has already stored* — it never predicts a value it has
/// not seen.
pub trait ValuePredictor {
    /// Predicts the value produced by the instruction at `pc`, or `None`
    /// if no confident prediction is available.
    fn predict(&mut self, pc: u64, oracle: Option<u64>) -> Option<u64>;

    /// Trains the predictor with the actual value produced at `pc`.
    fn train(&mut self, pc: u64, actual: u64);

    /// A short display name (used by the experiment harness).
    fn name(&self) -> &'static str;

    /// Accumulated statistics.
    fn stats(&self) -> VptStats;
}

/// `VP_Magic`: last-*n*-unique-values with oracle selection.
#[derive(Debug, Clone)]
pub struct MagicPredictor {
    table: VptTable,
}

impl MagicPredictor {
    /// Creates a magic predictor over the given table geometry.
    pub fn new(config: VptConfig) -> MagicPredictor {
        MagicPredictor {
            table: VptTable::new(config),
        }
    }
}

impl ValuePredictor for MagicPredictor {
    fn predict(&mut self, pc: u64, oracle: Option<u64>) -> Option<u64> {
        // Oracle selection among stored values (Section 4.1.1), done in
        // one allocation-free pass over the set.
        let selected = self.table.select_confident(pc, oracle);
        self.table.note_lookup(selected.is_some());
        selected
    }

    fn train(&mut self, pc: u64, actual: u64) {
        self.table.train_multi(pc, actual);
    }

    fn name(&self) -> &'static str {
        "VP_Magic"
    }

    fn stats(&self) -> VptStats {
        self.table.stats()
    }
}

/// `VP_LVP`: the last-value predictor (one instance per instruction).
#[derive(Debug, Clone)]
pub struct LastValuePredictor {
    table: VptTable,
}

impl LastValuePredictor {
    /// Creates a last-value predictor over the given table geometry.
    pub fn new(config: VptConfig) -> LastValuePredictor {
        LastValuePredictor {
            table: VptTable::new(config),
        }
    }
}

impl ValuePredictor for LastValuePredictor {
    fn predict(&mut self, pc: u64, _oracle: Option<u64>) -> Option<u64> {
        let v = self.table.last_confident_value(pc);
        self.table.note_lookup(v.is_some());
        v
    }

    fn train(&mut self, pc: u64, actual: u64) {
        self.table.train_last(pc, actual);
    }

    fn name(&self) -> &'static str {
        "VP_LVP"
    }

    fn stats(&self) -> VptStats {
        self.table.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> VptConfig {
        VptConfig {
            entries: 64,
            assoc: 4,
            confidence_threshold: 2,
        }
    }

    #[test]
    fn lvp_requires_confidence() {
        let mut vp = LastValuePredictor::new(small());
        assert_eq!(vp.predict(0x10, None), None);
        vp.train(0x10, 5);
        assert_eq!(vp.predict(0x10, None), None, "confidence 1 < threshold");
        vp.train(0x10, 5);
        assert_eq!(vp.predict(0x10, None), Some(5));
    }

    #[test]
    fn lvp_loses_confidence_on_change() {
        let mut vp = LastValuePredictor::new(small());
        for _ in 0..3 {
            vp.train(0x10, 5);
        }
        assert_eq!(vp.predict(0x10, None), Some(5));
        // The value changes: confidence decays to zero (3 trainings),
        // then the new value is installed and must rebuild confidence.
        for _ in 0..5 {
            vp.train(0x10, 9);
        }
        assert_eq!(vp.predict(0x10, None), Some(9));
    }

    #[test]
    fn lvp_keeps_single_instance() {
        let mut vp = LastValuePredictor::new(small());
        for v in [1u64, 2, 1, 2, 1, 2] {
            vp.train(0x10, v);
        }
        // Alternating values never build confidence in LVP.
        assert_eq!(vp.predict(0x10, None), None);
    }

    #[test]
    fn magic_selects_correct_among_stored() {
        let mut vp = MagicPredictor::new(small());
        // Store two alternating values, both confident.
        for v in [1u64, 2, 1, 2, 1, 2, 1, 2] {
            vp.train(0x20, v);
        }
        assert_eq!(vp.predict(0x20, Some(1)), Some(1));
        assert_eq!(vp.predict(0x20, Some(2)), Some(2));
        // Oracle value it has never seen: falls back to most confident.
        let fallback = vp.predict(0x20, Some(99));
        assert!(matches!(fallback, Some(1) | Some(2)));
    }

    #[test]
    fn magic_never_invents_values() {
        let mut vp = MagicPredictor::new(small());
        assert_eq!(vp.predict(0x30, Some(42)), None, "empty table predicts nothing");
        vp.train(0x30, 7);
        vp.train(0x30, 7);
        // 42 was never stored; magic still predicts a stored value.
        assert_eq!(vp.predict(0x30, Some(42)), Some(7));
    }

    #[test]
    fn magic_beats_lvp_on_alternation() {
        let mut magic = MagicPredictor::new(small());
        let mut lvp = LastValuePredictor::new(small());
        let mut magic_hits = 0;
        let mut lvp_hits = 0;
        let mut v = 0u64;
        for i in 0..100 {
            v = if v == 3 { 8 } else { 3 };
            if i >= 20 {
                if magic.predict(0x40, Some(v)) == Some(v) {
                    magic_hits += 1;
                }
                if lvp.predict(0x40, Some(v)) == Some(v) {
                    lvp_hits += 1;
                }
            }
            magic.train(0x40, v);
            lvp.train(0x40, v);
        }
        assert_eq!(magic_hits, 80);
        assert_eq!(lvp_hits, 0);
    }

    #[test]
    fn stats_count_lookups() {
        let mut vp = LastValuePredictor::new(small());
        vp.predict(0x1, None);
        vp.train(0x1, 4);
        vp.train(0x1, 4);
        vp.predict(0x1, None);
        let s = vp.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.predictions, 1);
    }
}
