//! # vpir-jsonlite — the workspace's shared hand-rolled JSON machinery
//!
//! The workspace is offline by construction (no serde), so every
//! subsystem that speaks JSON — the bench harness's job files and perf
//! reports, the simulator's diagnostic snapshots, and the `vpir serve`
//! request/response path — uses the same small, std-only toolkit:
//!
//! - [`JsonValue`] / [`parse_json`] — a recursive-descent parser for the
//!   subset of JSON the workspace's documents use (objects, arrays,
//!   strings, **unsigned integers only**, `true`/`false`/`null`).
//!   Refusing floats, exponents, and negatives is what makes round
//!   trips of `u64` simulator counters exact.
//! - [`json_escape`] / [`JsonObj`] — emission: string escaping and an
//!   insertion-ordered object builder.
//! - [`validate_json`] — a grammar checker over *full* JSON (floats and
//!   all) that never builds a tree; used by CLIs and CI to self-check
//!   emitted documents.
//!
//! Everything here was extracted from `crates/bench` (`state.rs`,
//! `perf.rs`), which re-exports it for compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

// ---------------------------------------------------------------------
// JSON values
// ---------------------------------------------------------------------

/// A parsed JSON value restricted to what workspace documents contain.
///
/// Numbers are unsigned integers only — every simulator counter is a
/// `u64`, and refusing floats is what makes round trips exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form accepted).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The contained integer, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The contained boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The contained string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The contained elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document into a [`JsonValue`].
///
/// Rejects fractions, exponents, and negative numbers: workspace
/// documents only ever hold `u64` counters, strings, booleans, and
/// containers, and anything else indicates corruption.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

const MAX_DEPTH: u32 = 128;

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        let v = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected byte `{}` at {} (negative and fractional \
                 numbers are not valid here)",
                b as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }?;
        self.depth -= 1;
        Ok(v)
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code).ok_or("invalid \\u code point")?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is safe
                    // to do bytewise until the next ASCII delimiter).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b & 0xc0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let mut n: u64 = 0;
        let start = self.pos;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(u64::from(b - b'0')))
                .ok_or_else(|| format!("integer overflow at byte {start}"))?;
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!(
                "non-integer number at byte {start}: this parser holds exact \
                 u64 counters only"
            ));
        }
        Ok(JsonValue::U64(n))
    }
}

// ---------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------

/// Escapes a string for embedding in a JSON document (no quotes added).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builds a single-line JSON object; keys are emitted in call order.
///
/// The emitted form (`{"a": 1, "b": "x"}`) matches what the workspace's
/// hand-rolled emitters have always produced, so existing golden files
/// and schema checks keep passing.
#[derive(Debug)]
pub struct JsonObj {
    out: String,
}

impl Default for JsonObj {
    fn default() -> JsonObj {
        JsonObj::new()
    }
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> JsonObj {
        JsonObj { out: String::from("{") }
    }

    fn key(&mut self, k: &str) {
        if self.out.len() > 1 {
            self.out.push_str(", ");
        }
        self.out.push('"');
        self.out.push_str(&json_escape(k));
        self.out.push_str("\": ");
    }

    /// Appends an unsigned-integer field.
    pub fn u(mut self, k: &str, v: u64) -> JsonObj {
        self.key(k);
        self.out.push_str(&v.to_string());
        self
    }

    /// Appends a boolean field.
    pub fn b(mut self, k: &str, v: bool) -> JsonObj {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Appends an escaped string field.
    pub fn s(mut self, k: &str, v: &str) -> JsonObj {
        self.key(k);
        self.out.push('"');
        self.out.push_str(&json_escape(v));
        self.out.push('"');
        self
    }

    /// Embeds pre-rendered JSON verbatim.
    pub fn raw(mut self, k: &str, v: &str) -> JsonObj {
        self.key(k);
        self.out.push_str(v);
        self
    }

    /// Closes the object and returns its text.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

// ---------------------------------------------------------------------
// Grammar validation
// ---------------------------------------------------------------------

/// Validates that `text` is well-formed JSON and, at the top level, an
/// object containing every key in `required_keys`.
///
/// A minimal recursive-descent checker — it accepts exactly the JSON
/// grammar (objects, arrays, strings with escapes, numbers including
/// floats and exponents, booleans, null) without building a document
/// tree. This is deliberately wider than [`parse_json`]: emitted
/// documents may carry floats (e.g. timings) that the exact-counter
/// parser refuses.
pub fn validate_json(text: &str, required_keys: &[&str]) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut p = Validator { bytes, pos: 0, top_keys: Vec::new(), depth: 0 };
    p.skip_ws();
    p.value(true)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    for key in required_keys {
        if !p.top_keys.iter().any(|k| k == key) {
            return Err(format!("missing required top-level key {key:?}"));
        }
    }
    Ok(())
}

struct Validator<'a> {
    bytes: &'a [u8],
    pos: usize,
    top_keys: Vec<String>,
    depth: u32,
}

impl Validator<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self, top: bool) -> Result<(), String> {
        if self.depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.depth += 1;
        let r = match self.peek() {
            Some(b'{') => self.object(top),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        };
        self.depth -= 1;
        r
    }

    fn object(&mut self, top: bool) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if top {
                self.top_keys.push(key);
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(false)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}', found {other:?} at offset {}",
                        self.pos
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(false)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']', found {other:?} at offset {}",
                        self.pos
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')) => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!(
                                            "bad \\u escape at offset {}",
                                            self.pos
                                        ))
                                    }
                                }
                            }
                        }
                        other => {
                            return Err(format!(
                                "bad escape {other:?} at offset {}",
                                self.pos
                            ))
                        }
                    }
                }
                Some(b) if b >= 0x20 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                other => return Err(format!("bad string byte {other:?} at offset {}", self.pos)),
            }
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("expected digits at offset {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("expected fraction digits at offset {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("expected exponent digits at offset {}", self.pos));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_rejects_what_workspace_documents_never_contain() {
        assert!(parse_json("1.5").is_err(), "fractions");
        assert!(parse_json("-3").is_err(), "negative numbers");
        assert!(parse_json("1e9").is_err(), "exponents");
        assert!(parse_json("{\"a\": 1,}").is_err(), "trailing comma");
        assert!(parse_json("{\"a\": 1} extra").is_err(), "trailing data");
        assert!(parse_json("\"unterminated").is_err(), "open string");
        assert!(parse_json("18446744073709551616").is_err(), "u64 overflow");
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"msg": "a\"b\\c\ndA", "arr": [1, [2, {"x": true}], null]}"#)
            .expect("parse");
        assert_eq!(v.get("msg").and_then(JsonValue::as_str), Some("a\"b\\c\ndA"));
        let arr = v.get("arr").and_then(JsonValue::as_arr).expect("arr");
        assert_eq!(arr.first().and_then(JsonValue::as_u64), Some(1));
        assert_eq!(arr.get(2), Some(&JsonValue::Null));
        assert_eq!(
            v.get("arr")
                .and_then(|a| a.as_arr())
                .and_then(|a| a.get(1))
                .and_then(|a| a.as_arr())
                .and_then(|a| a.get(1))
                .and_then(|o| o.get("x"))
                .and_then(JsonValue::as_bool),
            Some(true)
        );
    }

    #[test]
    fn obj_builder_emits_every_field_kind() {
        let text = JsonObj::new()
            .u("n", 7)
            .b("flag", true)
            .s("msg", "a\"b\n")
            .raw("nested", "[1, 2]")
            .finish();
        assert_eq!(text, "{\"n\": 7, \"flag\": true, \"msg\": \"a\\\"b\\n\", \"nested\": [1, 2]}");
        let v = parse_json(&text).expect("round trip");
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("msg").and_then(JsonValue::as_str), Some("a\"b\n"));
    }

    #[test]
    fn validator_accepts_json_grammar() {
        for ok in [
            "{}",
            "[]",
            "[1, -2.5, 1e9, 1.25E-3]",
            r#"{"a": [true, false, null], "b": {"c": "d\nA"}}"#,
            "  {  }  ",
        ] {
            validate_json(ok, &[]).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "{]",
            "[1,]",
            r#"{"a" 1}"#,
            r#"{"a": 1} x"#,
            "01a",
            "1.",
            "1e",
            r#""unterminated"#,
        ] {
            assert!(validate_json(bad, &[]).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn validator_checks_required_keys() {
        let text = r#"{"schema": "x", "jobs": 2}"#;
        validate_json(text, &["schema", "jobs"]).expect("present");
        assert!(validate_json(text, &["schema", "phases"]).is_err());
    }
}
