//! Structured random program generation for differential fuzzing.
//!
//! [`random_program`] builds terminating, deterministic programs that
//! exercise the whole ISA — counted loops, forward branches, calls,
//! memory traffic, multiplies/divides, and floating point — so the
//! pipeline can be checked instruction-for-instruction against the
//! functional interpreter under every machine configuration.
//!
//! Termination is guaranteed by construction: all loops count down
//! dedicated registers, all conditional branches inside a block jump
//! strictly forward, and calls only target leaf functions.

use vpir_isa::{asm, Program};
use vpir_testkit::Rng;

/// Scratch memory region used by generated memory operations.
const REGION: u64 = 0x50_0000;

/// Knobs for [`random_program`].
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of top-level blocks.
    pub blocks: usize,
    /// Iterations of the outermost loop.
    pub outer_iters: u32,
    /// Include floating-point operations.
    pub fp: bool,
    /// Include multiply/divide operations.
    pub muldiv: bool,
    /// Include loads/stores.
    pub memory: bool,
    /// Include calls to generated leaf functions.
    pub calls: bool,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            blocks: 6,
            outer_iters: 3,
            fp: true,
            muldiv: true,
            memory: true,
            calls: true,
        }
    }
}

/// Generates a random, terminating program from `seed`.
///
/// The same `(seed, config)` always yields the same program.
///
/// # Panics
///
/// Panics only on an internal assembly error (a generator bug).
pub fn random_program(seed: u64, config: SynthConfig) -> Program {
    let src = random_source(seed, config);
    asm::assemble(&src).unwrap_or_else(|e| panic!("synth bug (seed {seed}): {e}\n{src}"))
}

/// Generates the assembly source for a random program (exposed so test
/// failures can print it).
pub fn random_source(seed: u64, config: SynthConfig) -> String {
    let mut rng = Rng::new(seed);
    let mut g = Gen {
        rng: &mut rng,
        config,
        out: String::new(),
        label: 0,
        funcs: Vec::new(),
    };
    g.program();
    g.out
}

/// General-purpose registers the generator may freely clobber.
const POOL: [u8; 12] = [8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19];
/// FP registers the generator may freely clobber.
const FPOOL: [u8; 6] = [0, 1, 2, 3, 4, 5];

struct Gen<'a> {
    rng: &'a mut Rng,
    config: SynthConfig,
    out: String,
    label: u32,
    funcs: Vec<String>,
}

impl Gen<'_> {
    fn fresh(&mut self, stem: &str) -> String {
        self.label += 1;
        format!("{stem}_{}", self.label)
    }

    fn emit(&mut self, line: &str) {
        self.out.push_str("        ");
        self.out.push_str(line);
        self.out.push('\n');
    }

    fn emit_label(&mut self, label: &str) {
        self.out.push_str(label);
        self.out.push_str(":\n");
    }

    fn reg(&mut self) -> String {
        format!("r{}", POOL[self.rng.gen_range(0..POOL.len())])
    }

    fn freg(&mut self) -> String {
        format!("f{}", FPOOL[self.rng.gen_range(0..FPOOL.len())])
    }

    fn program(&mut self) {
        // Pre-generate leaf functions so calls have targets.
        let nfuncs = if self.config.calls {
            self.rng.gen_range(1..4)
        } else {
            0
        };
        for i in 0..nfuncs {
            self.funcs.push(format!("leaf_{i}"));
        }

        self.emit(".entry main");
        self.emit_label("main");
        // Seed the register pool with interesting values.
        for r in POOL {
            let v: i64 = match self.rng.gen_range(0..4) {
                0 => self.rng.gen_range(-100..100),
                1 => self.rng.gen_range(0..1 << 16),
                2 => -1,
                _ => self.rng.gen_i32() as i64,
            };
            self.emit(&format!("li r{r}, {v}"));
        }
        if self.config.fp {
            for (i, f) in FPOOL.into_iter().enumerate() {
                self.emit(&format!("li r7, {}", (i as i64 + 1) * 3));
                self.emit(&format!("cvt.f.i f{f}, r7"));
            }
        }
        self.emit(&format!("la r5, {REGION}"));

        let outer = self.fresh("outer");
        self.emit(&format!("li r1, {}", self.config.outer_iters));
        self.emit_label(&outer.clone());
        for _ in 0..self.config.blocks {
            self.block(2);
        }
        self.emit("addi r1, r1, -1");
        self.emit(&format!("bne r1, r0, {outer}"));
        self.emit("halt");

        // Leaf functions: straight-line compute, return via `jr ra`.
        let funcs = self.funcs.clone();
        for name in funcs {
            self.emit_label(&name);
            for _ in 0..self.rng.gen_range(2..8) {
                self.straight_op();
            }
            self.emit("jr ra");
        }
    }

    /// One top-level block; `depth` bounds loop nesting.
    fn block(&mut self, depth: u32) {
        match self.rng.gen_range(0..10) {
            0..=3 => {
                for _ in 0..self.rng.gen_range(1..6) {
                    self.straight_op();
                }
            }
            4..=5 => self.forward_branch(),
            6..=7 if depth > 0 => self.counted_loop(depth),
            8 if !self.funcs.is_empty() => {
                let f = self.funcs[self.rng.gen_range(0..self.funcs.len())].clone();
                self.emit(&format!("jal {f}"));
            }
            _ => {
                for _ in 0..self.rng.gen_range(1..4) {
                    self.straight_op();
                }
            }
        }
    }

    fn forward_branch(&mut self) {
        let skip = self.fresh("skip");
        let (a, b) = (self.reg(), self.reg());
        let cond = match self.rng.gen_range(0..4) {
            0 => format!("beq {a}, {b}, {skip}"),
            1 => format!("bne {a}, {b}, {skip}"),
            2 => format!("blez {a}, {skip}"),
            _ => format!("bgez {a}, {skip}"),
        };
        self.emit(&cond);
        for _ in 0..self.rng.gen_range(1..5) {
            self.straight_op();
        }
        // Optional else arm via a second forward jump.
        if self.rng.gen_bool(0.3) {
            let join = self.fresh("join");
            self.emit(&format!("b {join}"));
            self.emit_label(&skip);
            for _ in 0..self.rng.gen_range(1..4) {
                self.straight_op();
            }
            self.emit_label(&join);
        } else {
            self.emit_label(&skip);
        }
    }

    fn counted_loop(&mut self, depth: u32) {
        // r2 and r3 are dedicated loop counters by nesting level.
        let counter = if depth == 2 { "r2" } else { "r3" };
        let head = self.fresh("loop");
        let iters = self.rng.gen_range(2..8);
        self.emit(&format!("li {counter}, {iters}"));
        self.emit_label(&head);
        for _ in 0..self.rng.gen_range(1..4) {
            if depth > 1 && self.rng.gen_bool(0.3) {
                self.counted_loop(depth - 1);
            } else {
                self.block(0);
            }
        }
        self.emit(&format!("addi {counter}, {counter}, -1"));
        self.emit(&format!("bne {counter}, r0, {head}"));
    }

    fn straight_op(&mut self) {
        let choices: u32 = if self.config.fp { 10 } else { 8 };
        match self.rng.gen_range(0..choices) {
            0..=3 => self.alu_op(),
            4..=5 if self.config.memory => self.mem_op(),
            6 if self.config.muldiv => self.muldiv_op(),
            7 => {
                let (d, s) = (self.reg(), self.reg());
                let sh = self.rng.gen_range(0..32);
                let op = ["sll", "srl", "sra"][self.rng.gen_range(0..3)];
                self.emit(&format!("{op} {d}, {s}, {sh}"));
            }
            8..=9 => self.fp_op(),
            _ => self.alu_op(),
        }
    }

    fn alu_op(&mut self) {
        let (d, a, b) = (self.reg(), self.reg(), self.reg());
        if self.rng.gen_bool(0.4) {
            let op = ["addi", "andi", "ori", "xori", "slti"][self.rng.gen_range(0..5)];
            // Logical immediates are zero-extended 16-bit fields in the
            // binary encoding, so they must be non-negative.
            let imm: i64 = match op {
                "andi" | "ori" | "xori" => self.rng.gen_range(0..4096),
                _ => self.rng.gen_range(-4096..4096),
            };
            self.emit(&format!("{op} {d}, {a}, {imm}"));
        } else {
            let op = ["add", "sub", "and", "or", "xor", "nor", "slt", "sltu"]
                [self.rng.gen_range(0..8)];
            self.emit(&format!("{op} {d}, {a}, {b}"));
        }
    }

    fn muldiv_op(&mut self) {
        let (d, a, b) = (self.reg(), self.reg(), self.reg());
        let op = ["mul", "mulh", "div", "rem"][self.rng.gen_range(0..4)];
        self.emit(&format!("{op} {d}, {a}, {b}"));
    }

    fn mem_op(&mut self) {
        // Constrain the address into the scratch region: r5 holds its
        // base; mask a pool register into a bounded offset.
        let idx = self.reg();
        let tmp = "r4";
        let off = self.rng.gen_range(0..64) * 8;
        self.emit(&format!("andi {tmp}, {idx}, 0x7f8"));
        self.emit(&format!("add {tmp}, {tmp}, r5"));
        if self.rng.gen_bool(0.5) {
            let d = self.reg();
            let op = ["lb", "lbu", "lh", "lhu", "lw", "lwu", "ld"][self.rng.gen_range(0..7)];
            self.emit(&format!("{op} {d}, {off}({tmp})"));
        } else {
            let v = self.reg();
            let op = ["sb", "sh", "sw", "sd"][self.rng.gen_range(0..4)];
            self.emit(&format!("{op} {v}, {off}({tmp})"));
        }
    }

    fn fp_op(&mut self) {
        if !self.config.fp {
            return self.alu_op();
        }
        match self.rng.gen_range(0..4) {
            0 => {
                let (d, a, b) = (self.freg(), self.freg(), self.freg());
                let op = ["add.f", "sub.f", "mul.f"][self.rng.gen_range(0..3)];
                self.emit(&format!("{op} {d}, {a}, {b}"));
            }
            1 => {
                let (d, a) = (self.freg(), self.freg());
                let op = ["abs.f", "neg.f", "mov.f"][self.rng.gen_range(0..3)];
                self.emit(&format!("{op} {d}, {a}"));
            }
            2 => {
                // Keep magnitudes bounded: convert through integers.
                let (f, r) = (self.freg(), self.reg());
                self.emit(&format!("cvt.i.f {r}, {f}"));
                self.emit(&format!("andi {r}, {r}, 0xff"));
                self.emit(&format!("cvt.f.i {f}, {r}"));
            }
            _ => {
                let (a, b) = (self.freg(), self.freg());
                let op = ["c.eq.f", "c.lt.f", "c.le.f"][self.rng.gen_range(0..3)];
                self.emit(&format!("{op} {a}, {b}"));
                let skip = self.fresh("fskip");
                let br = if self.rng.gen_bool(0.5) { "bc1t" } else { "bc1f" };
                self.emit(&format!("{br} {skip}"));
                self.alu_op();
                self.emit_label(&skip);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpir_isa::Machine;

    #[test]
    fn generated_programs_assemble_and_terminate() {
        for seed in 0..30 {
            let prog = random_program(seed, SynthConfig::default());
            let mut m = Machine::new(&prog);
            m.run(2_000_000).unwrap();
            assert!(m.halted, "seed {seed} did not halt");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_source(7, SynthConfig::default());
        let b = random_source(7, SynthConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let a = random_source(1, SynthConfig::default());
        let b = random_source(2, SynthConfig::default());
        assert_ne!(a, b);
    }

    #[test]
    fn feature_knobs_respected() {
        let cfg = SynthConfig {
            fp: false,
            muldiv: false,
            memory: false,
            calls: false,
            ..SynthConfig::default()
        };
        for seed in 0..10 {
            let src = random_source(seed, cfg);
            assert!(!src.contains(".f"), "fp in: {src}");
            assert!(!src.contains("mul"), "mul in: {src}");
            assert!(!src.contains("lw "), "mem in: {src}");
            assert!(!src.contains("jal"), "call in: {src}");
        }
    }
}
