//! # vpir-workloads — benchmark programs for the simulator
//!
//! The paper evaluates on seven SPECint95 programs. Their binaries and
//! reference inputs are not reproducible here, so this crate provides
//! seven *synthetic stand-ins*, each hand-written in the simulator's
//! assembly dialect and designed to land in the qualitative regime of its
//! namesake along the axes that drive the paper's phenomena:
//!
//! | bench | signature it mimics |
//! |---|---|
//! | [`Bench::Go`] | data-dependent evaluation, hard branches (~76% gshare) |
//! | [`Bench::M88ksim`] | instruction-set interpreter loop: very high redundancy |
//! | [`Bench::Ijpeg`] | blockwise integer transforms: predictable loops, multiplies |
//! | [`Bench::Perl`] | string hashing + table dispatch: moderate redundancy |
//! | [`Bench::Vortex`] | object store traversal: many calls/returns, easy branches |
//! | [`Bench::Gcc`] | tree walk with kind-switch: mixed behaviour |
//! | [`Bench::Compress`] | LZW-style hashing: high *address* reuse, low result reuse |
//!
//! All programs are deterministic (fixed seeds), self-checking (they
//! leave a checksum in `r20`), and scalable via [`Scale`].
//!
//! The crate also provides [`synth::random_program`], a structured random
//! program generator used for differential fuzzing of the pipeline
//! against the functional interpreter.
//!
//! # Examples
//!
//! ```
//! use vpir_workloads::{Bench, Scale};
//! use vpir_isa::Machine;
//!
//! let prog = Bench::Compress.program(Scale::test());
//! let mut m = Machine::new(&prog);
//! m.run(10_000_000).unwrap();
//! assert!(m.halted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod programs;
pub mod synth;

use vpir_isa::Program;

/// How large a run to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Top-level repetition count; dynamic instruction counts grow
    /// roughly linearly in this.
    pub outer: u32,
}

impl Scale {
    /// A small scale for unit tests (a few thousand dynamic instructions).
    pub fn test() -> Scale {
        Scale { outer: 2 }
    }

    /// The default experiment scale (hundreds of thousands to a few
    /// million dynamic instructions per benchmark).
    pub fn experiment() -> Scale {
        Scale { outer: 40 }
    }

    /// A custom scale.
    pub fn of(outer: u32) -> Scale {
        Scale { outer: outer.max(1) }
    }
}

/// The seven benchmark stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bench {
    /// `go`-like: board evaluation with hard, data-dependent branches.
    Go,
    /// `m88ksim`-like: an instruction-set interpreter (high redundancy).
    M88ksim,
    /// `ijpeg`-like: blockwise integer transforms.
    Ijpeg,
    /// `perl`-like: string hashing and dispatch.
    Perl,
    /// `vortex`-like: object-store traversal, call-heavy.
    Vortex,
    /// `gcc`-like: expression-tree walking with a kind switch.
    Gcc,
    /// `compress`-like: LZW-style compression (address-reuse heavy).
    Compress,
}

impl Bench {
    /// All benchmarks, in the paper's Table 2 order.
    pub const ALL: [Bench; 7] = [
        Bench::Go,
        Bench::M88ksim,
        Bench::Ijpeg,
        Bench::Perl,
        Bench::Vortex,
        Bench::Gcc,
        Bench::Compress,
    ];

    /// The benchmark's display name (its SPECint95 namesake).
    pub fn name(self) -> &'static str {
        match self {
            Bench::Go => "go",
            Bench::M88ksim => "m88ksim",
            Bench::Ijpeg => "ijpeg",
            Bench::Perl => "perl",
            Bench::Vortex => "vortex",
            Bench::Gcc => "gcc",
            Bench::Compress => "compress",
        }
    }

    /// Parses a benchmark name.
    pub fn parse(name: &str) -> Option<Bench> {
        Bench::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Builds the program at the given scale.
    ///
    /// # Panics
    ///
    /// Panics only on an internal assembly error (a bug in this crate).
    pub fn program(self, scale: Scale) -> Program {
        let (src, data) = match self {
            Bench::Go => programs::go(scale),
            Bench::M88ksim => programs::m88ksim(scale),
            Bench::Ijpeg => programs::ijpeg(scale),
            Bench::Perl => programs::perl(scale),
            Bench::Vortex => programs::vortex(scale),
            Bench::Gcc => programs::gcc(scale),
            Bench::Compress => programs::compress(scale),
        };
        let mut prog = vpir_isa::asm::assemble(&src)
            .unwrap_or_else(|e| panic!("internal asm error in {}: {e}", self.name()));
        prog.data.extend(data);
        prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpir_isa::{Machine, Reg};

    #[test]
    fn names_roundtrip() {
        for b in Bench::ALL {
            assert_eq!(Bench::parse(b.name()), Some(b));
        }
        assert_eq!(Bench::parse("nope"), None);
    }

    #[test]
    fn all_benchmarks_assemble_run_and_halt() {
        for b in Bench::ALL {
            let prog = b.program(Scale::test());
            let mut m = Machine::new(&prog);
            let n = m.run(50_000_000).unwrap();
            assert!(m.halted, "{} did not halt ({n} insts)", b.name());
            assert!(n > 1_000, "{} too short: {n} insts", b.name());
            assert_ne!(
                m.regs.read(Reg::int(20)),
                0,
                "{} left no checksum",
                b.name()
            );
        }
    }

    #[test]
    fn benchmarks_are_deterministic() {
        for b in [Bench::Go, Bench::Compress] {
            let run = |_| {
                let prog = b.program(Scale::test());
                let mut m = Machine::new(&prog);
                m.run(50_000_000).unwrap();
                (m.icount, m.regs.read(Reg::int(20)))
            };
            assert_eq!(run(0), run(1), "{}", b.name());
        }
    }

    #[test]
    fn scale_increases_work() {
        let b = Bench::Ijpeg;
        let small = {
            let mut m = Machine::new(&b.program(Scale::of(1)));
            m.run(100_000_000).unwrap();
            m.icount
        };
        let large = {
            let mut m = Machine::new(&b.program(Scale::of(4)));
            m.run(100_000_000).unwrap();
            m.icount
        };
        assert!(large > 2 * small, "{small} -> {large}");
    }
}
