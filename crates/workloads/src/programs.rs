//! The seven SPECint95 stand-in kernels.
//!
//! Each function returns `(assembly source, generated data segments)`.
//! All random data uses fixed seeds, so every build of a benchmark is
//! bit-identical. Every kernel accumulates a checksum in `r20` so tests
//! can verify architectural equivalence across simulators.

use vpir_testkit::Rng;

use crate::Scale;

type Data = Vec<(u64, Vec<u8>)>;

/// Base address of generated input data.
const INPUT: u64 = 0x30_0000;
/// Base address of auxiliary tables.
const AUX: u64 = 0x38_0000;
/// Base address of scratch/output regions.
const SCRATCH: u64 = 0x40_0000;

/// `go`-like: a board evaluator with data-dependent, hard-to-predict
/// branches (Table 2 reports 75.8% gshare accuracy for `go`).
pub fn go(scale: Scale) -> (String, Data) {
    let mut rng = Rng::new(0x60_63);
    // A 19x19 board of {0,1,2} plus a border ring, as bytes.
    let dim = 21usize;
    let board: Vec<u8> = (0..dim * dim)
        .map(|_| match rng.gen_range(0..10) {
            0..=3 => 0u8, // empty
            4..=6 => 1,   // black
            _ => 2,       // white
        })
        .collect();
    let passes = 12 * scale.outer;
    let src = format!(
        "
        .entry main
main:   li   r6, {passes}
        li   r20, 1
pass:   la   r7, {INPUT}
        addi r7, r7, {off}          # skip border row+col
        li   r8, {points}
        lbu  r9, 0(r7)              # software pipeline: current stone
pt:     lbu  r28, 1(r7)             # fetch NEXT point's stone
        # coordinate bookkeeping: depends on the point index, so none of
        # it is ever redundant (go is full of such arithmetic)
        srl  r21, r8, 4
        xor  r22, r21, r8
        add  r23, r22, r7
        sll  r24, r22, 1
        xor  r23, r23, r24
        and  r21, r23, r22
        add  r20, r20, r21
        beq  r9, r0, empty
        # stones walk the direction-offset table (4 hot entries);
        # r9 was loaded a full iteration ago, so the chain is testable.
        andi r25, r9, 3
        sll  r25, r25, 2
        la   r26, {AUX}
        add  r26, r26, r25
        lw   r27, 0(r26)
        add  r20, r20, r27
        li   r10, 1
        beq  r9, r10, black
        # white stone: count white neighbours
        lbu  r11, 1(r7)
        li   r12, 2
        bne  r11, r12, wdone
        addi r20, r20, 3
wdone:  lbu  r11, {dim}(r7)
        bne  r11, r12, next
        addi r20, r20, 5
        b    next
black:  lbu  r11, -1(r7)
        beq  r11, r0, bliberty
        lbu  r11, -{dim}(r7)
        beq  r11, r0, bliberty
        addi r20, r20, 11
        b    next
bliberty:
        addi r20, r20, 7
        b    next
empty:  lbu  r11, 1(r7)
        lbu  r12, {dim}(r7)
        add  r13, r11, r12
        slti r14, r13, 2
        beq  r14, r0, next
        addi r20, r20, 1
next:   move r9, r28                # pipeline rotate
        addi r7, r7, 1
        addi r8, r8, -1
        bne  r8, r0, pt
        # Mutate a handful of cells with an LCG so later passes differ.
        la   r15, {INPUT}
        li   r16, 28
        mul  r17, r20, r20
        li   r18, 1103515245
mut:    mul  r17, r17, r18
        addi r17, r17, 12345
        srl  r19, r17, 16
        andi r19, r19, 0x1ff
        sltiu r21, r19, {cells}
        beq  r21, r0, skipmut
        add  r22, r15, r19
        andi r23, r17, 3
        slti r24, r23, 3
        beq  r24, r0, skipmut
        sb   r23, 0(r22)
skipmut:
        addi r16, r16, -1
        bne  r16, r0, mut
        addi r6, r6, -1
        bne  r6, r0, pass
        halt
",
        off = dim + 1,
        points = 19 * 19,
        cells = dim * dim,
    );
    let dirs: Vec<u8> = [1i32, -1, 21, -21]
        .iter()
        .flat_map(|d| (*d as u32).to_le_bytes())
        .collect();
    (src, vec![(INPUT, board), (AUX, dirs)])
}

/// `m88ksim`-like: an interpreter executing a small virtual program over
/// and over — the decode/dispatch work for each virtual instruction is
/// highly repetitive (Table 3 reports 48.5% result reuse for m88ksim).
pub fn m88ksim(scale: Scale) -> (String, Data) {
    // Virtual ISA: word = op<<24 | d<<16 | s1<<8 | s2.
    // ops: 0=halt 1=li(d, s1) 2=add 3=sub 4=and 5=bnz(s1, target=d) 6=addi(d,s1,imm=s2)
    let vop = |op: u32, d: u32, s1: u32, s2: u32| (op << 24) | (d << 16) | (s1 << 8) | s2;
    // The virtual loop body is four instructions, so each interpreter
    // stage sees at most four distinct virtual instructions — within the
    // RB's per-set capacity, like m88ksim's own hot dispatch loop.
    let vprog: Vec<u32> = vec![
        vop(1, 0, 60, 0),  // v0 = 60 (loop counter)
        // loop body (index 1):
        vop(2, 1, 1, 2),   // v1 += v2
        vop(4, 4, 1, 2),   // v4 = v1 & v2
        vop(6, 0, 0, 255), // v0 -= 1  (addi with imm=255 treated as -1)
        vop(5, 1, 0, 0),   // bnz v0 -> index 1
        vop(0, 0, 0, 0),   // vhalt
    ];
    let bytes: Vec<u8> = vprog.iter().flat_map(|w| w.to_le_bytes()).collect();
    let runs = 6 * scale.outer;
    let src = format!(
        "
        .entry main
main:   li   r6, {runs}
        li   r20, 1
run:    la   r7, {INPUT}        # vpc base
        li   r8, 0              # vpc
        la   r9, {SCRATCH}      # vreg file (8 words)
        # seed the virtual machine: the accumulator differs per run, so
        # interpreter *control* repeats while the interpreted data flows
        # fresh — m88ksim's signature.
        sw   r6, 4(r9)          # v1 = run number
        li   r10, 3
        sw   r10, 8(r9)         # v2 = 3
        sw   r0, 12(r9)
        sw   r0, 16(r9)
step:   sll  r12, r8, 2
        add  r12, r12, r7
        lw   r13, 0(r12)        # fetch virtual instruction
        srl  r14, r13, 24       # op
        srl  r15, r13, 16
        andi r15, r15, 0xff     # d
        srl  r16, r13, 8
        andi r16, r16, 0xff     # s1
        andi r17, r13, 0xff     # s2
        # dispatch chain
        beq  r14, r0, vhalt
        li   r18, 1
        beq  r14, r18, vli
        li   r18, 2
        beq  r14, r18, vadd
        li   r18, 3
        beq  r14, r18, vsub
        li   r18, 4
        beq  r14, r18, vand
        li   r18, 5
        beq  r14, r18, vbnz
        jal  vaddi              # op 6
        b    vnext
vli:    jal  do_li
        b    vnext
vadd:   jal  do_add
        b    vnext
vsub:   jal  do_sub
        b    vnext
vand:   jal  do_and
        b    vnext
vbnz:   sll  r18, r16, 2
        add  r18, r18, r9
        lw   r19, 0(r18)
        beq  r19, r0, vnext
        move r8, r15            # taken: vpc = d
        b    step
vnext:  addi r8, r8, 1
        b    step
vhalt:  # fold v1 into the checksum
        lw   r19, 4(r9)
        add  r20, r20, r19
        addi r6, r6, -1
        bne  r6, r0, run
        halt

        # --- handlers: args in r15(d) r16(s1) r17(s2), vregs at r9 ---
do_li:  sll  r21, r15, 2
        add  r21, r21, r9
        sw   r16, 0(r21)
        jr   ra
do_add: sll  r21, r16, 2
        add  r21, r21, r9
        lw   r22, 0(r21)
        sll  r21, r17, 2
        add  r21, r21, r9
        lw   r23, 0(r21)
        add  r24, r22, r23
        # condition-flag computation on the fresh result (m88k handlers
        # update processor state on every operation); the flag branch is
        # data-dependent, like m88ksim's own condition checks
        slt  r2, r24, r0
        sltu r3, r24, r22
        andi r4, r24, 4
        beq  r4, r0, flagz
        addi r20, r20, 5
        b    flagj
flagz:  xor  r5, r24, r22
        add  r20, r20, r5
flagj:  or   r2, r2, r3
        sll  r3, r2, 1
        add  r20, r20, r3
        sll  r21, r15, 2
        add  r21, r21, r9
        sw   r24, 0(r21)
        jr   ra
do_sub: sll  r21, r16, 2
        add  r21, r21, r9
        lw   r22, 0(r21)
        sll  r21, r17, 2
        add  r21, r21, r9
        lw   r23, 0(r21)
        sub  r24, r22, r23
        sll  r21, r15, 2
        add  r21, r21, r9
        sw   r24, 0(r21)
        jr   ra
vaddi:  sll  r21, r16, 2
        add  r21, r21, r9
        lw   r22, 0(r21)
        # sign-extend imm8
        slti r23, r17, 128
        bne  r23, r0, pos
        addi r22, r22, -256
pos:    add  r22, r22, r17
        slt  r2, r22, r0
        sltu r3, r22, r17
        xor  r4, r22, r3
        srl  r5, r4, 5
        add  r20, r20, r5
        sll  r21, r15, 2
        add  r21, r21, r9
        sw   r22, 0(r21)
        jr   ra
do_and: sll  r21, r16, 2
        add  r21, r21, r9
        lw   r22, 0(r21)
        sll  r21, r17, 2
        add  r21, r21, r9
        lw   r23, 0(r21)
        and  r24, r22, r23
        slt  r2, r24, r0
        xor  r3, r24, r23
        srl  r4, r3, 7
        add  r5, r4, r2
        xor  r3, r3, r5
        add  r20, r20, r5
        sll  r21, r15, 2
        add  r21, r21, r9
        sw   r24, 0(r21)
        jr   ra
",
    );
    (src, vec![(INPUT, bytes)])
}

/// `ijpeg`-like: 8x8 integer block transforms over a quantised image
/// (predictable counted loops, multiply-heavy, moderate redundancy).
pub fn ijpeg(scale: Scale) -> (String, Data) {
    let mut rng = Rng::new(0x134E6);
    let blocks = 24usize;
    // Pixels quantised to 16 levels: plenty of repeated values.
    let image: Vec<u8> = (0..blocks * 64).map(|_| rng.gen_range(0..16u8) * 16).collect();
    let passes = 10 * scale.outer;
    let quant: Vec<u8> = [181u32, 160, 140, 181, 120, 181, 100, 90]
        .iter()
        .flat_map(|q| q.to_le_bytes())
        .collect();
    let src = format!(
        "
        .entry main
main:   li   r6, {passes}
        li   r20, 1
pass:   la   r7, {INPUT}
        la   r8, {SCRATCH}
        li   r9, {blocks}
blk:    li   r10, 8             # row counter
        li   r27, 0             # row index within block
row:    # quantisation-table entry for this row (8 hot addresses)
        sll  r28, r27, 2
        la   r29, 0x390000
        add  r28, r28, r29
        lw   r30, 0(r28)
        lbu  r11, 0(r7)
        lbu  r12, 1(r7)
        lbu  r13, 2(r7)
        lbu  r14, 3(r7)
        add  r15, r11, r14      # butterfly
        sub  r16, r11, r14
        add  r17, r12, r13
        sub  r18, r12, r13
        add  r19, r15, r17      # s0
        sub  r21, r15, r17      # s2
        mul  r23, r16, r30      # scale by the row's quant factor
        sra  r23, r23, 8
        add  r23, r23, r18      # s1
        sw   r19, 0(r8)
        sw   r23, 4(r8)
        sw   r21, 8(r8)
        add  r20, r20, r19
        xor  r20, r20, r23
        # quantised refinement: operands masked to a handful of values
        andi r24, r19, 0x30
        andi r25, r23, 0x30
        mul  r26, r24, r25
        sra  r26, r26, 4
        add  r20, r20, r26
        addi r7, r7, 8
        addi r8, r8, 12
        addi r27, r27, 1
        andi r27, r27, 3
        addi r10, r10, -1
        bne  r10, r0, row
        addi r9, r9, -1
        bne  r9, r0, blk
        addi r6, r6, -1
        bne  r6, r0, pass
        halt
",
    );
    (src, vec![(INPUT, image), (0x39_0000, quant)])
}

/// `perl`-like: interned-token hashing with table probes. The token
/// stream points into a small vocabulary (Zipf-skewed), so the unrolled
/// hash chain and the probe loads see a narrow, hot set of operand
/// values per static instruction — moderate redundancy, like perl.
pub fn perl(scale: Scale) -> (String, Data) {
    let mut rng = Rng::new(0x9E41);
    let vocab = [
        "my", "sub", "local", "return", "print", "while", "foreach", "scalar", "push",
        "shift", "defined", "length", "keys", "values", "chomp", "split", "unless",
        "else", "elsif", "last", "next", "redo", "bless", "ref", "wantarray", "join",
        "map", "grep", "sort", "reverse", "substr", "index",
    ];
    // Interned vocabulary: each word padded to 8 bytes at VOCAB + 8*i.
    let mut words = Vec::new();
    for w in vocab {
        let mut bytes = w.as_bytes().to_vec();
        bytes.resize(8, 0);
        words.extend_from_slice(&bytes);
    }
    // Zipf-flavoured stream of word *indices* (u32), skewed to the front.
    let ntokens = 300usize;
    let mut stream = Vec::new();
    for _ in 0..ntokens {
        let r: f64 = rng.gen_f64();
        let idx = ((vocab.len() as f64) * r * r) as u32;
        stream.extend_from_slice(&idx.min(vocab.len() as u32 - 1).to_le_bytes());
    }
    let passes = 4 * scale.outer;
    let cnt = ntokens - 1;
    // Unrolled 8-character hash: each position is a distinct static
    // instruction whose operands repeat across occurrences of a word.
    let mut hash_chain = String::new();
    for i in 0..8 {
        hash_chain.push_str(&format!(
            "        lbu  r11, {i}(r9)\n\
                     mul  r10, r10, r12\n\
                     add  r10, r10, r11\n"
        ));
    }
    let src = format!(
        "
        .entry main
main:   li   r6, {passes}
        li   r20, 1
pass:   la   r7, {INPUT}        # token-index cursor
        li   r8, {cnt}
        lw   r13, 0(r7)         # software pipeline: first word index
        addi r7, r7, 4
tok:    lw   r27, 0(r7)         # fetch NEXT word index (used next iter)
        sll  r9, r13, 3
        la   r14, {AUX}
        add  r9, r9, r14        # interned word address
        li   r10, 0
        li   r12, 31
{hash_chain}
        sll  r10, r10, 34         # keep the hash within the stored
        srl  r10, r10, 34         # width (low 30 bits)
        andi r15, r10, 0x7f     # bucket
        sll  r15, r15, 3
        la   r16, {SCRATCH}
        add  r16, r16, r15
probe:  lw   r17, 0(r16)        # stored hash
        beq  r17, r0, install
        beq  r17, r10, found
        addi r16, r16, 8        # linear probe
        b    probe
install:
        sw   r10, 0(r16)
        li   r18, 1
        sw   r18, 4(r16)
        add  r20, r20, r10
        b    next
found:  lw   r18, 4(r16)
        addi r18, r18, 1
        sw   r18, 4(r16)
        add  r20, r20, r18
next:   move r13, r27           # pipeline rotate
        addi r7, r7, 4
        addi r8, r8, -1
        bne  r8, r0, tok
        addi r6, r6, -1
        bne  r6, r0, pass
        halt
",
    );
    (src, vec![(INPUT, stream), (AUX, words)])
}

/// `vortex`-like: query traversal of an object store through a two-level
/// index — the root and inner index objects are touched by every query
/// (hot, reusable loads) while leaf objects are cold, and per-kind
/// validators run behind calls (very predictable branches, call-heavy).
pub fn vortex(scale: Scale) -> (String, Data) {
    let mut rng = Rng::new(0xB0F);
    // Layout: 4 index nodes of 4 children each at INPUT (16 bytes per
    // node: child addresses), then 16 leaf objects of 24 bytes at AUX:
    // [id, kind, a, b, pad, pad].
    let nleaves = 16usize;
    let mut index = Vec::new();
    for node in 0..4usize {
        for child in 0..4usize {
            let leaf = (AUX + ((node * 4 + child) as u64) * 24) as u32;
            index.extend_from_slice(&leaf.to_le_bytes());
        }
    }
    let mut leaves = Vec::new();
    for i in 0..nleaves {
        let id = i as u32 + 1;
        let kind: u32 = if rng.gen_range(0..100) < 80 { 0 } else { 1 + rng.gen_range(0..2u32) };
        let a: u32 = rng.gen_range(0..64);
        let b: u32 = rng.gen_range(0..64);
        for w in [id, kind, a, b, 0, 0] {
            leaves.extend_from_slice(&w.to_le_bytes());
        }
    }
    // Query stream: skewed towards a few hot leaves.
    let nqueries = 48usize;
    let queries: Vec<u8> = (0..nqueries)
        .flat_map(|_| {
            let r: f64 = rng.gen_f64();
            let q = ((nleaves as f64) * r * r) as u32;
            q.min(nleaves as u32 - 1).to_le_bytes()
        })
        .collect();
    let passes = 20 * scale.outer;
    let src = format!(
        "
        .entry main
main:   li   r6, {passes}
        li   r20, 1
pass:   la   r7, {SCRATCH}      # query cursor
        li   r8, {cnt}
        lw   r13, 0(r7)         # software pipeline: first query
        addi r7, r7, 4
query:  lw   r27, 0(r7)         # fetch NEXT query id
        # two-level index walk: node = q >> 2, child = q & 3
        srl  r9, r13, 2
        sll  r9, r9, 4
        la   r10, {INPUT}
        add  r9, r9, r10        # index-node address (4 hot values)
        andi r11, r13, 3
        sll  r11, r11, 2
        add  r11, r11, r9
        lw   r12, 0(r11)        # leaf address
        lw   r14, 4(r12)        # leaf kind
        beq  r14, r0, k0
        li   r15, 1
        beq  r14, r15, k1
        jal  check2
        b    adv
k0:     jal  check0
        b    adv
k1:     jal  check1
adv:    move r13, r27           # pipeline rotate
        addi r7, r7, 4
        addi r8, r8, -1
        bne  r8, r0, query
        addi r6, r6, -1
        bne  r6, r0, pass
        halt

# validators: leaf address in r12
check0: lw   r16, 8(r12)        # a
        lw   r17, 12(r12)       # b
        add  r18, r16, r17
        add  r20, r20, r18
        jr   ra
check1: lw   r16, 8(r12)
        lw   r17, 12(r12)
        slt  r18, r16, r17
        beq  r18, r0, c1b
        add  r20, r20, r16
        jr   ra
c1b:    add  r20, r20, r17
        jr   ra
check2: lw   r16, 0(r12)        # id
        andi r17, r16, 7
        add  r20, r20, r17
        jr   ra
",
        cnt = nqueries - 1,
    );
    (src, vec![(INPUT, index), (AUX, leaves), (SCRATCH, queries)])
}

/// `gcc`-like: evaluation of linearised expression trees with a
/// node-kind switch and an explicit value stack (compilers walk
/// linearised IR exactly like this). The post-order sequence is
/// precomputed per tree, so the hot loop's node pointer is prefetched a
/// full iteration ahead — giving the long producer distances real gcc
/// loop bodies have.
pub fn gcc(scale: Scale) -> (String, Data) {
    let mut rng = Rng::new(0x6CC);
    // Nodes: 16 bytes: [kind:u32, left:u32(index), right:u32, value:u32]
    // kinds: 0=const 1=add 2=mul 3=neg. Build a forest of small trees.
    let mut nodes: Vec<[u32; 4]> = Vec::new();
    let mut postorder: Vec<u32> = Vec::new();
    fn build(rng: &mut Rng, nodes: &mut Vec<[u32; 4]>, depth: u32) -> u32 {
        if depth == 0 || rng.gen_range(0..100) < 25 {
            nodes.push([0, 0, 0, rng.gen_range(1..50)]);
            return (nodes.len() - 1) as u32;
        }
        let kind = match rng.gen_range(0..10) {
            0..=4 => 1u32,
            5..=7 => 2,
            _ => 3,
        };
        let l = build(rng, nodes, depth - 1);
        let r = if kind == 3 { 0 } else { build(rng, nodes, depth - 1) };
        nodes.push([kind, l, r, 0]);
        (nodes.len() - 1) as u32
    }
    fn linearise(nodes: &[[u32; 4]], idx: u32, out: &mut Vec<u32>) {
        let n = nodes[idx as usize];
        if n[0] != 0 {
            linearise(nodes, n[1], out);
            if n[0] != 3 {
                linearise(nodes, n[2], out);
            }
        }
        out.push(idx);
    }
    for _ in 0..12 {
        let root = build(&mut rng, &mut nodes, 5);
        linearise(&nodes, root, &mut postorder);
        postorder.push(u32::MAX); // end-of-tree marker
    }
    postorder.push(u32::MAX - 1); // end-of-forest marker
    let node_bytes: Vec<u8> = nodes
        .iter()
        .flat_map(|n| n.iter().flat_map(|w| w.to_le_bytes()))
        .collect();
    let seq_bytes: Vec<u8> = postorder.iter().flat_map(|r| r.to_le_bytes()).collect();
    let passes = 20 * scale.outer;
    let src = format!(
        "
        .entry main
main:   li   r6, {passes}
        li   r20, 1
        la   r26, {INPUT}       # node array
        la   r28, 0x480000      # value-stack base
pass:   la   r7, {AUX}          # post-order cursor
        move r29, r28           # value-stack pointer
        lw   r13, 0(r7)         # software pipeline: first node index
        addi r7, r7, 4
walk:   lw   r27, 0(r7)         # fetch NEXT node index
        li   r9, -1
        beq  r13, r9, treedone
        li   r9, -2
        beq  r13, r9, endpass
        # decode the node (r13 was fetched a full iteration ago)
        sll  r9, r13, 4
        add  r9, r9, r26
        lw   r11, 0(r9)         # kind
        beq  r11, r0, kconst
        li   r12, 1
        beq  r11, r12, kadd
        li   r12, 2
        beq  r11, r12, kmul
        jal  do_neg
        b    next
kconst: jal  do_const
        b    next
kadd:   jal  do_add
        b    next
kmul:   jal  do_mul
next:   move r13, r27           # pipeline rotate
        addi r7, r7, 4
        b    walk
treedone:
        # pop the tree's value into the checksum
        addi r29, r29, -8
        ld   r10, 0(r29)
        add  r20, r20, r10
        move r13, r27
        addi r7, r7, 4
        b    walk
endpass:
        addi r6, r6, -1
        bne  r6, r0, pass
        halt

# stack-machine handlers: node ptr in r9, stack ptr in r29
do_const:
        lw   r10, 12(r9)
        sd   r10, 0(r29)
        addi r29, r29, 8
        jr   ra
do_add: addi r29, r29, -16
        ld   r10, 0(r29)
        ld   r11, 8(r29)
        add  r12, r10, r11
        sd   r12, 0(r29)
        addi r29, r29, 8
        jr   ra
do_mul: addi r29, r29, -16
        ld   r10, 0(r29)
        ld   r11, 8(r29)
        mul  r12, r10, r11
        sd   r12, 0(r29)
        addi r29, r29, 8
        jr   ra
do_neg: addi r29, r29, -8
        ld   r10, 0(r29)
        sub  r12, r0, r10
        sd   r12, 0(r29)
        addi r29, r29, 8
        jr   ra
",
    );
    (src, vec![(INPUT, node_bytes), (AUX, seq_bytes)])
}

/// `compress`-like: LZW-flavoured hashing over a byte stream, software
/// pipelined (the next character is fetched while the previous one is
/// hashed and probed, as optimised compress does). Hash-table *addresses*
/// recur constantly — and hit counts are written back on every hit, so
/// the buffered load values go stale — while stored codes keep changing:
/// the paper's signature for `compress` (65% address reuse, 16% result
/// reuse).
pub fn compress(scale: Scale) -> (String, Data) {
    let mut rng = Rng::new(0xC03D_0011);
    let n = 1600usize;
    // Run-heavy, text-like stream: long runs of a few hot characters make
    // a handful of (prefix, char) pairs dominate the probes.
    let mut input: Vec<u8> = Vec::with_capacity(n);
    while input.len() < n {
        let c = match rng.gen_range(0..100) {
            0..=74 => rng.gen_range(b'a'..=b'c'),
            75..=91 => rng.gen_range(b'd'..=b'h'),
            _ => b' ',
        };
        let run = rng.gen_range(3..24);
        for _ in 0..run {
            input.push(c);
        }
    }
    input.truncate(n);
    let passes = 3 * scale.outer;
    let src = format!(
        "
        .entry main
main:   li   r6, {passes}
        li   r20, 1
        li   r26, 256           # next code
        li   r24, 0             # output-buffer write offset
        li   r12, 2654435761    # hash multiplier
        la   r28, {AUX}         # hash table base
        li   r31, 0x20000       # offset of the per-slot use counters
        la   r29, {SCRATCH}     # output buffer base
        la   r30, 0x480000      # character histogram base
pass:   la   r7, {INPUT}
        li   r8, {count}
        lbu  r9, 0(r7)          # prefix = first char
        lbu  r10, 1(r7)         # software pipeline: current char
        li   r23, 0             # pipelined histogram bucket
        addi r7, r7, 2
byte:   lbu  r25, 0(r7)         # fetch NEXT char (used next iteration)
        # --- hash the (prefix, char) pair from the PREVIOUS fetch
        sll  r11, r9, 8
        or   r11, r11, r10
        mul  r13, r11, r12
        srl  r13, r13, 18
        andi r13, r13, 0x3fff
        sll  r13, r13, 3
        add  r14, r28, r13
        lw   r15, 0(r14)        # probe: stored key
        beq  r15, r11, hit
        # miss: install (key, code) and emit the prefix code
        sw   r11, 0(r14)
        sw   r26, 4(r14)
        addi r26, r26, 1
        add  r22, r29, r24
        sw   r9, 0(r22)
        addi r24, r24, 4
        andi r24, r24, 0xfff
        add  r20, r20, r9
        move r9, r10
        b    rotate
hit:    lw   r16, 4(r14)        # code becomes the new prefix
        # bump the slot's use count: the table is written on every hit,
        # so the probe loads' buffered *values* go stale while their
        # *addresses* stay reusable.
        add  r22, r14, r31
        lw   r17, 0(r22)
        addi r17, r17, 1
        sw   r17, 0(r22)
        andi r9, r16, 0xfff
        xor  r20, r20, r16
rotate:
        # --- character-class histogram (a handful of ultra-hot counters
        # that are re-written on every access: pure address reuse). The
        # bucket r23 was computed a full iteration ago, so it is settled
        # by the time the reuse test runs.
        add  r21, r23, r30
        lw   r22, 0(r21)
        addi r22, r22, 1
        sw   r22, 0(r21)
        srl  r23, r10, 4        # bucket for the next iteration
        sll  r23, r23, 2
        move r10, r25           # pipeline rotate
        addi r7, r7, 1
        addi r8, r8, -1
        bne  r8, r0, byte
        add  r20, r20, r26
        addi r6, r6, -1
        bne  r6, r0, pass
        halt
",
        count = n - 2,
    );
    (src, vec![(INPUT, input)])
}
