//! Characterisation tests: each synthetic stand-in must keep the
//! signature of its SPECint95 namesake (the properties DESIGN.md §2
//! promises). These tests pin the workloads against accidental drift —
//! if a kernel change moves a signature out of band, this fails before
//! the experiment shapes silently degrade.

use vpir_core::{CoreConfig, IrConfig, RunLimits, Simulator};
use vpir_redundancy::{analyze, LimitConfig};
use vpir_workloads::{Bench, Scale};

fn base_stats(bench: Bench) -> vpir_core::SimStats {
    let prog = bench.program(Scale::of(2));
    let mut sim = Simulator::new(&prog, CoreConfig::table1());
    sim.run(RunLimits::cycles(600_000)).clone()
}

fn ir_stats(bench: Bench) -> vpir_core::SimStats {
    let prog = bench.program(Scale::of(2));
    let mut sim = Simulator::new(&prog, CoreConfig::with_ir(IrConfig::table1()));
    sim.run(RunLimits::cycles(600_000)).clone()
}

#[test]
fn go_has_hard_branches() {
    let s = base_stats(Bench::Go);
    let rate = s.branch_pred_rate();
    assert!(
        (70.0..90.0).contains(&rate),
        "go-like branches must stay hard: {rate:.1}%"
    );
}

#[test]
fn m88ksim_is_the_reuse_leader() {
    let m88 = ir_stats(Bench::M88ksim).reuse_result_rate();
    assert!(m88 > 45.0, "interpreter redundancy: {m88:.1}%");
    for other in [Bench::Go, Bench::Ijpeg, Bench::Perl, Bench::Gcc, Bench::Compress] {
        let r = ir_stats(other).reuse_result_rate();
        assert!(
            m88 > r,
            "m88ksim ({m88:.1}%) must lead {} ({r:.1}%)",
            other.name()
        );
    }
}

#[test]
fn ijpeg_has_predictable_branches_and_low_reuse() {
    let s = base_stats(Bench::Ijpeg);
    assert!(s.branch_pred_rate() > 95.0, "{:.1}", s.branch_pred_rate());
    let r = ir_stats(Bench::Ijpeg).reuse_result_rate();
    assert!(r < 30.0, "ijpeg reuse must stay low: {r:.1}%");
}

#[test]
fn vortex_is_call_heavy_with_easy_branches() {
    let s = base_stats(Bench::Vortex);
    assert!(s.branch_pred_rate() > 93.0, "{:.1}", s.branch_pred_rate());
    assert!(s.return_pred_rate() > 99.0, "{:.1}", s.return_pred_rate());
    assert!(
        s.returns * 12 > s.branches,
        "vortex must be call-heavy: {} returns vs {} branches",
        s.returns,
        s.branches
    );
}

#[test]
fn compress_reuses_addresses_comparably_to_results() {
    // The compress signature: address reuse keeps pace with (low) result
    // reuse because the hash table is rewritten while probe addresses
    // recur.
    let s = ir_stats(Bench::Compress);
    let res = s.reuse_result_rate();
    let addr = s.reuse_addr_rate();
    assert!(res < 30.0, "compress result reuse stays low: {res:.1}%");
    assert!(
        addr > 0.6 * res,
        "compress address reuse must keep pace: addr {addr:.1}% vs res {res:.1}%"
    );
}

#[test]
fn compress_has_derivable_results() {
    // The LZW next-code counter is a textbook stride.
    let prog = Bench::Compress.program(Scale::of(2));
    let study = analyze(&prog, 400_000, LimitConfig::default());
    let (_, _, derivable, _) = study.classification_pct();
    assert!(derivable > 2.0, "LZW code counter must be derivable: {derivable:.1}%");
}

#[test]
fn gcc_redundancy_is_mostly_reusable() {
    // Figure 10's band (84–97%): the linearised-walk kernel must stay in
    // reach of it.
    let prog = Bench::Gcc.program(Scale::of(2));
    let study = analyze(&prog, 400_000, LimitConfig::default());
    assert!(
        study.reusable_pct() > 70.0,
        "gcc reusable fraction: {:.1}%",
        study.reusable_pct()
    );
}

#[test]
fn every_benchmark_mixes_memory_and_branches() {
    for bench in Bench::ALL {
        let s = base_stats(bench);
        let mem_frac = s.mem_ops as f64 / s.committed as f64;
        let br_frac = s.branches as f64 / s.committed as f64;
        assert!(
            (0.03..0.6).contains(&mem_frac),
            "{}: memory mix {mem_frac:.2}",
            bench.name()
        );
        assert!(
            (0.02..0.4).contains(&br_frac),
            "{}: branch mix {br_frac:.2}",
            bench.name()
        );
    }
}

#[test]
fn redundancy_taxonomy_is_in_the_papers_band() {
    // Figure 8: few unique results, the bulk repeated. At the full
    // experiment scale `go` reaches ~4% unique; at this reduced test
    // scale its board mutations are still warming up, so the band is
    // slightly wider here.
    for bench in Bench::ALL {
        let prog = bench.program(Scale::of(4));
        let study = analyze(&prog, 800_000, LimitConfig::default());
        let (unique, repeated, _, _) = study.classification_pct();
        assert!(unique < 12.0, "{}: unique {unique:.1}%", bench.name());
        assert!(repeated > 70.0, "{}: repeated {repeated:.1}%", bench.name());
    }
}

#[test]
fn base_ipc_is_plausible_for_a_4_wide_machine() {
    for bench in Bench::ALL {
        let s = base_stats(bench);
        let ipc = s.ipc();
        assert!(
            (0.5..4.0).contains(&ipc),
            "{}: IPC {ipc:.2} outside plausible band",
            bench.name()
        );
    }
}
