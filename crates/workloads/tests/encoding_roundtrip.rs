//! Whole-program binary-encoding round trips: every assembled workload
//! and every generated random program must encode into 32-bit words and
//! decode back to a semantically identical text segment.

use vpir_isa::{encoding, Inst, Machine, Op, Program, Reg};
use vpir_testkit::check;
use vpir_workloads::synth::{random_program, SynthConfig};
use vpir_workloads::{Bench, Scale};

/// `nop` is encoded as the canonical `sll r0, r0, 0`.
fn normalise(inst: &Inst) -> Inst {
    if inst.op == Op::Nop {
        Inst::rri(Op::Sll, Reg::ZERO, Reg::ZERO, 0)
    } else {
        *inst
    }
}

fn assert_roundtrip(prog: &Program, what: &str) {
    let words = encoding::encode_program(&prog.insts, prog.text_base)
        .unwrap_or_else(|(i, e)| panic!("{what}: instruction {i} ({}) — {e}", prog.insts[i]));
    let decoded = encoding::decode_program(&words, prog.text_base)
        .unwrap_or_else(|| panic!("{what}: undecodable word"));
    assert_eq!(decoded.len(), prog.insts.len());
    for (i, (orig, dec)) in prog.insts.iter().zip(&decoded).enumerate() {
        assert_eq!(&normalise(orig), dec, "{what}: instruction {i}");
    }
}

#[test]
fn every_benchmark_is_binary_encodable() {
    for bench in Bench::ALL {
        let prog = bench.program(Scale::test());
        assert_roundtrip(&prog, bench.name());
    }
}

#[test]
fn decoded_benchmark_runs_identically() {
    // Encode, decode, and re-run: the architectural outcome must match.
    let bench = Bench::Ijpeg;
    let prog = bench.program(Scale::test());
    let words = encoding::encode_program(&prog.insts, prog.text_base).expect("encodable");
    let decoded = encoding::decode_program(&words, prog.text_base).expect("decodable");
    let mut reprog = prog.clone();
    reprog.insts = decoded;

    let mut a = Machine::new(&prog);
    a.run(20_000_000).expect("original runs");
    let mut b = Machine::new(&reprog);
    b.run(20_000_000).expect("decoded runs");
    assert_eq!(a.icount, b.icount);
    for i in 0..vpir_isa::NUM_REGS {
        let r = Reg::from_index(i);
        assert_eq!(a.regs.read(r), b.regs.read(r), "{r}");
    }
}

/// Random structured programs round-trip through the encoding.
#[test]
fn random_programs_roundtrip() {
    check("random_programs_roundtrip", 40, |rng| {
        let seed = rng.gen_range(0u64..100_000);
        let prog = random_program(seed, SynthConfig::default());
        assert_roundtrip(&prog, &format!("synth seed {seed}"));
    });
}
