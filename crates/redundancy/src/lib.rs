//! # vpir-redundancy — the Section 4.3 limit study
//!
//! Reproduces the paper's estimate of how much of a program's total
//! redundancy instruction reuse can capture (Figures 8, 9, and 10):
//!
//! 1. **Classification** (Figure 8). Every result-producing dynamic
//!    instruction is classified against a per-static-instruction buffer
//!    of past results (capped at 10K instances):
//!    *unique* — first time this result is produced; *repeated* — the
//!    result was produced before; *derivable* — the result extends a
//!    stride detected over the previous results; *unaccounted* — the
//!    buffer was full, so the instruction cannot be classified.
//!    *Redundancy* = repeated + derivable.
//!
//! 2. **Input readiness** (Figure 9). Repeated instructions are split by
//!    whether their inputs would be ready at an early (decode-stage)
//!    reuse test: producers reused, unreused producers ≥ 50 dynamic
//!    instructions ahead, or unreused producers closer than 50
//!    (inputs *not* ready).
//!
//! 3. **Reusability** (Figure 10). Repeated instructions minus those
//!    with unready inputs, minus those whose current operand values never
//!    occurred before (different inputs), as a fraction of the total
//!    redundancy. The paper finds 84–97%.
//!
//! # Examples
//!
//! ```
//! use vpir_redundancy::{analyze, LimitConfig};
//! use vpir_isa::asm;
//!
//! let prog = asm::assemble(
//!     "       .data 0x200000
//!      vals:  .word 6, 2
//!             .text
//!             li   r1, 20
//!      loop:  la   r2, vals
//!             lw   r3, 0(r2)
//!             add  r4, r3, r3
//!             addi r1, r1, -1
//!             bne  r1, r0, loop
//!             halt",
//! )?;
//! let study = analyze(&prog, 100_000, LimitConfig::default());
//! assert!(study.repeated > 0);
//! assert!(study.reusable_pct() > 50.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap, HashSet};

use vpir_isa::{Machine, OpClass, Program, NUM_REGS};

/// Parameters of the limit study (the paper's values by default).
#[derive(Debug, Clone, Copy)]
pub struct LimitConfig {
    /// Maximum buffered instances per static instruction (paper: 10K).
    pub max_instances: usize,
    /// Producer-distance threshold for "inputs ready" (paper: 50).
    pub producer_window: u64,
}

impl Default for LimitConfig {
    fn default() -> LimitConfig {
        LimitConfig {
            max_instances: 10_000,
            producer_window: 50,
        }
    }
}

/// Results of the limit study.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LimitStudy {
    /// Result-producing dynamic instructions observed.
    pub total: u64,
    /// Figure 8: first-time results.
    pub unique: u64,
    /// Figure 8: results produced before by the same static instruction.
    pub repeated: u64,
    /// Figure 8: results on a detected stride.
    pub derivable: u64,
    /// Figure 8: instances beyond the buffering cap.
    pub unaccounted: u64,
    /// Figure 9: repeated, with at least one producer itself reused (and
    /// all inputs ready).
    pub rep_producers_reused: u64,
    /// Figure 9: repeated, unreused producers at distance ≥ window.
    pub rep_ready_far: u64,
    /// Figure 9: repeated, some unreused producer closer than the window
    /// (inputs not ready at an early reuse test).
    pub rep_not_ready: u64,
    /// Repeated instructions whose exact operand values never occurred
    /// together before (not reusable despite the repeated result).
    pub rep_different_inputs: u64,
    /// Figure 10: repeated instructions that pass the reuse conditions.
    pub reusable: u64,
}

impl LimitStudy {
    /// Total redundancy (repeated + derivable), the Figure 10 baseline.
    pub fn redundant(&self) -> u64 {
        self.repeated + self.derivable
    }

    /// Percent of dynamic result producers that are redundant.
    pub fn redundant_pct(&self) -> f64 {
        pct(self.redundant(), self.total)
    }

    /// Percent of the redundancy that is reusable (the paper: 84–97%).
    pub fn reusable_pct(&self) -> f64 {
        pct(self.reusable, self.redundant())
    }

    /// Figure 8 percentages: `(unique, repeated, derivable, unaccounted)`.
    pub fn classification_pct(&self) -> (f64, f64, f64, f64) {
        (
            pct(self.unique, self.total),
            pct(self.repeated, self.total),
            pct(self.derivable, self.total),
            pct(self.unaccounted, self.total),
        )
    }

    /// Figure 9 percentages over repeated instructions:
    /// `(producers reused, ready ≥ window, not ready)`.
    pub fn readiness_pct(&self) -> (f64, f64, f64) {
        (
            pct(self.rep_producers_reused, self.repeated),
            pct(self.rep_ready_far, self.repeated),
            pct(self.rep_not_ready, self.repeated),
        )
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Figure 8 classification counts for one static instruction (by PC).
///
/// The per-program totals in [`LimitStudy`] are the sums of these; the
/// static analyzer in `vpir-isa-analyze` joins them against its
/// invariant/stride/input-dependent prediction per static instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcClassCounts {
    /// Dynamic result-producing executions of this static instruction.
    pub executions: u64,
    /// First-time results.
    pub unique: u64,
    /// Results produced before by this static instruction.
    pub repeated: u64,
    /// Results on a detected stride.
    pub derivable: u64,
    /// Instances beyond the buffering cap.
    pub unaccounted: u64,
    /// Repeated instances passing the Figure 10 reuse conditions.
    pub reusable: u64,
}

impl PcClassCounts {
    /// The dominant Figure 8 class of this static instruction:
    /// `"repeated"`, `"derivable"`, or `"unique"` (ties break in that
    /// order; `unaccounted` never dominates a classified bucket).
    pub fn dominant_class(&self) -> &'static str {
        if self.repeated >= self.derivable && self.repeated >= self.unique {
            "repeated"
        } else if self.derivable >= self.unique {
            "derivable"
        } else {
            "unique"
        }
    }
}

#[derive(Default)]
struct StaticInfo {
    /// Distinct results seen (bounded by `max_instances`).
    results: HashSet<u64>,
    /// Operand-signature → () for "same inputs seen before" (bounded).
    inputs: HashSet<Vec<u64>>,
    /// Last two results, for stride detection.
    last: Option<u64>,
    prev: Option<u64>,
}

/// Runs the limit study over up to `max_insts` dynamic instructions of
/// `program`.
///
/// Only register-result-producing instructions participate (ALU, loads,
/// FP — not stores, branches, or jumps), matching the paper's
/// "result-producing dynamic instructions".
pub fn analyze(program: &Program, max_insts: u64, config: LimitConfig) -> LimitStudy {
    analyze_per_pc(program, max_insts, config).0
}

/// Like [`analyze`], but additionally returns the Figure 8 classification
/// broken down per static instruction address (deterministically ordered).
pub fn analyze_per_pc(
    program: &Program,
    max_insts: u64,
    config: LimitConfig,
) -> (LimitStudy, BTreeMap<u64, PcClassCounts>) {
    let mut machine = Machine::new(program);
    let mut study = LimitStudy::default();
    let mut per_pc: BTreeMap<u64, PcClassCounts> = BTreeMap::new();
    let mut statics: HashMap<u64, StaticInfo> = HashMap::new();
    // Per architectural register: (dynamic index of last writer, writer
    // was itself classified reusable).
    let mut reg_writer: Vec<Option<(u64, bool)>> = vec![None; NUM_REGS];
    // Last store time per 8-byte block (invalidates load instances).
    let mut mem_writer: HashMap<u64, u64> = HashMap::new();
    let mut dyn_idx: u64 = 0;

    while !machine.halted && dyn_idx < max_insts {
        // Capture operand values before the step (the step may overwrite
        // a register that is both source and destination).
        let src_vals: Vec<u64> = machine
            .program()
            .inst_at(machine.pc)
            .map(|i| i.sources().map(|r| machine.regs.read(r)).collect())
            .unwrap_or_default();
        let Ok(ev) = machine.step() else { break };
        dyn_idx += 1;
        let inst = ev.inst;
        let class = inst.op.class();

        // Track memory writes for load-instance invalidation.
        if class == OpClass::Store {
            if let Some(addr) = ev.out.addr {
                let width = inst.op.mem_width().expect("store width").bytes();
                for b in (addr >> 3)..=((addr + width - 1) >> 3) {
                    mem_writer.insert(b, dyn_idx);
                }
            }
        }

        let produces = inst.dst.is_some()
            && ev.out.result.is_some()
            && !matches!(class, OpClass::Jump | OpClass::JumpReg | OpClass::Misc);
        if !produces {
            // Still update writer tracking for link registers etc.
            if let (Some(dst), Some(_)) = (inst.dst, ev.out.result) {
                reg_writer[dst.index()] = Some((dyn_idx, false));
            }
            continue;
        }

        let result = ev.out.result.expect("checked");
        study.total += 1;
        let counts = per_pc.entry(ev.pc).or_default();
        counts.executions += 1;
        let info = statics.entry(ev.pc).or_default();

        // ---- Figure 8 classification ----
        let capped = info.results.len() >= config.max_instances;
        let is_repeated = info.results.contains(&result);
        let is_derivable = match (info.last, info.prev) {
            (Some(last), Some(prev)) => {
                let stride = last.wrapping_sub(prev);
                stride != 0 && result == last.wrapping_add(stride)
            }
            _ => false,
        };
        if is_repeated {
            study.repeated += 1;
            counts.repeated += 1;
        } else if is_derivable {
            study.derivable += 1;
            counts.derivable += 1;
        } else if capped {
            study.unaccounted += 1;
            counts.unaccounted += 1;
        } else {
            study.unique += 1;
            counts.unique += 1;
        }
        if !capped {
            info.results.insert(result);
        }
        info.prev = info.last;
        info.last = Some(result);

        // ---- Figure 9/10 reuse conditions (repeated instructions) ----
        let mut reusable_here = false;
        if is_repeated {
            // Operand signature: source register values (+ address and a
            // memory-validity epoch for loads).
            let mut sig: Vec<u64> = src_vals.clone();
            if class == OpClass::Load {
                let addr = ev.out.addr.expect("load address");
                sig.push(addr);
                // Fold in the last store epoch covering the loaded bytes,
                // so a store to the address distinguishes instances.
                let width = inst.op.mem_width().expect("load width").bytes();
                let epoch = ((addr >> 3)..=((addr + width - 1) >> 3))
                    .map(|b| mem_writer.get(&b).copied().unwrap_or(0))
                    .max()
                    .unwrap_or(0);
                sig.push(epoch);
            }
            let inputs_seen = info.inputs.contains(&sig);
            if info.inputs.len() < config.max_instances {
                info.inputs.insert(sig);
            }

            // Input readiness per the paper's rule.
            let mut any_reused_producer = false;
            let mut not_ready = false;
            for src in inst.sources() {
                if let Some((widx, was_reused)) = reg_writer[src.index()] {
                    if was_reused {
                        any_reused_producer = true;
                    } else if dyn_idx - widx < config.producer_window {
                        not_ready = true;
                    }
                }
            }
            if not_ready {
                study.rep_not_ready += 1;
            } else if any_reused_producer {
                study.rep_producers_reused += 1;
            } else {
                study.rep_ready_far += 1;
            }
            if !inputs_seen {
                study.rep_different_inputs += 1;
            }
            reusable_here = !not_ready && inputs_seen;
            if reusable_here {
                study.reusable += 1;
                counts.reusable += 1;
            }
        }

        if let Some(dst) = inst.dst {
            reg_writer[dst.index()] = Some((dyn_idx, reusable_here));
        }
    }
    (study, per_pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpir_isa::asm;

    fn study(src: &str) -> LimitStudy {
        let prog = asm::assemble(src).expect("assembles");
        analyze(&prog, 1_000_000, LimitConfig::default())
    }

    #[test]
    fn constant_loop_is_repeated() {
        // The same computation with the same inputs every iteration.
        let s = study(
            "       li   r1, 100
             loop:  li   r2, 7
                    add  r3, r2, r2
                    addi r1, r1, -1
                    bne  r1, r0, loop
                    halt",
        );
        assert!(s.repeated > 150, "{s:?}");
        assert!(s.redundant_pct() > 40.0, "{s:?}");
    }

    #[test]
    fn counter_is_derivable_not_repeated() {
        // `addi r1, r1, -1` produces a perfect stride.
        let s = study(
            "       li   r1, 200
             loop:  addi r1, r1, -1
                    bne  r1, r0, loop
                    halt",
        );
        assert!(s.derivable > 150, "{s:?}");
        assert!(s.repeated < 50, "{s:?}");
    }

    #[test]
    fn random_like_results_are_unique() {
        // An LCG produces a long non-repeating, non-stride sequence.
        let s = study(
            "       li   r1, 100
                    li   r2, 12345
                    li   r3, 1103515245
             loop:  mul  r2, r2, r3
                    addi r2, r2, 12345
                    addi r1, r1, -1
                    bne  r1, r0, loop
                    halt",
        );
        assert!(s.unique > 90, "{s:?}");
    }

    #[test]
    fn reusable_fraction_is_high_for_repetitive_code() {
        // Repetition with *repeating inputs* (a constant table walked the
        // same way every iteration): the reuse conditions bootstrap down
        // the dependence chain exactly as in the paper's Figure 9.
        let s = study(
            "       .data 0x200000
             vals:  .word 6, 2, 8, 2
                    .text
                    li   r1, 300
             loop:  la   r2, vals
                    lw   r3, 0(r2)
                    mul  r4, r3, r3
                    lw   r5, 4(r2)
                    add  r6, r4, r5
                    addi r1, r1, -1
                    bne  r1, r0, loop
                    halt",
        );
        assert!(s.reusable_pct() > 60.0, "{s:?}");
        assert!(
            s.rep_producers_reused > s.rep_not_ready,
            "most repeated instructions bootstrap off reused producers: {s:?}"
        );
    }

    #[test]
    fn repetition_with_fresh_inputs_is_not_reusable() {
        // A masked loop counter repeats its *results* but never its
        // *inputs* — redundancy that IR cannot capture (the gap the
        // paper quantifies as `different inputs`).
        let s = study(
            "       li   r1, 300
             loop:  andi r2, r1, 3
                    sll  r3, r2, 2
                    addi r1, r1, -1
                    bne  r1, r0, loop
                    halt",
        );
        assert!(s.repeated > 100, "{s:?}");
        assert!(s.rep_different_inputs > 100, "{s:?}");
    }

    #[test]
    fn per_pc_counts_sum_to_study_totals() {
        let prog = asm::assemble(
            "       li   r1, 80
             loop:  li   r2, 7
                    add  r3, r2, r2
                    andi r4, r1, 3
                    addi r1, r1, -1
                    bne  r1, r0, loop
                    halt",
        )
        .expect("assembles");
        let (s, per_pc) = analyze_per_pc(&prog, 1_000_000, LimitConfig::default());
        let sum = |f: fn(&PcClassCounts) -> u64| per_pc.values().map(f).sum::<u64>();
        assert_eq!(sum(|c| c.executions), s.total);
        assert_eq!(sum(|c| c.unique), s.unique);
        assert_eq!(sum(|c| c.repeated), s.repeated);
        assert_eq!(sum(|c| c.derivable), s.derivable);
        assert_eq!(sum(|c| c.unaccounted), s.unaccounted);
        assert_eq!(sum(|c| c.reusable), s.reusable);
        // The loop-invariant `li r2, 7` is dominantly repeated; the
        // counter `addi r1, r1, -1` is dominantly derivable.
        let li_pc = prog.addr_of(1);
        let ctr_pc = prog.addr_of(4);
        assert_eq!(per_pc[&li_pc].dominant_class(), "repeated");
        assert_eq!(per_pc[&ctr_pc].dominant_class(), "derivable");
    }

    #[test]
    fn counts_are_consistent() {
        let s = study(
            "       li   r1, 50
             loop:  andi r2, r1, 7
                    add  r3, r2, r1
                    addi r1, r1, -1
                    bne  r1, r0, loop
                    halt",
        );
        assert_eq!(
            s.unique + s.repeated + s.derivable + s.unaccounted,
            s.total,
            "{s:?}"
        );
        assert_eq!(
            s.rep_producers_reused + s.rep_ready_far + s.rep_not_ready,
            s.repeated,
            "{s:?}"
        );
        assert!(s.reusable <= s.repeated);
    }
}
