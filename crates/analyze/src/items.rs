//! Item extraction: fn / impl / struct spans on top of the blanked lines.
//!
//! The lexer in [`crate::lexer`] gives us comment- and literal-free
//! source lines; this module reads those lines back into a coarse item
//! structure — which functions exist, which `impl` block owns each
//! method, and what type every struct field has. That is exactly the
//! information the interprocedural passes (R8–R10) need to resolve
//! calls, and deliberately nothing more: no expressions, no generics,
//! no trait solving. Where this parser cannot tell what something is,
//! the call-graph layer records an *unknown* node rather than guessing.

use std::collections::BTreeMap;

use crate::rules::File;

/// One function (free or associated) found in the scanned tree.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`lookup`, `run_checked`).
    pub name: String,
    /// The `impl` (or `trait`) block's type name, if the fn is a method.
    pub owner: Option<String>,
    /// `Type::name` for methods, `name` for free functions.
    pub qual: String,
    /// Index of the declaring file in the scanned file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based inclusive line-index range covering signature and body.
    pub body_start: usize,
    /// 0-based inclusive end of the body (the closing-brace line).
    pub body_end: usize,
    /// Whether the declaration sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Whether the signature's return type mentions `MutexGuard` (the
    /// lock-order pass treats calls to such fns as lock acquisitions).
    pub returns_guard: bool,
}

/// A struct's fields, kept for receiver-type resolution
/// (`self.field.method(…)` resolves through the field's base type).
#[derive(Debug, Clone, Default)]
pub struct StructInfo {
    /// Field name → base type identifier (wrappers stripped).
    pub fields: BTreeMap<String, String>,
}

/// Everything the interprocedural passes need about the workspace.
#[derive(Debug, Default)]
pub struct ItemIndex {
    pub fns: Vec<FnItem>,
    /// Qualified name → indices into `fns` (duplicates across crates).
    pub by_qual: BTreeMap<String, Vec<usize>>,
    /// Bare name → indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Struct name → field types.
    pub structs: BTreeMap<String, StructInfo>,
}

impl ItemIndex {
    /// Parses every scanned file into one workspace-wide index.
    pub fn build(files: &[File]) -> ItemIndex {
        let mut index = ItemIndex::default();
        for (file_idx, file) in files.iter().enumerate() {
            parse_file(file, file_idx, &mut index);
        }
        for (i, f) in index.fns.iter().enumerate() {
            index.by_qual.entry(f.qual.clone()).or_default().push(i);
            index.by_name.entry(f.name.clone()).or_default().push(i);
        }
        index
    }

    /// The unique fn with qualified name `qual`, if exactly one exists.
    pub fn resolve_qual(&self, qual: &str) -> Option<usize> {
        match self.by_qual.get(qual).map(Vec::as_slice) {
            Some([one]) => Some(*one),
            _ => None,
        }
    }
}

/// Strips smart-pointer / container wrappers off a declared type and
/// returns the base type identifier: `Option<Box<ReuseBuffer>>` →
/// `ReuseBuffer`, `Vec<Mutex<Slot>>` → `Slot`, `&'a mut Rob` → `Rob`.
pub fn base_type(ty: &str) -> Option<String> {
    let mut t = ty.trim();
    loop {
        t = t.trim_start_matches('&').trim();
        if let Some(rest) = t.strip_prefix('\'') {
            // Skip a lifetime: `'a mut Rob` → `mut Rob`.
            t = rest.trim_start_matches(|c: char| c.is_alphanumeric() || c == '_').trim();
        }
        t = t.strip_prefix("mut ").unwrap_or(t).trim();
        let mut stripped = false;
        for wrapper in ["Option<", "Box<", "Arc<", "Rc<", "Vec<", "Mutex<", "RwLock<", "RefCell<", "Cell<"] {
            if let Some(rest) = t.strip_prefix(wrapper) {
                t = rest.strip_suffix('>').unwrap_or(rest);
                stripped = true;
                break;
            }
        }
        if !stripped {
            break;
        }
    }
    // `dyn Trait`, tuples, slices, fn pointers: no usable base ident.
    if t.starts_with("dyn ") || t.starts_with('(') || t.starts_with('[') || t.starts_with("fn") {
        return None;
    }
    // Take the last path segment, then trim generics.
    let seg = t.rsplit("::").next().unwrap_or(t);
    let ident: String = seg
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_lowercase() || c.is_ascii_digit()) {
        None
    } else {
        Some(ident)
    }
}

/// Per-line net brace delta and the depth *before* the line, used to
/// find where items end.
fn brace_delta(code: &str) -> i32 {
    let mut d = 0i32;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Extracts the type name an `impl` line introduces:
/// `impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo` → `Foo`.
fn impl_type(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("impl")?;
    // `impl` must be the keyword, not a prefix of an identifier.
    let rest = match rest.chars().next() {
        Some('<') => skip_generics(rest),
        Some(c) if c.is_whitespace() => rest,
        _ => return None,
    };
    let rest = rest.trim_start();
    // `impl Trait for Type` — the type after `for` wins.
    let subject = match rest.split_once(" for ") {
        Some((_, ty)) => ty,
        None => rest,
    };
    let ident: String = subject
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

/// Extracts the name a `trait` line introduces (default methods in a
/// trait body are indexed under the trait's name).
fn trait_name(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed
        .strip_prefix("pub trait ")
        .or_else(|| trimmed.strip_prefix("pub(crate) trait "))
        .or_else(|| trimmed.strip_prefix("trait "))?;
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

/// Skips a balanced `<…>` generic-parameter list at the start of `s`.
fn skip_generics(s: &str) -> &str {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return &s[i + 1..];
                }
            }
            _ => {}
        }
    }
    s
}

/// Extracts a fn name from a line declaring one, if any.
fn fn_name(code: &str) -> Option<String> {
    let pos = find_fn_keyword(code)?;
    let rest = &code[pos + 3..];
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Finds `fn ` used as a keyword (not `fn` inside an identifier, and
/// not in a type position like `Box<fn()>` — the latter is filtered by
/// requiring the keyword at the start of the declaration modifiers).
fn find_fn_keyword(code: &str) -> Option<usize> {
    let trimmed = code.trim_start();
    let lead = code.len() - trimmed.len();
    // Declarations start with an optional modifier run then `fn `.
    let mut rest = trimmed;
    let mut changed = true;
    while changed {
        changed = false;
        for m in ["pub(crate) ", "pub(super) ", "pub ", "const ", "async ", "unsafe "] {
            if let Some(r) = rest.strip_prefix(m) {
                rest = r;
                changed = true;
            }
        }
    }
    if rest.starts_with("fn ") {
        Some(lead + (trimmed.len() - rest.len()))
    } else {
        None
    }
}

/// Parses one file's items into the index.
fn parse_file(file: &File, file_idx: usize, index: &mut ItemIndex) {
    let lines = &file.lines;
    // Owner stack: (owner type, depth its block lives at, armed once
    // the opening brace has actually been seen).
    let mut owners: Vec<(String, i32, bool)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < lines.len() {
        let code = &lines[i].code;
        for o in &mut owners {
            if depth >= o.1 {
                o.2 = true;
            }
        }
        while owners.last().is_some_and(|(_, d, armed)| *armed && depth < *d) {
            owners.pop();
        }
        if let Some(ty) = impl_type(code).or_else(|| trait_name(code)) {
            // A whole impl block on one line (`impl Q { fn f() {} }`)
            // carries its method inline; index it before moving on.
            if brace_delta(code) == 0 && code.contains('{') {
                if let Some(open) = code.find('{') {
                    let inline = &code[open + 1..];
                    if let Some(name) = fn_name(inline) {
                        index.fns.push(FnItem {
                            qual: format!("{ty}::{name}"),
                            name,
                            owner: Some(ty.clone()),
                            file: file_idx,
                            line: lines[i].number,
                            body_start: i,
                            body_end: i,
                            in_test: lines[i].in_test,
                            returns_guard: inline.contains("MutexGuard"),
                        });
                    }
                }
                i += 1;
                continue;
            }
            // The block opens on this or a following line.
            owners.push((ty, depth + 1, code.contains('{')));
            depth += brace_delta(code);
            i += 1;
            continue;
        }
        if struct_decl(code).is_some() {
            i = parse_struct(file, i, index);
            // depth is unchanged across a whole struct declaration.
            continue;
        }
        if let Some(name) = fn_name(code) {
            let (sig_end, body_end, returns_guard) = fn_extent(lines, i);
            let owner = owners.last().map(|(t, _, _)| t.clone());
            let qual = match &owner {
                Some(t) => format!("{t}::{name}"),
                None => name.clone(),
            };
            index.fns.push(FnItem {
                name,
                owner,
                qual,
                file: file_idx,
                line: lines[i].number,
                body_start: i,
                body_end,
                in_test: lines[i].in_test,
                returns_guard,
            });
            // Trait-signature-only fns (no body) advance past the `;`.
            let _ = sig_end;
            for line in &lines[i..=body_end] {
                depth += brace_delta(&line.code);
            }
            i = body_end + 1;
            continue;
        }
        depth += brace_delta(code);
        i += 1;
    }
}

/// Finds the extent of a fn starting at line `start`: the end of its
/// signature, the end of its body (same as the signature end for
/// body-less trait signatures), and whether the return type mentions
/// `MutexGuard`.
fn fn_extent(lines: &[crate::lexer::SourceLine], start: usize) -> (usize, usize, bool) {
    let mut sig = String::new();
    let mut depth = 0i32;
    let mut opened = false;
    let mut j = start;
    while j < lines.len() {
        let code = &lines[j].code;
        if !opened {
            sig.push_str(code);
            sig.push(' ');
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        let guard = sig.contains("MutexGuard");
                        return (j, j, guard);
                    }
                }
                ';' if !opened && depth == 0 => {
                    // Trait method signature without a body.
                    let guard = sig.contains("MutexGuard");
                    return (j, j, guard);
                }
                _ => {}
            }
        }
        j += 1;
    }
    let guard = sig.contains("MutexGuard");
    (lines.len() - 1, lines.len() - 1, guard)
}

/// Extracts the struct name from a declaration line.
fn struct_decl(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed
        .strip_prefix("pub struct ")
        .or_else(|| trimmed.strip_prefix("pub(crate) struct "))
        .or_else(|| trimmed.strip_prefix("struct "))?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Parses a struct declaration starting at line `start`; returns the
/// line index just past it.
fn parse_struct(file: &File, start: usize, index: &mut ItemIndex) -> usize {
    let lines = &file.lines;
    let name = match struct_decl(&lines[start].code) {
        Some(n) => n,
        None => return start + 1,
    };
    // Gather the struct's full text through its closing brace (or the
    // `;` of a unit/tuple struct).
    let mut text = String::new();
    let mut depth = 0i32;
    let mut opened = false;
    let mut end = lines.len();
    'outer: for (j, line) in lines.iter().enumerate().skip(start) {
        text.push_str(&line.code);
        text.push('\n');
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                ';' if !opened && depth == 0 => {
                    end = j + 1;
                    break 'outer;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        end = j + 1;
                        break 'outer;
                    }
                }
                _ => {}
            }
        }
    }
    let mut info = StructInfo::default();
    if let Some(open) = text.find('{') {
        let close = text.rfind('}').unwrap_or(text.len());
        if open < close {
            for decl in split_top_level(&text[open + 1..close]) {
                if let Some((fname, ty)) = field_decl(&decl) {
                    if let Some(base) = base_type(&ty) {
                        info.fields.insert(fname, base);
                    }
                }
            }
        }
    }
    index.structs.insert(name, info);
    end
}

/// Splits `text` on commas that sit outside `<…>`, `(…)`, `[…]`, `{…}`.
fn split_top_level(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '<' | '(' | '[' | '{' => depth += 1,
            '>' | ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts `name` and type text from a `pub name: Type` declaration.
fn field_decl(decl: &str) -> Option<(String, String)> {
    let trimmed = decl.trim();
    let rest = trimmed
        .strip_prefix("pub(crate) ")
        .or_else(|| trimmed.strip_prefix("pub(super) "))
        .or_else(|| trimmed.strip_prefix("pub "))
        .unwrap_or(trimmed);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "struct" || name == "fn" || name == "impl" {
        return None;
    }
    let after = rest[name.len()..].trim_start();
    let ty = after.strip_prefix(':')?;
    // `::` marks a path expression, not a field's `name: Type`.
    if ty.starts_with(':') {
        return None;
    }
    Some((name, ty.trim().trim_end_matches(',').to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn index(src: &str) -> ItemIndex {
        let file = File { path: "crates/core/src/x.rs".into(), lines: scan(src) };
        ItemIndex::build(&[file])
    }

    #[test]
    fn free_fns_and_methods_are_indexed() {
        let idx = index(
            "fn helper(x: u64) -> u64 { x }\n\
             pub struct Machine { rb: Option<Buffer> }\n\
             impl Machine {\n    pub fn step(&mut self) { helper(1); }\n}\n\
             impl Display for Machine {\n    fn fmt(&self) {}\n}\n",
        );
        assert!(idx.resolve_qual("helper").is_some());
        assert!(idx.resolve_qual("Machine::step").is_some());
        assert!(idx.resolve_qual("Machine::fmt").is_some());
        assert_eq!(idx.structs["Machine"].fields["rb"], "Buffer");
    }

    #[test]
    fn fn_extents_cover_multiline_bodies_and_signatures() {
        let idx = index(
            "impl T {\n    fn a(\n        x: u64,\n    ) -> u64 {\n        x\n    }\n    fn b(&self) {}\n}\n",
        );
        let a = &idx.fns[idx.resolve_qual("T::a").unwrap()];
        assert_eq!((a.body_start, a.body_end), (1, 5));
        let b = &idx.fns[idx.resolve_qual("T::b").unwrap()];
        assert_eq!(b.line, 7);
    }

    #[test]
    fn guard_returning_helpers_are_marked() {
        let idx = index(
            "impl Q {\n    fn lock(&self) -> std::sync::MutexGuard<'_, u64> {\n        self.inner.lock().unwrap()\n    }\n}\n",
        );
        assert!(idx.fns[idx.resolve_qual("Q::lock").unwrap()].returns_guard);
    }

    #[test]
    fn base_type_strips_wrappers() {
        assert_eq!(base_type("Option<Box<ReuseBuffer>>").as_deref(), Some("ReuseBuffer"));
        assert_eq!(base_type("Vec<Mutex<Option<SlotOut>>>").as_deref(), Some("SlotOut"));
        assert_eq!(base_type("&'a mut Rob").as_deref(), Some("Rob"));
        assert_eq!(base_type("u64"), None);
        assert_eq!(base_type("Option<Box<dyn Predictor>>"), None);
        assert_eq!(base_type("vpir_isa::MemImage").as_deref(), Some("MemImage"));
    }

    #[test]
    fn trait_default_methods_get_the_trait_as_owner() {
        let idx = index(
            "pub trait Predictor {\n    fn predict(&mut self, pc: u64) -> Option<u64>;\n    fn name(&self) -> &'static str { \"p\" }\n}\n",
        );
        assert!(idx.resolve_qual("Predictor::predict").is_some());
        assert!(idx.resolve_qual("Predictor::name").is_some());
    }
}
