//! The seven simulator-invariant rules.
//!
//! | id | name        | scope                                   |
//! |----|-------------|-----------------------------------------|
//! | R1 | determinism | cycle-level crates                              |
//! | R2 | panic       | cycle-level crates + `isa/src/asm.rs` + `serve` |
//! | R3 | stats       | `*Stats` structs in core + stats crates         |
//! | R4 | config      | `crates/core/src/config.rs` fields              |
//! | R5 | counter     | same structs as R3                              |
//! | R6 | wallclock   | cycle-level crates                              |
//! | R7 | columnar    | cycle-level crates minus the column module      |
//!
//! Cycle-level crates are the ones whose state evolves per simulated
//! cycle: `core`, `reuse`, `predict`, `branch`, `mem`, `mechanism`.
//! Iteration order
//! there is part of the simulated machine's behaviour, so hash-ordered
//! collections (R1) would make runs depend on hash seeding, and a
//! panic mid-cycle (R2) would tear down a simulation that a malformed
//! workload should instead surface as an error. R3–R5 keep the
//! measurement layer honest: a counter that is never updated, never
//! reported, or silently truncated produces plausible-looking but
//! wrong tables.

use crate::findings::{Finding, Rule};
use crate::lexer::SourceLine;

/// One scanned file: path relative to the analyzed root, plus lines.
pub struct File {
    pub path: String,
    pub lines: Vec<SourceLine>,
}

/// The crates whose per-cycle state must be deterministic & panic-free.
const CYCLE_CRATES: [&str; 6] = ["core", "reuse", "predict", "branch", "mem", "mechanism"];

/// The one file allowed to declare `Vec<Option<…>>` state: the ROB
/// column module, where array-of-structs remnants are being burned down
/// behind the columnar accessors (R7's escape hatch is the module
/// boundary, not an allow comment).
const COLUMN_MODULE: &str = "crates/core/src/rob.rs";

fn in_cycle_crate(path: &str) -> bool {
    CYCLE_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

fn in_panic_scope(path: &str) -> bool {
    // The service crate handles hostile byte streams on its request
    // path: a panic there takes down a connection or worker thread, so
    // it gets the same panic-freedom discipline as the cycle crates.
    in_cycle_crate(path)
        || path == "crates/isa/src/asm.rs"
        || path.starts_with("crates/serve/src/")
}

/// Runs every rule over the scanned files.
pub fn run_all(files: &[File]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if in_cycle_crate(&f.path) {
            determinism(f, &mut findings);
            wallclock(f, &mut findings);
            if f.path != COLUMN_MODULE {
                columnar(f, &mut findings);
            }
        }
        if in_panic_scope(&f.path) {
            panic_freedom(f, &mut findings);
        }
    }
    stats_discipline(files, &mut findings);
    config_discipline(files, &mut findings);
    counter_safety(files, &mut findings);
    findings
}

/// Creates a finding, honoring a same-line `vpir: allow` comment.
pub(crate) fn emit(findings: &mut Vec<Finding>, rule: Rule, file: &File, line: usize, message: String) {
    let suppressed = file
        .lines
        .get(line - 1)
        .and_then(|l| l.allow.as_ref())
        .filter(|a| a.rule == rule.name())
        .map(|a| a.reason.clone());
    findings.push(Finding {
        rule,
        file: file.path.clone(),
        line,
        col: 0,
        message,
        suppressed,
    });
}

// ----------------------------------------------------------------
// R1: determinism.
// ----------------------------------------------------------------

fn determinism(file: &File, findings: &mut Vec<Finding>) {
    for line in live_lines(file) {
        for ty in ["HashMap", "HashSet"] {
            if has_token(&line.code, ty) {
                emit(
                    findings,
                    Rule::Determinism,
                    file,
                    line.number,
                    format!("{ty} in cycle-level code: iteration order depends on hash seeding; use BTreeMap/BTreeSet or a sorted collect"),
                );
            }
        }
    }
}

// ----------------------------------------------------------------
// R6: no wall-clock reads.
// ----------------------------------------------------------------

fn wallclock(file: &File, findings: &mut Vec<Finding>) {
    for line in live_lines(file) {
        for ty in ["Instant", "SystemTime"] {
            if has_token(&line.code, ty) {
                emit(
                    findings,
                    Rule::WallClock,
                    file,
                    line.number,
                    format!("{ty} in cycle-level code: wall-clock reads make simulated behaviour depend on host timing; measure in cycles, or time at the harness layer"),
                );
            }
        }
    }
}

// ----------------------------------------------------------------
// R7: columnar hot state.
// ----------------------------------------------------------------

/// Flags `Vec<Option<…>>` struct fields in cycle-level code outside the
/// column module. That shape is the array-of-structs layout the SoA
/// refactor removed from the hot loop: per-cycle scans over it pay an
/// occupancy branch plus a strided load per slot, where parallel
/// columns behind a validity bitmap pay one word-test per 64 slots.
fn columnar(file: &File, findings: &mut Vec<Finding>) {
    let (fields, _) = parse_structs(file);
    for field in &fields {
        if field.ty.contains("Vec<Option<") {
            emit(
                findings,
                Rule::Columnar,
                file,
                field.line,
                format!(
                    "field `{}.{}` is `{}`: Vec<Option<…>> hot state outside {COLUMN_MODULE}; split it into parallel columns with a validity bitmap",
                    field.struct_name, field.name, field.ty
                ),
            );
        }
    }
}

// ----------------------------------------------------------------
// R2: panic-freedom.
// ----------------------------------------------------------------

fn panic_freedom(file: &File, findings: &mut Vec<Finding>) {
    for line in live_lines(file) {
        for pat in [".unwrap()", ".expect("] {
            if line.code.contains(pat) {
                emit(
                    findings,
                    Rule::Panic,
                    file,
                    line.number,
                    format!("`{pat}` in a pipeline hot path: return an error or restructure; panics tear down the simulation mid-cycle"),
                );
            }
        }
        for mac in ["panic", "unreachable", "todo", "unimplemented"] {
            if has_macro(&line.code, mac) {
                emit(
                    findings,
                    Rule::Panic,
                    file,
                    line.number,
                    format!("`{mac}!` in a pipeline hot path"),
                );
            }
        }
        for idx in literal_indexes(&line.code) {
            emit(
                findings,
                Rule::Panic,
                file,
                line.number,
                format!("direct indexing `[{idx}]` can panic out of bounds; use `.get({idx})`"),
            );
        }
    }
}

/// Finds `name!` macro invocations with a token boundary before `name`.
pub(crate) fn has_macro(code: &str, name: &str) -> bool {
    let pat = format!("{name}!");
    let mut from = 0;
    while let Some(pos) = code[from..].find(&pat) {
        let at = from + pos;
        let boundary = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        from = at + pat.len();
    }
    false
}

/// Collects integer-literal index expressions: `xs[0]`, `pair.1[12]`.
///
/// Loop-style indexing (`xs[i]`, `map[reg.index()]`) is deliberately
/// not flagged — the index is usually derived from the collection's
/// own length, and flagging it would drown real findings in noise. A
/// literal index instead encodes a fixed-size assumption that an
/// `.get(n)` makes explicit.
pub(crate) fn literal_indexes(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        // What precedes the bracket decides slice-index vs array type
        // or literal: only an expression tail (identifier, `)`, `]`)
        // makes this an index operation.
        let prev = chars[..i].iter().rev().find(|c| !c.is_whitespace());
        let is_index = prev.is_some_and(|&p| p.is_alphanumeric() || p == '_' || p == ')' || p == ']');
        if !is_index {
            continue;
        }
        let mut depth = 1;
        let mut j = i + 1;
        while j < chars.len() && depth > 0 {
            match chars[j] {
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if depth != 0 {
            continue; // index spans lines; out of this checker's reach
        }
        let inner: String = chars[i + 1..j - 1].iter().collect();
        let trimmed = inner.trim();
        if !trimmed.is_empty() && trimmed.chars().all(|c| c.is_ascii_digit() || c == '_') {
            out.push(trimmed.to_string());
        }
    }
    out
}

// ----------------------------------------------------------------
// Struct parsing shared by R3/R4/R5.
// ----------------------------------------------------------------

/// One parsed struct field.
struct Field {
    struct_name: String,
    name: String,
    /// The declared type text (up to the trailing comma).
    ty: String,
    line: usize,
}

/// A struct declaration's extent, for "outside the declaration" tests.
struct StructRegion {
    start: usize,
    end: usize,
}

/// Parses `struct` declarations and their named fields from a file.
fn parse_structs(file: &File) -> (Vec<Field>, Vec<StructRegion>) {
    let mut fields = Vec::new();
    let mut regions = Vec::new();
    let lines = &file.lines;
    let mut i = 0usize;
    while i < lines.len() {
        let code = &lines[i].code;
        let Some(name) = struct_name(code) else {
            i += 1;
            continue;
        };
        // Track braces from the declaration line to its close.
        let mut depth = 0i32;
        let mut opened = false;
        let mut end = i;
        'outer: for (j, line) in lines.iter().enumerate().skip(i) {
            for c in line.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    ';' if !opened => {
                        // Unit or tuple struct: no named fields.
                        end = j;
                        break 'outer;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = j;
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
            end = j;
        }
        for line in &lines[i..=end] {
            if let Some((fname, ty)) = field_decl(&line.code) {
                fields.push(Field {
                    struct_name: name.clone(),
                    name: fname,
                    ty,
                    line: line.number,
                });
            }
        }
        regions.push(StructRegion { start: i + 1, end: end + 1 });
        i = end + 1;
    }
    (fields, regions)
}

/// Extracts the struct name from a `struct Foo` declaration line.
fn struct_name(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed
        .strip_prefix("pub struct ")
        .or_else(|| trimmed.strip_prefix("struct "))?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Extracts `name` and type text from a `pub name: Type,` field line.
fn field_decl(code: &str) -> Option<(String, String)> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("pub ").unwrap_or(trimmed);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "struct" || name == "fn" {
        return None;
    }
    let after = &rest[name.len()..];
    let after = after.trim_start();
    let ty = after.strip_prefix(':')?;
    Some((name, ty.trim().trim_end_matches(',').to_string()))
}

/// True when `tok` occurs in `code` with non-identifier neighbors.
fn has_token(code: &str, tok: &str) -> bool {
    find_token(code, tok).is_some()
}

fn find_token(code: &str, tok: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = code[from..].find(tok) {
        let at = from + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !code[at + tok.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + tok.len();
    }
    None
}

/// True when `.field` (a member access or member update of `field`)
/// occurs in `code`.
fn has_member_access(code: &str, field: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(field) {
        let at = from + pos;
        let dotted = code[..at].chars().next_back() == Some('.');
        let after_ok = !code[at + field.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if dotted && after_ok {
            return true;
        }
        from = at + field.len();
    }
    false
}

/// Non-test lines of a file.
fn live_lines(file: &File) -> impl Iterator<Item = &SourceLine> {
    file.lines.iter().filter(|l| !l.in_test)
}

// ----------------------------------------------------------------
// R3: stats discipline.
// ----------------------------------------------------------------

/// Files whose `*Stats` structs are held to R3/R5.
fn stats_decl_files<'a>(files: &'a [File]) -> impl Iterator<Item = &'a File> {
    files
        .iter()
        .filter(|f| f.path == "crates/core/src/stats.rs" || f.path.starts_with("crates/stats/src/"))
}

fn stats_discipline(files: &[File], findings: &mut Vec<Finding>) {
    for decl_file in stats_decl_files(files) {
        let (fields, regions) = parse_structs(decl_file);
        for field in fields.iter().filter(|f| f.struct_name.ends_with("Stats")) {
            let in_decl = |f: &File, line: usize| {
                f.path == decl_file.path
                    && regions.iter().any(|r| line >= r.start && line <= r.end)
            };
            // Updated: some `.field` access outside the declaration.
            let updated = files.iter().any(|f| {
                live_lines(f).any(|l| {
                    !in_decl(f, l.number) && has_member_access(&l.code, &field.name)
                })
            });
            // Surfaced: the field participates in the reporting layer —
            // the declaring file's methods or the bench report.
            let surfaced = files
                .iter()
                .filter(|f| f.path == decl_file.path || f.path == "crates/bench/src/report.rs")
                .any(|f| {
                    live_lines(f).any(|l| {
                        !in_decl(f, l.number) && has_token(&l.code, &field.name)
                    })
                });
            if !updated {
                emit(
                    findings,
                    Rule::Stats,
                    decl_file,
                    field.line,
                    format!(
                        "stats field `{}.{}` is never updated: no `.{}` access outside its declaration",
                        field.struct_name, field.name, field.name
                    ),
                );
            } else if !surfaced {
                emit(
                    findings,
                    Rule::Stats,
                    decl_file,
                    field.line,
                    format!(
                        "stats field `{}.{}` is never surfaced: unused by {} methods and by crates/bench/src/report.rs",
                        field.struct_name, field.name, decl_file.path
                    ),
                );
            }
        }
    }
}

// ----------------------------------------------------------------
// R4: config discipline.
// ----------------------------------------------------------------

fn config_discipline(files: &[File], findings: &mut Vec<Finding>) {
    let Some(decl_file) = files.iter().find(|f| f.path == "crates/core/src/config.rs") else {
        return;
    };
    let (fields, _) = parse_structs(decl_file);
    for field in &fields {
        let read_elsewhere = files.iter().any(|f| {
            f.path != decl_file.path
                && live_lines(f).any(|l| has_token(&l.code, &field.name))
        });
        if !read_elsewhere {
            emit(
                findings,
                Rule::Config,
                decl_file,
                field.line,
                format!(
                    "config field `{}.{}` is never read outside {}: a knob that changes nothing misleads every experiment built on it",
                    field.struct_name, field.name, decl_file.path
                ),
            );
        }
    }
}

// ----------------------------------------------------------------
// R5: counter safety.
// ----------------------------------------------------------------

const NARROW_INTS: [&str; 9] = [
    "u8", "u16", "u32", "usize", "i8", "i16", "i32", "i64", "isize",
];

fn counter_safety(files: &[File], findings: &mut Vec<Finding>) {
    for decl_file in stats_decl_files(files) {
        let (fields, _) = parse_structs(decl_file);
        for field in fields.iter().filter(|f| f.struct_name.ends_with("Stats")) {
            for ty in NARROW_INTS {
                if has_token(&field.ty, ty) {
                    emit(
                        findings,
                        Rule::Counter,
                        decl_file,
                        field.line,
                        format!(
                            "stat counter `{}.{}` is `{}`: narrower than u64, long runs overflow silently in release builds",
                            field.struct_name, field.name, field.ty
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn file(path: &str, src: &str) -> File {
        File {
            path: path.to_string(),
            lines: scan(src),
        }
    }

    #[test]
    fn r1_flags_hash_collections_in_cycle_crates_only() {
        let bad = file("crates/core/src/x.rs", "use std::collections::HashMap;\n");
        let ok = file("crates/workloads/src/x.rs", "use std::collections::HashMap;\n");
        let findings = run_all(&[bad, ok]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::Determinism);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn r2_flags_panics_and_honors_allow() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap();\n    x.expect(\"y\"); // vpir: allow(panic, tested invariant)\n}\n";
        let findings = run_all(&[file("crates/mem/src/x.rs", src)]);
        let live: Vec<_> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].line, 2);
        assert_eq!(findings.iter().filter(|f| f.suppressed.is_some()).count(), 1);
    }

    #[test]
    fn r2_covers_the_serve_crate_request_path() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        let flagged = run_all(&[file("crates/serve/src/http.rs", src)]);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].rule, Rule::Panic);
        // The service's integration tests are outside src/ and exempt.
        let exempt = run_all(&[file("crates/serve/tests/http.rs", src)]);
        assert!(exempt.is_empty());
    }

    #[test]
    fn r2_literal_index_only() {
        let src = "fn f(xs: &[u64], i: usize) -> u64 { xs[0] + xs[i] }\n";
        let findings = run_all(&[file("crates/branch/src/x.rs", src)]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("[0]"));
    }

    #[test]
    fn r2_skips_test_modules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        let findings = run_all(&[file("crates/core/src/x.rs", src)]);
        assert!(findings.is_empty());
    }

    #[test]
    fn r3_flags_unused_and_unsurfaced_fields() {
        let stats = file(
            "crates/core/src/stats.rs",
            "pub struct SimStats {\n    pub used: u64,\n    pub dead: u64,\n}\nimpl SimStats {\n    pub fn report(&self) -> u64 { self.used }\n}\n",
        );
        let pipeline = file(
            "crates/core/src/pipeline.rs",
            "fn tick(s: &mut vpir::SimStats) { s.used += 1; }\n",
        );
        let findings = run_all(&[stats, pipeline]);
        let r3: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Stats).collect();
        assert_eq!(r3.len(), 1);
        assert!(r3[0].message.contains("SimStats.dead"));
    }

    #[test]
    fn r4_flags_unread_config_fields() {
        let config = file(
            "crates/core/src/config.rs",
            "pub struct CoreConfig {\n    pub width: usize,\n    pub ghost: usize,\n}\n",
        );
        let user = file("crates/core/src/pipeline.rs", "fn f(w: usize) { let _ = w; }\nfn g(c: &C) -> usize { c.width }\n");
        let findings = run_all(&[config, user]);
        let r4: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Config).collect();
        assert_eq!(r4.len(), 1);
        assert!(r4[0].message.contains("ghost"));
    }

    #[test]
    fn r7_flags_vec_option_fields_outside_the_column_module() {
        let src = "pub struct Table {\n    pub slots: Vec<Option<(u64, u64)>>,\n    pub tags: Vec<u64>,\n}\n";
        let bad = run_all(&[file("crates/branch/src/x.rs", src)]);
        let r7: Vec<_> = bad.iter().filter(|f| f.rule == Rule::Columnar).collect();
        assert_eq!(r7.len(), 1);
        assert!(r7[0].message.contains("Table.slots"));
        // The column module itself is the burn-down site and exempt.
        let exempt = run_all(&[file("crates/core/src/rob.rs", src)]);
        assert!(exempt.iter().all(|f| f.rule != Rule::Columnar));
        // Non-cycle crates may use whatever layout they like.
        let cold = run_all(&[file("crates/bench/src/x.rs", src)]);
        assert!(cold.iter().all(|f| f.rule != Rule::Columnar));
    }

    #[test]
    fn r5_flags_narrow_counters() {
        let stats = file(
            "crates/core/src/stats.rs",
            "pub struct FooStats {\n    pub wide: u64,\n    pub narrow: u32,\n}\nimpl FooStats { pub fn r(&self) -> u64 { self.wide + self.narrow as u64 } }\n",
        );
        let user = file("crates/core/src/lib.rs", "fn f(s: &S) { s.wide; s.narrow; }\n");
        let findings = run_all(&[stats, user]);
        let r5: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Counter).collect();
        assert_eq!(r5.len(), 1);
        assert!(r5[0].message.contains("narrow"));
    }
}
