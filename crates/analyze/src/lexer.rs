//! A minimal Rust source scanner.
//!
//! The rules in [`crate::rules`] work on *code text*: source lines with
//! comment and literal contents blanked out, so that a `HashMap` inside
//! a doc comment or a `panic!` inside a string never produces a
//! finding. This module performs that blanking in a single pass,
//! records `// vpir: allow(rule, reason)` suppression comments as it
//! strips them, and marks the lines that belong to `#[cfg(test)]`
//! blocks (test-only code is exempt from the hot-path rules).
//!
//! This is not a full lexer — it only understands the token classes
//! that matter for blanking: line and (nested) block comments, string
//! and raw-string literals, byte strings, character literals, and the
//! character-versus-lifetime ambiguity after a `'`.

/// One suppression comment: `// vpir: allow(rule, reason)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule name being suppressed (e.g. `panic`).
    pub rule: String,
    /// The justification text after the comma.
    pub reason: String,
}

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// 1-based line number in the original file.
    pub number: usize,
    /// The line with comments and literal contents replaced by spaces.
    /// Quote delimiters are kept so call shapes like `.expect("…")`
    /// remain recognisable.
    pub code: String,
    /// A `// vpir: allow(...)` comment found on this line, if any.
    pub allow: Option<Allow>,
    /// True when the line sits inside a `#[cfg(test)]` block.
    pub in_test: bool,
}

/// Scans a whole file into blanked [`SourceLine`]s.
pub fn scan(source: &str) -> Vec<SourceLine> {
    let blanked = blank(source);
    let mut lines: Vec<SourceLine> = Vec::new();
    for (i, (code, allow)) in blanked.into_iter().enumerate() {
        lines.push(SourceLine {
            number: i + 1,
            code,
            allow,
            in_test: false,
        });
    }
    mark_test_regions(&mut lines);
    lines
}

/// Pass 1: blanks comments and literal contents, collecting allows.
/// Returns one `(code, allow)` pair per input line.
fn blank(source: &str) -> Vec<(String, Option<Allow>)> {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }

    let chars: Vec<char> = source.chars().collect();
    let mut mode = Mode::Code;
    let mut out = String::with_capacity(source.len());
    let mut allows: Vec<(usize, Allow)> = Vec::new();
    let mut line_no = 1usize;
    let mut i = 0usize;

    let at = |i: usize| chars.get(i).copied();

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Newlines always survive, whatever mode we are in, so the
            // output keeps the original line structure.
            out.push('\n');
            line_no += 1;
            i += 1;
            // Character literals cannot span lines; resetting here
            // keeps a misread quote from swallowing the rest of the
            // file. String literals may legitimately continue.
            if mode == Mode::Char {
                mode = Mode::Code;
            }
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && at(i + 1) == Some('/') {
                    // Line comment: capture to end of line, look for a
                    // suppression, and blank the whole thing.
                    let start = i;
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    if let Some(a) = parse_allow(&text) {
                        allows.push((line_no, a));
                    }
                    for _ in start..i {
                        out.push(' ');
                    }
                } else if c == '/' && at(i + 1) == Some('*') {
                    mode = Mode::Block(1);
                    out.push_str("  ");
                    i += 2;
                } else if is_raw_string_start(&chars, i) {
                    let mut j = i;
                    if chars[j] == 'b' {
                        out.push(' ');
                        j += 1;
                    }
                    out.push(' '); // the `r`
                    j += 1;
                    let mut hashes = 0u32;
                    while at(j) == Some('#') {
                        hashes += 1;
                        out.push(' ');
                        j += 1;
                    }
                    out.push('"');
                    j += 1;
                    mode = Mode::RawStr(hashes);
                    i = j;
                } else if c == '"' || (c == 'b' && at(i + 1) == Some('"') && !ident_before(&chars, i))
                {
                    if c == 'b' {
                        out.push(' ');
                        i += 1;
                    }
                    out.push('"');
                    i += 1;
                    mode = Mode::Str;
                } else if c == '\'' {
                    // Disambiguate character literal from lifetime.
                    if at(i + 1) == Some('\\')
                        || (at(i + 2) == Some('\'') && at(i + 1) != Some('\''))
                    {
                        out.push('\'');
                        i += 1;
                        mode = Mode::Char;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            Mode::Block(depth) => {
                if c == '*' && at(i + 1) == Some('/') {
                    out.push_str("  ");
                    i += 2;
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                } else if c == '/' && at(i + 1) == Some('*') {
                    out.push_str("  ");
                    i += 2;
                    mode = Mode::Block(depth + 1);
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // A backslash escapes exactly one character — unless
                    // that character is a newline (a multi-line string
                    // continuation), which must survive so the blanked
                    // output keeps the original line structure.
                    if at(i + 1) == Some('\n') {
                        out.push(' ');
                        i += 1;
                    } else {
                        out.push_str("  ");
                        i += 2;
                    }
                } else if c == '"' {
                    out.push('"');
                    i += 1;
                    mode = Mode::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if at(i + 1 + k as usize) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                        continue;
                    }
                }
                out.push(' ');
                i += 1;
            }
            Mode::Char => {
                if c == '\\' {
                    // Same newline care as Mode::Str: a stray escape at
                    // end of line must not swallow the line break.
                    if at(i + 1) == Some('\n') {
                        out.push(' ');
                        i += 1;
                    } else {
                        out.push_str("  ");
                        i += 2;
                    }
                } else if c == '\'' {
                    out.push('\'');
                    i += 1;
                    mode = Mode::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }

    let mut result: Vec<(String, Option<Allow>)> = Vec::new();
    for (n, line) in out.lines().enumerate() {
        let allow = allows
            .iter()
            .find(|(ln, _)| *ln == n + 1)
            .map(|(_, a)| a.clone());
        result.push((line.to_string(), allow));
    }
    // `str::lines` drops a trailing empty line; rules index by line
    // number so the count only has to cover every numbered allow.
    result
}

/// True when `chars[i]` starts a raw-string literal (`r"`, `r#"`,
/// `br##"`, …) rather than an identifier ending in `r`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    if ident_before(chars, i) {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// True when the character before index `i` continues an identifier,
/// meaning the `r`/`b` at `i` is the tail of a name, not a prefix.
fn ident_before(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Parses `// vpir: allow(rule, reason)` from a line-comment's text.
fn parse_allow(comment: &str) -> Option<Allow> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("vpir:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (rule, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (inner.trim(), ""),
    };
    if rule.is_empty() {
        return None;
    }
    Some(Allow {
        rule: rule.to_string(),
        reason: reason.to_string(),
    })
}

/// Pass 2: marks every line inside a `#[cfg(test)]` item as test code.
///
/// The attribute introduces the next brace-delimited block (typically
/// `mod tests { … }`); everything from the attribute line through the
/// matching close brace is test-only.
fn mark_test_regions(lines: &mut [SourceLine]) {
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].code.trim_start().starts_with("#[cfg(test)]") {
            let start = i;
            let mut depth = 0i32;
            let mut opened = false;
            let mut end = lines.len() - 1;
            'outer: for (j, line) in lines.iter().enumerate().skip(start) {
                for c in line.code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth -= 1;
                            if opened && depth == 0 {
                                end = j;
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
            }
            for line in &mut lines[start..=end] {
                line.in_test = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let lines = scan("let x = \"HashMap\"; // HashMap here\nuse std::collections::HashMap;\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[1].code.contains("HashMap"));
    }

    #[test]
    fn allow_comment_is_recorded_and_blanked() {
        let lines = scan("x.expect(\"boom\"); // vpir: allow(panic, startup only)\n");
        let allow = lines[0].allow.as_ref().expect("allow parsed");
        assert_eq!(allow.rule, "panic");
        assert_eq!(allow.reason, "startup only");
        assert!(!lines[0].code.contains("vpir"));
        assert!(lines[0].code.contains(".expect("));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = scan("a /* one /* two */ still */ b\n/* open\npanic!()\n*/ c\n");
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
        assert!(!lines[0].code.contains("still"));
        assert!(!lines[2].code.contains("panic"));
        assert!(lines[3].code.contains('c'));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lines = scan("fn f<'a>(x: &'a str) -> &'a str { x } // 'a\nlet c = '\"'; let d = \"q\";\n");
        assert!(lines[0].code.contains("'a"));
        // The quote inside the char literal must not open a string.
        assert!(lines[1].code.contains("\"q\"") || lines[1].code.contains('d'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = scan("let s = r#\"panic! \"# ; let t = 1;\n");
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("let t"));
    }

    #[test]
    fn string_continuation_keeps_line_numbers_aligned() {
        // The `\` before the newline is a multi-line string
        // continuation; the newline must survive blanking or every
        // later finding would anchor one line off.
        let src = "let s = \"one \\\n    two\";\nx.unwrap();\n";
        let lines = scan(src);
        assert_eq!(lines.len(), 3);
        assert!(!lines[0].code.contains("one"));
        assert!(!lines[1].code.contains("two"));
        assert!(lines[2].code.contains(".unwrap()"));
        assert_eq!(lines[2].number, 3);
    }

    #[test]
    fn multiline_strings_do_not_leak_tokens() {
        let src = "let s = \"line one\npanic!() HashMap\nstill string\";\nlet t = 1;\n";
        let lines = scan(src);
        assert!(!lines[1].code.contains("panic"));
        assert!(!lines[1].code.contains("HashMap"));
        assert!(!lines[2].code.contains("still"));
        assert!(lines[3].code.contains("let t"));
    }

    #[test]
    fn multiline_raw_strings_do_not_leak_tokens() {
        let src = "let s = r#\"first\nx.unwrap() \"quoted\"\nlast\"#;\nlet after = 2;\n";
        let lines = scan(src);
        assert_eq!(lines.len(), 4);
        assert!(!lines[1].code.contains("unwrap"));
        // The interior `\"quoted\"` must not terminate the raw string.
        assert!(!lines[2].code.contains("last"));
        assert!(lines[3].code.contains("let after"));
    }

    #[test]
    fn nested_block_comments_spanning_lines_do_not_leak() {
        let src = "a /* outer\n/* inner\nx.expect(\"no\")\n*/ still outer\n*/ b\n";
        let lines = scan(src);
        assert_eq!(lines.len(), 5);
        assert!(!lines[2].code.contains("expect"));
        assert!(!lines[3].code.contains("still"));
        assert!(lines[4].code.contains('b'));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }
}
