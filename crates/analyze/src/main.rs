//! CLI entry point for `vpir-analyze`.
//!
//! ```text
//! vpir-analyze [--root DIR] [--format text|json|sarif] [--call-graph FN]
//! ```
//!
//! Exits 0 when the tree is clean (suppressed findings allowed),
//! 1 when unsuppressed findings remain, and 2 on usage or I/O errors.
//! `--call-graph FN` skips the rule run and prints the reachable call
//! tree rooted at `FN` (a qualified name like `Simulator::step_cycle`,
//! or any unique suffix of one).

use std::path::PathBuf;
use std::process::ExitCode;

use vpir_analyze::{analyze_root, dump_call_graph, sarif};

enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    root: PathBuf,
    format: Format,
    call_graph: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut call_graph = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    args.next().ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--format" => {
                format = match args.next().as_deref() {
                    Some("json") => Format::Json,
                    Some("text") => Format::Text,
                    Some("sarif") => Format::Sarif,
                    other => {
                        return Err(format!(
                            "--format expects `text`, `json`, or `sarif`, got {:?}",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
            }
            "--call-graph" => {
                call_graph = Some(
                    args.next()
                        .ok_or_else(|| "--call-graph needs a function name".to_string())?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: vpir-analyze [--root DIR] [--format text|json|sarif] [--call-graph FN]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        root,
        format,
        call_graph,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(spec) = &opts.call_graph {
        return match dump_call_graph(&opts.root, spec) {
            Ok(Ok(tree)) => {
                print!("{tree}");
                ExitCode::SUCCESS
            }
            Ok(Err(msg)) => {
                eprintln!("vpir-analyze: {msg}");
                ExitCode::from(2)
            }
            Err(e) => {
                eprintln!("vpir-analyze: cannot read {}: {e}", opts.root.display());
                ExitCode::from(2)
            }
        };
    }
    let report = match analyze_root(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vpir-analyze: cannot read {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    if report.files_scanned == 0 {
        // An empty scan would make the CI gate pass vacuously — a
        // mistyped --root must fail loudly, not silently approve.
        eprintln!(
            "vpir-analyze: no Rust sources under {} (expected src/ or crates/*/src)",
            opts.root.display()
        );
        return ExitCode::from(2);
    }
    match opts.format {
        Format::Json => println!("{}", report.to_json()),
        Format::Sarif => println!("{}", sarif::to_sarif(&report)),
        Format::Text => print!("{}", report.to_text()),
    }
    if report.live().count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
