//! CLI entry point for `vpir-analyze`.
//!
//! ```text
//! vpir-analyze [--root DIR] [--format text|json]
//! ```
//!
//! Exits 0 when the tree is clean (suppressed findings allowed),
//! 1 when unsuppressed findings remain, and 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use vpir_analyze::analyze_root;

struct Options {
    root: PathBuf,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    args.next().ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--format" => {
                match args.next().as_deref() {
                    Some("json") => json = true,
                    Some("text") => json = false,
                    other => {
                        return Err(format!(
                            "--format expects `text` or `json`, got {:?}",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
            }
            "--help" | "-h" => {
                return Err("usage: vpir-analyze [--root DIR] [--format text|json]".to_string())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options { root, json })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let report = match analyze_root(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vpir-analyze: cannot read {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    if report.files_scanned == 0 {
        // An empty scan would make the CI gate pass vacuously — a
        // mistyped --root must fail loudly, not silently approve.
        eprintln!(
            "vpir-analyze: no Rust sources under {} (expected src/ or crates/*/src)",
            opts.root.display()
        );
        return ExitCode::from(2);
    }
    if opts.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if report.live().count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
