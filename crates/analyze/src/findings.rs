//! Finding and report types plus the text / JSON renderers.

use std::fmt::Write as _;

/// The simulator invariants (R1–R7, host Rust sources) and guest-program
/// structural lints (L1–L4, vpir assembly) the analyzers check.
///
/// The host rules are emitted by `vpir-analyze` over the workspace; the
/// guest lints are emitted by `vpir-isa-analyze` over assembled
/// programs. Both share this type so reports render identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// R1 — cycle-level code must not use hash-ordered collections.
    Determinism,
    /// R2 — pipeline hot paths must not contain panicking constructs.
    Panic,
    /// R3 — every stats field must be updated and surfaced in a report.
    Stats,
    /// R4 — every config field must be read outside its definition.
    Config,
    /// R5 — stat counters must be u64 (no silently wrapping widths).
    Counter,
    /// R6 — cycle-level code must not read wall-clock time.
    WallClock,
    /// R7 — cycle-level hot state must be columnar, not `Vec<Option<…>>`.
    Columnar,
    /// R8 — entry-point call trees must be transitively panic-free.
    PanicReach,
    /// R9 — spawned closures must not race on shared mutable captures,
    /// and control-flow atomics must not use `Ordering::Relaxed`.
    Concurrency,
    /// R10 — the lock-acquisition graph must be acyclic.
    LockOrder,
    /// L1 — guest basic block unreachable from the entry point.
    Unreachable,
    /// L2 — guest register read before any write reaches it.
    UninitRead,
    /// L3 — guest branch/jump to an undefined or misaligned target.
    BadTarget,
    /// L4 — guest memory stored to but never loaded.
    DeadStore,
}

impl Rule {
    /// The short identifier (`R1` … `R6`, `L1` … `L4`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "R1",
            Rule::Panic => "R2",
            Rule::Stats => "R3",
            Rule::Config => "R4",
            Rule::Counter => "R5",
            Rule::WallClock => "R6",
            Rule::Columnar => "R7",
            Rule::PanicReach => "R8",
            Rule::Concurrency => "R9",
            Rule::LockOrder => "R10",
            Rule::Unreachable => "L1",
            Rule::UninitRead => "L2",
            Rule::BadTarget => "L3",
            Rule::DeadStore => "L4",
        }
    }

    /// The name used in `// vpir: allow(name, reason)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::Panic => "panic",
            Rule::Stats => "stats",
            Rule::Config => "config",
            Rule::Counter => "counter",
            Rule::WallClock => "wallclock",
            Rule::Columnar => "columnar",
            Rule::PanicReach => "panic-reach",
            Rule::Concurrency => "concurrency",
            Rule::LockOrder => "lock-order",
            Rule::Unreachable => "unreachable",
            Rule::UninitRead => "uninit-read",
            Rule::BadTarget => "bad-target",
            Rule::DeadStore => "dead-store",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    /// Path relative to the analyzed root.
    pub file: String,
    /// 1-based line number (0 when the source location is unknown, e.g.
    /// a guest program loaded from a binary image).
    pub line: usize,
    /// 1-based column; 0 when unknown. Host-rule findings are
    /// line-granular and leave this 0.
    pub col: usize,
    pub message: String,
    /// The justification from a matching `vpir: allow` comment; `None`
    /// for live (unsuppressed) findings.
    pub suppressed: Option<String>,
}

impl Finding {
    /// `file:line` or `file:line:col` when the column is known.
    pub fn location(&self) -> String {
        if self.col > 0 {
            format!("{}:{}:{}", self.file, self.line, self.col)
        } else {
            format!("{}:{}", self.file, self.line)
        }
    }
}

/// A positive result from an interprocedural pass: what was *proven*
/// (or assumed), not just what was flagged. R8 emits one per analyzed
/// entry point so "no findings" is distinguishable from "not checked".
#[derive(Debug, Clone)]
pub struct ProofNote {
    /// The emitting rule (`R8`).
    pub rule: Rule,
    /// The qualified root the proof covers (`Simulator::run_checked`).
    pub root: String,
    /// One-line verdict.
    pub summary: String,
    /// Residual obligations: unresolved may-call edges, assumption
    /// counts — everything the proof is conditional on.
    pub details: Vec<String>,
}

/// The result of analyzing one source tree.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    /// Proof notes from the interprocedural passes.
    pub proofs: Vec<ProofNote>,
}

impl Report {
    /// Findings not silenced by an allow comment; these gate CI.
    pub fn live(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Findings silenced by an allow comment (recorded, not fatal).
    pub fn suppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_some())
    }

    /// Sorts findings by file, line, then rule for stable output.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule.id()).cmp(&(&b.file, b.line, b.rule.id())));
    }

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in self.live() {
            let _ = writeln!(
                out,
                "{}: {}({}): {}",
                f.location(),
                f.rule.id(),
                f.rule.name(),
                f.message
            );
        }
        let live = self.live().count();
        let suppressed = self.suppressed().count();
        let _ = writeln!(
            out,
            "vpir-analyze: {} file(s), {} finding(s), {} suppressed",
            self.files_scanned, live, suppressed
        );
        if suppressed > 0 {
            for f in self.suppressed() {
                let _ = writeln!(
                    out,
                    "  allowed {}: {}({}): {}",
                    f.location(),
                    f.rule.id(),
                    f.rule.name(),
                    f.suppressed.as_deref().unwrap_or_default()
                );
            }
        }
        for p in &self.proofs {
            let _ = writeln!(out, "  proof {} {}: {}", p.rule.id(), p.root, p.summary);
            for d in &p.details {
                let _ = writeln!(out, "    - {d}");
            }
        }
        out
    }

    /// Machine-readable report (single JSON object).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"files_scanned\":{},", self.files_scanned);
        let _ = write!(out, "\"live\":{},", self.live().count());
        let _ = write!(out, "\"suppressed\":{},", self.suppressed().count());
        out.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"name\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"",
                f.rule.id(),
                f.rule.name(),
                escape(&f.file),
                f.line,
                f.col,
                escape(&f.message)
            );
            match &f.suppressed {
                Some(reason) => {
                    let _ = write!(out, ",\"allowed\":\"{}\"}}", escape(reason));
                }
                None => out.push('}'),
            }
        }
        out.push_str("],\"proofs\":[");
        for (i, p) in self.proofs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"root\":\"{}\",\"summary\":\"{}\",\"details\":[",
                p.rule.id(),
                escape(&p.root),
                escape(&p.summary)
            );
            for (j, d) in p.details.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", escape(d));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for inclusion in a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, suppressed: Option<&str>) -> Finding {
        Finding {
            rule,
            file: "crates/core/src/x.rs".into(),
            line: 7,
            col: 0,
            message: "msg with \"quotes\"".into(),
            suppressed: suppressed.map(String::from),
        }
    }

    #[test]
    fn live_and_suppressed_split() {
        let report = Report {
            findings: vec![finding(Rule::Panic, None), finding(Rule::Panic, Some("ok"))],
            files_scanned: 1,
            proofs: Vec::new(),
        };
        assert_eq!(report.live().count(), 1);
        assert_eq!(report.suppressed().count(), 1);
    }

    #[test]
    fn json_is_escaped() {
        let report = Report {
            findings: vec![finding(Rule::Determinism, None)],
            files_scanned: 3,
            proofs: Vec::new(),
        };
        let json = report.to_json();
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"rule\":\"R1\""));
        assert!(json.contains("\"files_scanned\":3"));
    }

    #[test]
    fn text_mentions_counts() {
        let report = Report {
            findings: vec![finding(Rule::Counter, Some("legacy"))],
            files_scanned: 2,
            proofs: Vec::new(),
        };
        let text = report.to_text();
        assert!(text.contains("0 finding(s), 1 suppressed"));
        assert!(text.contains("allowed"));
    }
}
