//! Simulator-invariant static analysis for the vpir workspace.
//!
//! `vpir-analyze` walks the workspace sources and checks five
//! invariants that `rustc` and clippy cannot see because they are
//! facts about *this simulator*, not about Rust:
//!
//! - **R1 determinism** — cycle-level crates must not use hash-ordered
//!   collections; two runs of the same experiment must be bit-equal.
//! - **R2 panic-freedom** — pipeline hot paths must not contain
//!   `unwrap`/`expect`/`panic!`-family macros or literal indexing.
//! - **R3 stats discipline** — every `*Stats` field must be updated
//!   somewhere and surfaced by a report.
//! - **R4 config discipline** — every config field must be read
//!   outside its definition.
//! - **R5 counter safety** — stat counters must be `u64`.
//!
//! A finding is suppressed (recorded but not fatal) by appending
//! `// vpir: allow(rule, reason)` to the offending line. The binary
//! exits nonzero when any unsuppressed finding remains, which is what
//! makes it usable as a CI gate.

pub mod callgraph;
pub mod findings;
pub mod items;
pub mod lexer;
pub mod passes;
pub mod rules;
pub mod sarif;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use findings::{Finding, Report, Rule};

/// Analyzes the workspace rooted at `root`.
///
/// Scans `<root>/src` and every `<root>/crates/*/src` tree, runs all
/// rules, and returns a sorted [`Report`]. The walk order (and thus
/// the report order) is lexicographic, so output is reproducible.
pub fn analyze_root(root: &Path) -> io::Result<Report> {
    if !root.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a directory", root.display()),
        ));
    }
    let files = scan_workspace(root)?;
    Ok(analyze_files(&files))
}

/// Scans `<root>/src` and every `<root>/crates/*/src` tree into lexed
/// files, sorted by path for reproducible output.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<rules::File>> {
    let mut files = Vec::new();
    collect_tree(root, &root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut krates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        krates.sort();
        for krate in krates {
            collect_tree(root, &krate.join("src"), &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Runs the line rules (R1–R7) and the interprocedural passes (R8–R10)
/// over already-scanned files and returns the combined sorted report.
pub fn analyze_files(files: &[rules::File]) -> Report {
    let mut findings = rules::run_all(files);
    let (inter, proofs) = passes::run_interprocedural(files);
    findings.extend(inter);
    let mut report = Report {
        files_scanned: files.len(),
        findings,
        proofs,
    };
    report.sort();
    report
}

/// Scans the workspace under `root` and renders the resolved call tree
/// below `root_spec` (an exact qualified name or a unique suffix).
pub fn dump_call_graph(root: &Path, root_spec: &str) -> io::Result<Result<String, String>> {
    let files = scan_workspace(root)?;
    let idx = items::ItemIndex::build(&files);
    let graph = callgraph::CallGraph::build(&files, &idx);
    Ok(graph.dump(&files, &idx, root_spec))
}

/// Recursively scans every `.rs` file under `dir` into `files`.
fn collect_tree(root: &Path, dir: &Path, files: &mut Vec<rules::File>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_tree(root, &path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let source = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(rules::File {
                path: rel,
                lines: lexer::scan(&source),
            });
        }
    }
    Ok(())
}
