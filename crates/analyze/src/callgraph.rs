//! Best-effort workspace call graph over the [`crate::items`] index.
//!
//! Resolution is deliberately tiered and conservative — every tier
//! either resolves a call site to workspace functions or records what
//! it could not prove, so the passes built on top (R8 panic
//! reachability, R10 lock order) never silently drop an edge:
//!
//! 1. **Free fn** — `helper(…)` resolves through the qualified-name
//!    table (free fns are indexed under their bare name, so imported
//!    cross-crate free fns resolve too).
//! 2. **`Type::method(…)`** — resolves `Type::method`; `Self` maps to
//!    the enclosing impl's type.
//! 3. **`self.method(…)`** — resolves `{Owner}::method` via the
//!    enclosing impl block.
//! 4. **`self.field.method(…)`** — the field's declared base type
//!    (wrappers like `Option<Box<…>>` stripped) names the owner.
//! 5. **`expr.method(…)`** on any other receiver — *may-call* edges to
//!    every workspace fn with that bare name ([`Target::Ambiguous`]).
//!
//! A call that matches no workspace function at all is
//! [`Target::External`] (std or vendored code); the passes treat
//! externals as panic-free and say so in their documented limits.
//! Macro bodies (`write!`, `format!`) are invisible by construction —
//! the lexer blanks literals and the extractor skips `name!(…)` —
//! which is also a documented limit, not a silent one.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::items::{FnItem, ItemIndex};
use crate::rules::File;

/// Where a call site leads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// Resolved to exactly one workspace fn (index into `ItemIndex::fns`).
    Known(usize),
    /// May-call: one of several workspace fns with this name.
    Ambiguous(Vec<usize>),
    /// No workspace candidate — std or otherwise out of scope.
    External,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallEdge {
    /// Display name as written (`helper`, `Type::method`, `.lock`).
    pub name: String,
    /// 1-based source line of the call.
    pub line: usize,
    /// 1-based column of the callee identifier.
    pub col: usize,
    pub target: Target,
}

/// A construct that panics if its assumption fails (R2's class:
/// unwrap / expect / panic-family macro / literal index).
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub line: usize,
    pub col: usize,
    pub what: String,
}

/// A site whose safety rests on a value-range argument the analyzer
/// cannot check: div/mod with a non-literal divisor, or a non-literal
/// slice index. These are *counted* in R8 proof notes, not flagged —
/// the workspace's hot loops index by masked slot numbers and mod by
/// configured capacities on nearly every line.
#[derive(Debug, Clone)]
pub struct AssumeSite {
    pub line: usize,
    pub what: String,
}

/// Per-function facts: outgoing calls plus local panic/assumption sites.
#[derive(Debug, Clone, Default)]
pub struct FnNode {
    pub calls: Vec<CallEdge>,
    pub panics: Vec<PanicSite>,
    pub assumes: Vec<AssumeSite>,
}

/// The workspace call graph, indexed in parallel with `ItemIndex::fns`.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
}

impl CallGraph {
    /// Extracts calls and panic/assumption facts for every indexed fn.
    pub fn build(files: &[File], idx: &ItemIndex) -> CallGraph {
        let mut nodes = Vec::with_capacity(idx.fns.len());
        for f in &idx.fns {
            nodes.push(scan_fn(files, idx, f));
        }
        CallGraph { nodes }
    }

    /// Transitive can-panic, propagated over `Known` edges only.
    ///
    /// `Ambiguous` edges do not propagate: a may-call set that happens
    /// to include a panicking candidate is reported as a residual edge
    /// by the R8 proof, not treated as a proven panic path.
    pub fn can_panic(&self) -> Vec<bool> {
        let mut can: Vec<bool> = self.nodes.iter().map(|n| !n.panics.is_empty()).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.nodes.len() {
                if can[i] {
                    continue;
                }
                let hit = self.nodes[i].calls.iter().any(|c| match &c.target {
                    Target::Known(t) => can[*t],
                    _ => false,
                });
                if hit {
                    can[i] = true;
                    changed = true;
                }
            }
        }
        can
    }

    /// Every fn reachable from `root` over `Known` edges, with the BFS
    /// parent of each (for shortest-path reconstruction).
    pub fn reachable(&self, root: usize) -> BTreeMap<usize, Option<usize>> {
        let mut parents: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        parents.insert(root, None);
        let mut queue = VecDeque::from([root]);
        while let Some(at) = queue.pop_front() {
            for call in &self.nodes[at].calls {
                if let Target::Known(t) = call.target {
                    if !parents.contains_key(&t) {
                        parents.insert(t, Some(at));
                        queue.push_back(t);
                    }
                }
            }
        }
        parents
    }

    /// `root -> a -> b` call path text for a reachable fn.
    pub fn path_to(
        &self,
        idx: &ItemIndex,
        parents: &BTreeMap<usize, Option<usize>>,
        mut at: usize,
    ) -> String {
        let mut hops = vec![idx.fns[at].qual.clone()];
        while let Some(Some(p)) = parents.get(&at) {
            hops.push(idx.fns[*p].qual.clone());
            at = *p;
        }
        hops.reverse();
        hops.join(" -> ")
    }

    /// Renders the resolved call tree under `root_qual` (exact
    /// qualified name, or a unique suffix like `run_checked`).
    pub fn dump(&self, files: &[File], idx: &ItemIndex, root_qual: &str) -> Result<String, String> {
        let root = resolve_root(idx, root_qual)?;
        let mut out = String::new();
        let mut seen = BTreeSet::new();
        self.dump_one(files, idx, root, 0, &mut seen, &mut out);
        Ok(out)
    }

    fn dump_one(
        &self,
        files: &[File],
        idx: &ItemIndex,
        at: usize,
        depth: usize,
        seen: &mut BTreeSet<usize>,
        out: &mut String,
    ) {
        let f = &idx.fns[at];
        let pad = "  ".repeat(depth);
        let node = &self.nodes[at];
        let facts = format!(
            " [{} panic, {} assume]",
            node.panics.len(),
            node.assumes.len()
        );
        if !seen.insert(at) {
            out.push_str(&format!("{pad}{} (…)\n", f.qual));
            return;
        }
        out.push_str(&format!(
            "{pad}{} ({}:{}){}\n",
            f.qual, files[f.file].path, f.line, facts
        ));
        for call in &node.calls {
            match &call.target {
                Target::Known(t) => self.dump_one(files, idx, *t, depth + 1, seen, out),
                Target::Ambiguous(cands) => {
                    out.push_str(&format!(
                        "{pad}  ?{} ({} candidate(s): {})\n",
                        call.name,
                        cands.len(),
                        cands
                            .iter()
                            .take(4)
                            .map(|c| idx.fns[*c].qual.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
                Target::External => {}
            }
        }
    }
}

/// Resolves a root spec: exact qualified name, else unique suffix.
pub fn resolve_root(idx: &ItemIndex, spec: &str) -> Result<usize, String> {
    if let Some(i) = idx.resolve_qual(spec) {
        return Ok(i);
    }
    let hits: Vec<usize> = idx
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.in_test && (f.qual.ends_with(spec) || f.name == spec))
        .map(|(i, _)| i)
        .collect();
    match hits.as_slice() {
        [] => Err(format!("no function matches `{spec}`")),
        [one] => Ok(*one),
        many => Err(format!(
            "`{spec}` is ambiguous: {}",
            many.iter()
                .map(|i| idx.fns[*i].qual.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

/// Rust keywords and control constructs that look like calls.
const NOT_CALLS: [&str; 16] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "fn",
    "impl", "where", "unsafe", "pub",
];

fn scan_fn(files: &[File], idx: &ItemIndex, f: &FnItem) -> FnNode {
    let mut node = FnNode::default();
    let lines = &files[f.file].lines;
    for line in &lines[f.body_start..=f.body_end] {
        // A line vouched for by `vpir: allow(panic, …)` keeps R2's
        // suppression semantics under R8 too.
        let vouched = line.allow.as_ref().is_some_and(|a| a.rule == "panic");
        extract_calls(&line.code, line.number, f, idx, &mut node.calls);
        if !vouched {
            extract_panics(&line.code, line.number, &mut node.panics);
        }
        extract_assumes(&line.code, line.number, &mut node.assumes);
    }
    node
}

/// Finds `ident(` call shapes and resolves each through the tiers.
fn extract_calls(
    code: &str,
    line: usize,
    f: &FnItem,
    idx: &ItemIndex,
    out: &mut Vec<CallEdge>,
) {
    let chars: Vec<char> = code.chars().collect();
    for open in 0..chars.len() {
        if chars[open] != '(' {
            continue;
        }
        // Identifier directly before the paren.
        let mut s = open;
        while s > 0 && (chars[s - 1].is_alphanumeric() || chars[s - 1] == '_') {
            s -= 1;
        }
        if s == open {
            continue;
        }
        let ident: String = chars[s..open].iter().collect();
        if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        if NOT_CALLS.contains(&ident.as_str()) {
            continue;
        }
        // `name!(…)` never reaches here (the `!` breaks the ident run
        // before the paren), but `name! (` styles would: skip both.
        if s > 0 && chars[s - 1] == '!' {
            continue;
        }
        // The declaration's own `fn name(` is not a call.
        let before: String = chars[..s].iter().collect();
        if before.trim_end().ends_with("fn") {
            continue;
        }
        let first_upper = ident.chars().next().is_some_and(|c| c.is_uppercase());
        let target = if s >= 2 && chars[s - 2] == ':' && chars[s - 1] == ':' {
            // Tier 2: `Seg::ident(` — a path call.
            if first_upper {
                // `Enum::Variant(…)` constructor, not a call.
                continue;
            }
            let seg = ident_before(&chars, s - 2);
            match seg {
                Some(ty) => {
                    let ty = if ty == "Self" {
                        f.owner.clone().unwrap_or(ty)
                    } else {
                        ty
                    };
                    resolve_qualified(idx, &ty, &ident)
                }
                None => Target::External,
            }
        } else if s >= 1 && chars[s - 1] == '.' {
            // Tiers 3-5: a method call; walk the receiver chain.
            if first_upper {
                continue;
            }
            match receiver_chain(&chars, s - 1) {
                Receiver::SelfOnly => match &f.owner {
                    Some(owner) => resolve_qualified(idx, owner, &ident),
                    None => resolve_bare(idx, &ident),
                },
                Receiver::SelfField(field) => {
                    let owner_ty = f
                        .owner
                        .as_ref()
                        .and_then(|o| idx.structs.get(o))
                        .and_then(|s| s.fields.get(&field));
                    match owner_ty {
                        Some(ty) => resolve_qualified(idx, &ty.clone(), &ident),
                        None => resolve_bare(idx, &ident),
                    }
                }
                Receiver::Other => resolve_bare(idx, &ident),
            }
        } else {
            // Tier 1: free call — or an uppercase constructor, skipped.
            if first_upper {
                continue;
            }
            match idx.by_qual.get(&ident).map(|v| non_test(idx, v)) {
                Some(cands) if cands.len() == 1 => Target::Known(cands[0]),
                Some(cands) if !cands.is_empty() => Target::Ambiguous(cands),
                _ => Target::External,
            }
        };
        let display = if s >= 1 && chars[s - 1] == '.' {
            format!(".{ident}")
        } else {
            ident.clone()
        };
        out.push(CallEdge {
            name: display,
            line,
            col: s + 1,
            target,
        });
    }
}

/// `Type::method` resolution with bare-name fallback: a workspace type
/// without that method (trait impls the item parser cannot see, derive
/// output) degrades to may-call over the bare name rather than being
/// dropped.
fn resolve_qualified(idx: &ItemIndex, ty: &str, method: &str) -> Target {
    let qual = format!("{ty}::{method}");
    if let Some(v) = idx.by_qual.get(&qual) {
        let cands = non_test(idx, v);
        match cands.as_slice() {
            [one] => return Target::Known(*one),
            [] => {}
            _ => return Target::Ambiguous(cands),
        }
    }
    let known_type = idx.structs.contains_key(ty) || idx.fns.iter().any(|f| f.owner.as_deref() == Some(ty));
    if known_type {
        resolve_bare(idx, method)
    } else {
        Target::External
    }
}

/// Tier-5 may-call resolution over the bare method name.
fn resolve_bare(idx: &ItemIndex, method: &str) -> Target {
    match idx.by_name.get(method) {
        Some(v) => {
            let cands = non_test(idx, v);
            if cands.is_empty() {
                Target::External
            } else {
                Target::Ambiguous(cands)
            }
        }
        None => Target::External,
    }
}

fn non_test(idx: &ItemIndex, v: &[usize]) -> Vec<usize> {
    v.iter().copied().filter(|i| !idx.fns[*i].in_test).collect()
}

/// What precedes a method call's final `.`.
enum Receiver {
    /// `self.method(…)`
    SelfOnly,
    /// `self.field.method(…)`
    SelfField(String),
    /// Anything else (locals, call results, chained expressions).
    Other,
}

/// Classifies the receiver ending at `dot` (index of the final `.`).
fn receiver_chain(chars: &[char], dot: usize) -> Receiver {
    let Some(seg1) = ident_before(chars, dot) else {
        return Receiver::Other;
    };
    let start1 = dot - seg1.chars().count();
    if seg1 == "self" {
        return Receiver::SelfOnly;
    }
    if start1 >= 1 && chars[start1 - 1] == '.' {
        if let Some(seg2) = ident_before(chars, start1 - 1) {
            let start2 = start1 - 1 - seg2.chars().count();
            let clean = start2 == 0 || !matches!(chars[start2 - 1], '.' | ':');
            if seg2 == "self" && clean {
                return Receiver::SelfField(seg1);
            }
        }
    }
    Receiver::Other
}

/// The identifier ending right before position `end`, if any.
fn ident_before(chars: &[char], end: usize) -> Option<String> {
    let mut s = end;
    while s > 0 && (chars[s - 1].is_alphanumeric() || chars[s - 1] == '_') {
        s -= 1;
    }
    if s == end {
        None
    } else {
        Some(chars[s..end].iter().collect())
    }
}

/// R2's panic-construct class, recorded as per-fn facts.
fn extract_panics(code: &str, line: usize, out: &mut Vec<PanicSite>) {
    for pat in [".unwrap()", ".expect("] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(pat) {
            out.push(PanicSite {
                line,
                col: from + pos + 1,
                what: pat.trim_end_matches('(').to_string(),
            });
            from += pos + pat.len();
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        if crate::rules::has_macro(code, mac) {
            out.push(PanicSite {
                line,
                col: code.find(mac).map_or(0, |p| p + 1),
                what: format!("{mac}!"),
            });
        }
    }
    for idx in crate::rules::literal_indexes(code) {
        out.push(PanicSite {
            line,
            col: 0,
            what: format!("[{idx}]"),
        });
    }
}

/// Division/modulo with a non-literal divisor and non-literal slice
/// indexes: assumed safe, counted per root in the R8 proof notes.
fn extract_assumes(code: &str, line: usize, out: &mut Vec<AssumeSite>) {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '/' || c == '%' {
            // Not part of `/=`-style compounds' RHS scanning below, but
            // skip doubled operators and `->`-adjacent noise.
            if i + 1 < chars.len() && (chars[i + 1] == '/' || chars[i + 1] == '*') {
                continue;
            }
            if i > 0 && (chars[i - 1] == '/' || chars[i - 1] == '*') {
                continue;
            }
            let mut j = i + 1;
            if j < chars.len() && chars[j] == '=' {
                j += 1; // `/=` or `%=`
            }
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if j >= chars.len() {
                continue; // operator at end of line; cannot judge
            }
            let rest: String = chars[j..].iter().collect();
            if rest.starts_with(|c: char| c.is_ascii_digit()) {
                let lit: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '_')
                    .collect();
                if lit.chars().any(|c| c != '0' && c != '_') {
                    continue; // nonzero literal divisor: cannot panic
                }
            }
            // `.max(<nonzero>)`-guarded divisors are proven nonzero.
            if divisor_expr(&rest).contains(".max(") {
                continue;
            }
            // Float division cannot panic; crude but effective filter.
            if code.contains("f64") || code.contains("f32") {
                continue;
            }
            out.push(AssumeSite {
                line,
                what: format!("{c} with non-literal divisor"),
            });
        }
    }
    for inner in nonliteral_indexes(code) {
        out.push(AssumeSite {
            line,
            what: format!("[{inner}] bounds-assumed"),
        });
    }
}

/// The divisor's primary expression: identifier/path/call chain up to
/// the next top-level operator.
fn divisor_expr(rest: &str) -> String {
    let mut depth = 0i32;
    let mut out = String::new();
    for c in rest.chars() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            '+' | '-' | '*' | '/' | '%' | ',' | ';' | '<' | '>' | '=' | '&' | '|' if depth == 0 => {
                break
            }
            _ => {}
        }
        out.push(c);
    }
    out
}

/// Index expressions that are not integer literals (and not bare `..`,
/// which slices the whole collection and cannot be out of bounds).
fn nonliteral_indexes(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let prev = chars[..i].iter().rev().find(|c| !c.is_whitespace());
        let is_index =
            prev.is_some_and(|&p| p.is_alphanumeric() || p == '_' || p == ')' || p == ']');
        if !is_index {
            continue;
        }
        let mut depth = 1;
        let mut j = i + 1;
        while j < chars.len() && depth > 0 {
            match chars[j] {
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if depth != 0 {
            continue;
        }
        let inner: String = chars[i + 1..j - 1].iter().collect();
        let trimmed = inner.trim();
        let literal = !trimmed.is_empty() && trimmed.chars().all(|c| c.is_ascii_digit() || c == '_');
        if trimmed.is_empty() || literal || trimmed == ".." {
            continue;
        }
        out.push(trimmed.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn graph(src: &str) -> (Vec<File>, ItemIndex, CallGraph) {
        let files = vec![File {
            path: "crates/core/src/x.rs".into(),
            lines: scan(src),
        }];
        let idx = ItemIndex::build(&files);
        let g = CallGraph::build(&files, &idx);
        (files, idx, g)
    }

    fn edges_of<'a>(idx: &ItemIndex, g: &'a CallGraph, qual: &str) -> &'a [CallEdge] {
        &g.nodes[idx.resolve_qual(qual).unwrap()].calls
    }

    #[test]
    fn free_fn_calls_resolve() {
        let (_, idx, g) = graph("fn helper(x: u64) -> u64 { x }\nfn caller() -> u64 { helper(3) }\n");
        let calls = edges_of(&idx, &g, "caller");
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].target, Target::Known(idx.resolve_qual("helper").unwrap()));
    }

    #[test]
    fn type_method_calls_resolve() {
        let (_, idx, g) = graph(
            "pub struct M;\nimpl M {\n    pub fn new() -> M { M }\n}\nfn caller() { let _ = M::new(); }\n",
        );
        let calls = edges_of(&idx, &g, "caller");
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].target, Target::Known(idx.resolve_qual("M::new").unwrap()));
    }

    #[test]
    fn self_method_and_self_field_calls_resolve() {
        let (_, idx, g) = graph(
            "pub struct Rb;\nimpl Rb {\n    pub fn lookup(&self) {}\n}\n\
             pub struct M { rb: Rb }\nimpl M {\n    fn inner(&self) {}\n\
                 fn step(&mut self) { self.inner(); self.rb.lookup(); }\n}\n",
        );
        let calls = edges_of(&idx, &g, "M::step");
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].target, Target::Known(idx.resolve_qual("M::inner").unwrap()));
        assert_eq!(calls[1].target, Target::Known(idx.resolve_qual("Rb::lookup").unwrap()));
    }

    #[test]
    fn unknown_receivers_become_may_call_or_external() {
        let (_, idx, g) = graph(
            "pub struct A;\nimpl A { pub fn poke(&self) {} }\n\
             fn caller(x: &A, v: &[u64]) { x.poke(); let _ = v.len(); }\n",
        );
        let calls = edges_of(&idx, &g, "caller");
        assert_eq!(calls.len(), 2);
        // `x.poke()` — unknown receiver, one workspace candidate: may-call.
        assert_eq!(
            calls[0].target,
            Target::Ambiguous(vec![idx.resolve_qual("A::poke").unwrap()])
        );
        // `v.len()` — no workspace fn named `len`: external.
        assert_eq!(calls[1].target, Target::External);
    }

    #[test]
    fn can_panic_propagates_over_known_edges_only() {
        let (_, idx, g) = graph(
            "fn deep(x: Option<u64>) -> u64 { x.unwrap() }\n\
             fn mid() -> u64 { deep(None) }\n\
             fn top() -> u64 { mid() }\n\
             fn safe() -> u64 { 1 }\n",
        );
        let can = g.can_panic();
        assert!(can[idx.resolve_qual("deep").unwrap()]);
        assert!(can[idx.resolve_qual("mid").unwrap()]);
        assert!(can[idx.resolve_qual("top").unwrap()]);
        assert!(!can[idx.resolve_qual("safe").unwrap()]);
    }

    #[test]
    fn assume_sites_cover_div_mod_and_dynamic_indexes() {
        let (_, idx, g) = graph(
            "fn f(xs: &[u64], i: usize, cap: usize) -> u64 {\n\
                 let a = i % cap;\n\
                 let b = i / 8;\n\
                 let c = i / cap.max(1);\n\
                 xs[a] + b as u64 + c as u64 + xs[2]\n\
             }\n",
        );
        let n = &g.nodes[idx.resolve_qual("f").unwrap()];
        // `% cap` and `xs[a]`; `/ 8` is a literal, `.max(1)` is guarded,
        // `xs[2]` is a literal index (a panic site, not an assumption).
        assert_eq!(n.assumes.len(), 2);
        assert_eq!(n.panics.len(), 1);
    }

    #[test]
    fn dump_renders_the_tree_with_unknowns() {
        let (files, idx, g) = graph(
            "fn leaf() {}\nfn root(v: &[u64]) { leaf(); v.mystery(); }\n\
             pub struct Q;\nimpl Q { pub fn mystery(&self) {} }\n",
        );
        let text = g.dump(&files, &idx, "root").unwrap();
        assert!(text.contains("root (crates/core/src/x.rs:2)"));
        assert!(text.contains("leaf"));
        assert!(text.contains("?.mystery (1 candidate(s): Q::mystery)"));
    }
}
