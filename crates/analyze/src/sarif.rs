//! SARIF 2.1.0 rendering for analyzer reports.
//!
//! Static Analysis Results Interchange Format output lets CI viewers
//! and editors consume `vpir-analyze` findings directly. The shape
//! kept here is the minimal valid core: one run, the tool's rule
//! metadata, one `result` per finding (suppressed findings carry an
//! `inSource` suppression object, which is SARIF's native rendering of
//! the `// vpir: allow(…)` comment), and the R8 proof notes under the
//! run's `properties` bag. [`validate_sarif`] re-parses the emitted
//! document through `vpir-jsonlite` and checks the structural
//! invariants, so the emitter cannot silently drift.

use std::fmt::Write as _;

use vpir_jsonlite::{json_escape, parse_json, validate_json, JsonValue};

use crate::findings::{Report, Rule};

/// Every host rule, in `ruleIndex` order.
const HOST_RULES: [(Rule, &str); 10] = [
    (Rule::Determinism, "Cycle-level code must not use hash-ordered collections."),
    (Rule::Panic, "Pipeline hot paths must not contain panicking constructs."),
    (Rule::Stats, "Every stats field must be updated and surfaced in a report."),
    (Rule::Config, "Every config field must be read outside its definition."),
    (Rule::Counter, "Stat counters must be u64."),
    (Rule::WallClock, "Cycle-level code must not read wall-clock time."),
    (Rule::Columnar, "Cycle-level hot state must be columnar, not Vec<Option<...>>."),
    (Rule::PanicReach, "Entry-point call trees must be transitively panic-free."),
    (Rule::Concurrency, "Spawned closures must not race on shared mutable captures; control-flow atomics must not be Relaxed."),
    (Rule::LockOrder, "The lock-acquisition graph must be acyclic."),
];

/// Renders a report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> String {
    let mut rules = String::from("[");
    for (i, (rule, desc)) in HOST_RULES.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        let _ = write!(
            rules,
            "{{\"id\":\"{}\",\"name\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            rule.id(),
            json_escape(rule.name()),
            json_escape(desc)
        );
    }
    rules.push(']');

    let mut results = String::from("[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        let rule_index = HOST_RULES.iter().position(|(r, _)| *r == f.rule);
        let level = if f.suppressed.is_some() { "note" } else { "error" };
        let _ = write!(
            results,
            "{{\"ruleId\":\"{}\",{}\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}}",
            f.rule.id(),
            rule_index.map_or(String::new(), |x| format!("\"ruleIndex\":{x},")),
            level,
            json_escape(&f.message)
        );
        let _ = write!(
            results,
            ",\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}{}}}}}}}]",
            json_escape(&f.file),
            f.line.max(1),
            if f.col > 0 {
                format!(",\"startColumn\":{}", f.col)
            } else {
                String::new()
            }
        );
        if let Some(reason) = &f.suppressed {
            let _ = write!(
                results,
                ",\"suppressions\":[{{\"kind\":\"inSource\",\"justification\":\"{}\"}}]",
                json_escape(reason)
            );
        }
        results.push('}');
    }
    results.push(']');

    let mut proofs = String::from("[");
    for (i, p) in report.proofs.iter().enumerate() {
        if i > 0 {
            proofs.push(',');
        }
        let _ = write!(
            proofs,
            "{{\"rule\":\"{}\",\"root\":\"{}\",\"summary\":\"{}\",\"details\":[",
            p.rule.id(),
            json_escape(&p.root),
            json_escape(&p.summary)
        );
        for (j, d) in p.details.iter().enumerate() {
            if j > 0 {
                proofs.push(',');
            }
            let _ = write!(proofs, "\"{}\"", json_escape(d));
        }
        proofs.push_str("]}");
    }
    proofs.push(']');

    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"vpir-analyze\",\"informationUri\":\"https://example.invalid/vpir\",\"rules\":{rules}}}}},\"results\":{results},\"properties\":{{\"filesScanned\":{},\"proofs\":{proofs}}}}}]}}",
        report.files_scanned
    )
}

/// Validates a SARIF document produced by [`to_sarif`]: well-formed
/// JSON with the required top-level keys, version 2.1.0, exactly one
/// run with tool metadata, and every result carrying a ruleId, a
/// message, and a physical location.
pub fn validate_sarif(text: &str) -> Result<(), String> {
    validate_json(text, &["$schema", "version", "runs"])?;
    let doc = parse_json(text)?;
    if doc.get("version").and_then(JsonValue::as_str) != Some("2.1.0") {
        return Err("version is not 2.1.0".into());
    }
    let runs = doc
        .get("runs")
        .and_then(JsonValue::as_arr)
        .ok_or("runs is not an array")?;
    let [run] = runs else {
        return Err(format!("expected exactly 1 run, found {}", runs.len()));
    };
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .ok_or("run has no tool.driver")?;
    if driver.get("name").and_then(JsonValue::as_str) != Some("vpir-analyze") {
        return Err("tool.driver.name is not vpir-analyze".into());
    }
    let rules = driver
        .get("rules")
        .and_then(JsonValue::as_arr)
        .ok_or("tool.driver.rules is not an array")?;
    let results = run
        .get("results")
        .and_then(JsonValue::as_arr)
        .ok_or("run.results is not an array")?;
    for r in results {
        let rule_id = r
            .get("ruleId")
            .and_then(JsonValue::as_str)
            .ok_or("result without ruleId")?;
        if let Some(ri) = r.get("ruleIndex").and_then(JsonValue::as_u64) {
            let declared = rules
                .get(ri as usize)
                .and_then(|x| x.get("id"))
                .and_then(JsonValue::as_str);
            if declared != Some(rule_id) {
                return Err(format!("ruleIndex {ri} does not match ruleId {rule_id}"));
            }
        }
        r.get("message")
            .and_then(|m| m.get("text"))
            .and_then(JsonValue::as_str)
            .ok_or("result without message.text")?;
        let locs = r
            .get("locations")
            .and_then(JsonValue::as_arr)
            .ok_or("result without locations")?;
        for l in locs {
            l.get("physicalLocation")
                .and_then(|p| p.get("artifactLocation"))
                .and_then(|a| a.get("uri"))
                .and_then(JsonValue::as_str)
                .ok_or("location without artifact uri")?;
            l.get("physicalLocation")
                .and_then(|p| p.get("region"))
                .and_then(|g| g.get("startLine"))
                .and_then(JsonValue::as_u64)
                .ok_or("location without region.startLine")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::{Finding, ProofNote};

    fn report() -> Report {
        Report {
            findings: vec![
                Finding {
                    rule: Rule::Panic,
                    file: "crates/core/src/x.rs".into(),
                    line: 7,
                    col: 3,
                    message: "`.unwrap()` with \"quotes\"".into(),
                    suppressed: None,
                },
                Finding {
                    rule: Rule::PanicReach,
                    file: "crates/isa/src/x.rs".into(),
                    line: 12,
                    col: 0,
                    message: "reachable panic".into(),
                    suppressed: Some("vetted".into()),
                },
            ],
            files_scanned: 42,
            proofs: vec![ProofNote {
                rule: Rule::PanicReach,
                root: "Machine::run".into(),
                summary: "panic-free: 10 reachable fn(s)".into(),
                details: vec!["unresolved `.push` at a.rs:3".into()],
            }],
        }
    }

    #[test]
    fn sarif_round_trips_through_the_validator() {
        let sarif = to_sarif(&report());
        validate_sarif(&sarif).unwrap();
    }

    #[test]
    fn sarif_carries_suppressions_and_proofs() {
        let sarif = to_sarif(&report());
        let doc = parse_json(&sarif).unwrap();
        let run = &doc.get("runs").unwrap().as_arr().unwrap()[0];
        let results = run.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].get("suppressions").is_none());
        let sup = results[1].get("suppressions").unwrap().as_arr().unwrap();
        assert_eq!(
            sup[0].get("justification").and_then(JsonValue::as_str),
            Some("vetted")
        );
        let proofs = run
            .get("properties")
            .unwrap()
            .get("proofs")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(
            proofs[0].get("root").and_then(JsonValue::as_str),
            Some("Machine::run")
        );
    }

    #[test]
    fn validator_rejects_structural_drift() {
        assert!(validate_sarif("{}").is_err());
        assert!(validate_sarif(
            "{\"$schema\":\"s\",\"version\":\"2.0.0\",\"runs\":[]}"
        )
        .is_err());
    }
}
