//! The interprocedural passes: R8 panic-reachability, R9
//! concurrency-determinism, R10 lock-order.
//!
//! These run on top of the [`crate::items`] index and the
//! [`crate::callgraph`] graph, where the line rules (R1–R7) see one
//! line at a time. Each pass is conservative in a *reported* way:
//! whatever it cannot resolve shows up as a residual obligation in an
//! R8 [`ProofNote`] or is excluded by a documented limit — nothing is
//! silently assumed resolved.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, Target};
use crate::findings::{Finding, ProofNote, Rule};
use crate::items::ItemIndex;
use crate::rules::{emit, File};

/// Runs R8–R10 over the scanned files.
pub fn run_interprocedural(files: &[File]) -> (Vec<Finding>, Vec<ProofNote>) {
    let idx = ItemIndex::build(files);
    let graph = CallGraph::build(files, &idx);
    let mut findings = Vec::new();
    let proofs = panic_reach(files, &idx, &graph, &mut findings);
    concurrency(files, &idx, &mut findings);
    lock_order(files, &idx, &graph, &mut findings);
    (findings, proofs)
}

// ----------------------------------------------------------------
// R8: panic reachability.
// ----------------------------------------------------------------

/// The entry points whose whole call tree must be panic-free: the
/// simulator's public run loop and the ISA-level machine's. Matched by
/// exact qualified name so fixtures can use the same shapes.
const PANIC_ROOTS: [&str; 7] = [
    "Simulator::run_checked",
    "Simulator::run",
    "Simulator::run_to_halt",
    "Simulator::step_cycle",
    "Machine::run_checked",
    "Machine::run",
    "Machine::step",
];

fn panic_reach(
    files: &[File],
    idx: &ItemIndex,
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
) -> Vec<ProofNote> {
    let can_panic = graph.can_panic();
    let mut proofs = Vec::new();
    let mut emitted: BTreeSet<(usize, usize, usize, String)> = BTreeSet::new();
    for root_qual in PANIC_ROOTS {
        let Some(cands) = idx.by_qual.get(root_qual) else {
            continue;
        };
        for &root in cands {
            if idx.fns[root].in_test {
                continue;
            }
            let parents = graph.reachable(root);
            let mut panic_hits = 0usize;
            let mut div_assumes = 0usize;
            let mut idx_assumes = 0usize;
            let mut residuals: Vec<String> = Vec::new();
            let mut residual_keys: BTreeSet<(String, usize)> = BTreeSet::new();
            let mut unresolved_total = 0usize;
            for (&at, _) in &parents {
                let f = &idx.fns[at];
                let node = &graph.nodes[at];
                for p in &node.panics {
                    panic_hits += 1;
                    let key = (f.file, p.line, p.col, p.what.clone());
                    if emitted.insert(key) {
                        emit(
                            findings,
                            Rule::PanicReach,
                            &files[f.file],
                            p.line,
                            format!(
                                "`{}` can panic and is reachable from {} (path: {})",
                                p.what,
                                root_qual,
                                graph.path_to(idx, &parents, at)
                            ),
                        );
                    }
                }
                for a in &node.assumes {
                    if a.what.contains("divisor") {
                        div_assumes += 1;
                    } else {
                        idx_assumes += 1;
                    }
                }
                for call in &node.calls {
                    if let Target::Ambiguous(cs) = &call.target {
                        unresolved_total += 1;
                        let risky: Vec<&str> = cs
                            .iter()
                            .filter(|c| can_panic[**c])
                            .map(|c| idx.fns[*c].qual.as_str())
                            .collect();
                        if !risky.is_empty()
                            && residual_keys.insert((call.name.clone(), call.line))
                        {
                            residuals.push(format!(
                                "unresolved `{}` at {}:{} may reach panicking {}",
                                call.name,
                                files[f.file].path,
                                call.line,
                                risky.join(", ")
                            ));
                        }
                    }
                }
            }
            let verdict = if panic_hits == 0 && residuals.is_empty() {
                "panic-free"
            } else if panic_hits == 0 {
                "panic-free modulo unresolved edges"
            } else {
                "NOT panic-free"
            };
            let summary = format!(
                "{verdict}: {} reachable fn(s), {} panic site(s), {} unresolved may-call edge(s), {} div/mod + {} index assumption(s)",
                parents.len(),
                panic_hits,
                unresolved_total,
                div_assumes,
                idx_assumes,
            );
            let shown = residuals.len().min(20);
            let extra = residuals.len() - shown;
            residuals.truncate(shown);
            if extra > 0 {
                residuals.push(format!("… and {extra} more unresolved edge(s)"));
            }
            proofs.push(ProofNote {
                rule: Rule::PanicReach,
                root: root_qual.to_string(),
                summary,
                details: residuals,
            });
        }
    }
    proofs
}

// ----------------------------------------------------------------
// R9: concurrency determinism.
// ----------------------------------------------------------------

/// Methods that mutate their receiver: a call on a shared capture
/// inside a spawned closure is a cross-thread write.
const MUTATING_METHODS: [&str; 7] = [
    ".push(", ".push_str(", ".insert(", ".extend(", ".clear(", ".remove(", ".pop(",
];

fn concurrency(files: &[File], idx: &ItemIndex, findings: &mut Vec<Finding>) {
    for (file_idx, file) in files.iter().enumerate() {
        relaxed_control_flow(file, findings);
        let mut i = 0usize;
        while i < file.lines.len() {
            let line = &file.lines[i];
            if line.in_test {
                i += 1;
                continue;
            }
            let spawn_at = ["thread::spawn(", ".spawn("]
                .iter()
                .filter_map(|p| line.code.find(p).map(|at| at + p.len()))
                .min();
            let Some(after_spawn) = spawn_at else {
                i += 1;
                continue;
            };
            let Some((open_line, open_col, close_line)) =
                closure_region(file, i, after_spawn)
            else {
                i += 1;
                continue;
            };
            let header: String = file.lines[i..=open_line]
                .iter()
                .map(|l| l.code.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            // `move` closures take ownership: sharing then requires an
            // Arc/&'scope whose interior writes still go through the
            // lock/atomic shapes checked below on their own lines.
            let is_move = header.contains("move |") || header.contains("move|");
            if !is_move {
                let captures = outer_mut_bindings(file, idx, file_idx, i);
                shared_capture_writes(file, i, open_line, open_col, close_line, &captures, findings);
            }
            i += 1;
        }
    }
}

/// Finds the spawned closure's brace region: `(open_line, open_col,
/// close_line)`, scanning from `col` on `start` for the first `{`.
fn closure_region(file: &File, start: usize, col: usize) -> Option<(usize, usize, usize)> {
    let mut j = start;
    let mut from = col;
    let (open_line, open_col) = loop {
        let code = &file.lines.get(j)?.code;
        if let Some(p) = code[from.min(code.len())..].find('{') {
            break (j, from + p);
        }
        j += 1;
        from = 0;
        if j > start + 3 {
            return None; // no closure body in sight; not a spawn call
        }
    };
    let mut depth = 0i32;
    let mut k = open_line;
    let mut scan_from = open_col;
    while k < file.lines.len() {
        for c in file.lines[k].code[scan_from..].chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((open_line, open_col, k));
                    }
                }
                _ => {}
            }
        }
        k += 1;
        scan_from = 0;
    }
    None
}

/// `let mut NAME` bindings declared in the enclosing fn before the
/// spawn line: the set of captures a non-`move` closure can write.
fn outer_mut_bindings(
    file: &File,
    idx: &ItemIndex,
    file_idx: usize,
    spawn_line: usize,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let encl = idx
        .fns
        .iter()
        .filter(|f| f.file == file_idx && f.body_start <= spawn_line && spawn_line <= f.body_end)
        .max_by_key(|f| f.body_start);
    let start = encl.map_or(0, |f| f.body_start);
    for line in &file.lines[start..spawn_line] {
        let code = &line.code;
        let mut from = 0;
        while let Some(p) = code[from..].find("let mut ") {
            let at = from + p + "let mut ".len();
            let name: String = code[at..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                out.insert(name);
            }
            from = at;
        }
    }
    out
}

/// Flags writes to shared captures inside a spawned closure that are
/// neither atomic ops, lock-guarded accesses, nor per-slot indexing.
fn shared_capture_writes(
    file: &File,
    spawn_line: usize,
    open_line: usize,
    open_col: usize,
    close_line: usize,
    captures: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let mut flagged: BTreeSet<(usize, String)> = BTreeSet::new();
    for (k, line) in file.lines.iter().enumerate().take(close_line + 1).skip(open_line) {
        let code = if k == open_line { &line.code[open_col..] } else { &line.code[..] };
        for name in captures {
            let mut from = 0;
            while let Some(p) = find_word(code, name, from) {
                from = p + name.len();
                if p > 0 && code[..p].ends_with('.') {
                    continue; // `x.name` is a field, not the binding
                }
                let after = &code[p + name.len()..];
                // Disciplined shapes: per-slot indexing, lock-guarded
                // access, atomic ops.
                if after.starts_with('[')
                    || after.starts_with(".lock(")
                    || after.starts_with(".store(")
                    || after.starts_with(".fetch_")
                    || after.starts_with(".load(")
                {
                    continue;
                }
                let before = code[..p].trim_end();
                let borrow_mut = before.ends_with("&mut");
                let assigned = is_assignment(after);
                let mutated = MUTATING_METHODS.iter().any(|m| after.starts_with(m));
                if borrow_mut || assigned || mutated {
                    if flagged.insert((line.number, name.clone())) {
                        emit(
                            findings,
                            Rule::Concurrency,
                            file,
                            line.number,
                            format!(
                                "spawned closure (line {}) writes shared capture `{name}` without atomic, lock, or per-slot indexing discipline: cross-thread interleaving makes results depend on scheduling",
                                file.lines[spawn_line].number
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Whether the text immediately after a binding is a (compound)
/// assignment — and not `==`/`=>` comparison or match-arm syntax.
fn is_assignment(after: &str) -> bool {
    let t = after.trim_start();
    if let Some(rest) = t.strip_prefix('=') {
        return !rest.starts_with('=') && !rest.starts_with('>');
    }
    for op in ["+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>="] {
        if t.starts_with(op) {
            return true;
        }
    }
    false
}

/// `word` at `from` or later with identifier boundaries on both sides.
fn find_word(code: &str, word: &str, from: usize) -> Option<usize> {
    let mut at = from;
    while let Some(p) = code[at..].find(word) {
        let pos = at + p;
        let pre = code[..pos].chars().next_back();
        let post = code[pos + word.len()..].chars().next();
        let pre_ok = !pre.is_some_and(|c| c.is_alphanumeric() || c == '_');
        let post_ok = !post.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if pre_ok && post_ok {
            return Some(pos);
        }
        at = pos + word.len();
    }
    None
}

/// Flags `.load(Ordering::Relaxed)` whose result feeds control flow on
/// the same line. Relaxed loads may observe arbitrarily stale values;
/// gating behaviour on one makes cross-thread progress depend on cache
/// timing. RMW ops (`fetch_add` cursors) are exempt: their atomicity,
/// not their ordering, is what hands each thread a unique slot.
fn relaxed_control_flow(file: &File, findings: &mut Vec<Finding>) {
    for line in file.lines.iter().filter(|l| !l.in_test) {
        let code = &line.code;
        let Some(at) = code.find(".load(Ordering::Relaxed)") else {
            continue;
        };
        let before = &code[..at];
        let after = &code[at + ".load(Ordering::Relaxed)".len()..];
        let in_condition = ["if ", "while ", "match ", "assert"]
            .iter()
            .any(|k| before.trim_start().starts_with(k) || before.contains(&format!(" {k}")) || before.contains(&format!("({k}")));
        let compared = ["==", "!=", "<=", ">=", " < ", " > ", "&&", "||"]
            .iter()
            .any(|op| after.contains(op));
        if in_condition || compared {
            emit(
                findings,
                Rule::Concurrency,
                file,
                line.number,
                "`.load(Ordering::Relaxed)` feeds control flow: a relaxed load may observe a stale value indefinitely; use Acquire (paired with a Release store) or SeqCst for gating flags".to_string(),
            );
        }
    }
}

// ----------------------------------------------------------------
// R10: lock order.
// ----------------------------------------------------------------

/// One lock-acquisition edge: `from` held while `to` is acquired.
#[derive(Debug)]
struct LockEdge {
    to: String,
    file: usize,
    line: usize,
}

fn lock_order(files: &[File], idx: &ItemIndex, graph: &CallGraph, findings: &mut Vec<Finding>) {
    // Pass 1: per-fn direct acquisitions (named identities only).
    let direct: Vec<Vec<String>> = idx
        .fns
        .iter()
        .map(|f| {
            if f.in_test {
                return Vec::new();
            }
            let mut ids = Vec::new();
            for line in &files[f.file].lines[f.body_start..=f.body_end] {
                for id in lock_identities(&line.code, f.owner.as_deref()) {
                    ids.push(id);
                }
            }
            ids
        })
        .collect();
    // Transitive acquire sets over Known edges (for calls made while a
    // guard is held).
    let mut acquires: Vec<BTreeSet<String>> = direct
        .iter()
        .map(|v| v.iter().cloned().collect())
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..idx.fns.len() {
            for call in &graph.nodes[i].calls {
                if let Target::Known(t) = call.target {
                    let add: Vec<String> = acquires[t]
                        .iter()
                        .filter(|a| !acquires[i].contains(*a))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        acquires[i].extend(add);
                        changed = true;
                    }
                }
            }
        }
    }
    // Pass 2: walk each fn tracking held guards; record edges.
    let mut edges: BTreeMap<String, Vec<LockEdge>> = BTreeMap::new();
    for (fi, f) in idx.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        walk_guards(files, idx, graph, f, fi, &acquires, &mut edges);
    }
    // Pass 3: cycle detection (DFS with an explicit path stack).
    let nodes: Vec<String> = edges.keys().cloned().collect();
    let mut done: BTreeSet<String> = BTreeSet::new();
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for start in nodes {
        dfs_cycles(&start, &edges, &mut done, &mut Vec::new(), &mut reported, files, findings);
    }
}

/// DFS from `at`; an edge back into the current path closes a cycle.
fn dfs_cycles(
    at: &str,
    edges: &BTreeMap<String, Vec<LockEdge>>,
    done: &mut BTreeSet<String>,
    stack: &mut Vec<String>,
    reported: &mut BTreeSet<(String, String)>,
    files: &[File],
    findings: &mut Vec<Finding>,
) {
    if done.contains(at) || stack.iter().any(|s| s == at) {
        return;
    }
    stack.push(at.to_string());
    if let Some(outs) = edges.get(at) {
        for e in outs {
            if let Some(from_pos) = stack.iter().position(|s| s == &e.to) {
                // Cycle: e.to -> … -> at -> e.to (self-loops included:
                // re-acquiring a held std Mutex deadlocks outright).
                let cycle = stack[from_pos..].join(" -> ");
                if reported.insert((at.to_string(), e.to.clone())) {
                    emit(
                        findings,
                        Rule::LockOrder,
                        &files[e.file],
                        e.line,
                        format!(
                            "lock `{}` acquired while holding `{}` closes the cycle {} -> {}: two threads entering from different ends deadlock; acquire these locks in one fixed order",
                            e.to, at, cycle, e.to
                        ),
                    );
                }
            } else {
                dfs_cycles(&e.to.clone(), edges, done, stack, reported, files, findings);
            }
        }
    }
    stack.pop();
    done.insert(at.to_string());
}

/// Lock identities acquired on a line: `self.field.lock()` under an
/// impl owner becomes `Owner.field`. Receivers this parser cannot name
/// (locals, `vec[i].lock()`) do not join the order graph — per-slot
/// locks are intentionally outside a global order.
fn lock_identities(code: &str, owner: Option<&str>) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find(".lock(") {
        let at = from + p;
        from = at + ".lock(".len();
        let before = &code[..at];
        if let Some(field_start) = before.rfind("self.") {
            let field: String = before["self.".len() + field_start..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            let direct = field_start + "self.".len() + field.len() == at;
            if direct && !field.is_empty() {
                if let Some(o) = owner {
                    out.push(format!("{o}.{field}"));
                }
            }
        }
    }
    out
}

/// Walks a fn's body tracking `let`-bound guards and records an edge
/// for every acquisition (direct or via a called fn's transitive
/// acquire set) made while a guard is held.
fn walk_guards(
    files: &[File],
    idx: &ItemIndex,
    graph: &CallGraph,
    f: &crate::items::FnItem,
    fi: usize,
    acquires: &[BTreeSet<String>],
    edges: &mut BTreeMap<String, Vec<LockEdge>>,
) {
    let lines = &files[f.file].lines;
    let mut depth = 0i32;
    // Active guards: (binding name, identity, depth at binding).
    let mut held: Vec<(String, String, i32)> = Vec::new();
    for (k, line) in lines.iter().enumerate().take(f.body_end + 1).skip(f.body_start) {
        let code = &line.code;
        let ids = lock_identities(code, f.owner.as_deref());
        // Guard-returning helper calls acquire that helper's lock too.
        let mut via_calls: Vec<String> = Vec::new();
        let mut guard_call_ids: Vec<String> = Vec::new();
        for call in graph.nodes[fi].calls.iter().filter(|c| c.line == line.number) {
            if let Target::Known(t) = call.target {
                if idx.fns[t].returns_guard {
                    guard_call_ids.extend(acquires[t].iter().cloned());
                } else {
                    via_calls.extend(acquires[t].iter().cloned());
                }
            }
        }
        // Record edges from every held guard to every new acquisition
        // (including a re-acquisition of the held lock itself, which
        // deadlocks a std Mutex outright).
        for (_, held_id, _) in &held {
            for id in ids.iter().chain(via_calls.iter()).chain(guard_call_ids.iter()) {
                edges.entry(held_id.clone()).or_default().push(LockEdge {
                    to: id.clone(),
                    file: f.file,
                    line: line.number,
                });
            }
        }
        // New let-bound guard?
        let trimmed = code.trim_start();
        if trimmed.starts_with("let ") && (!ids.is_empty() || !guard_call_ids.is_empty()) {
            let after_let = trimmed["let ".len()..].trim_start();
            let after_mut = after_let.strip_prefix("mut ").unwrap_or(after_let);
            let name: String = after_mut
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            let identity = ids
                .first()
                .or(guard_call_ids.first())
                .cloned();
            if let (false, Some(id)) = (name.is_empty() || name == "_", identity) {
                held.push((name, id, depth));
            }
        }
        // `drop(g)` releases g.
        let mut from = 0;
        while let Some(p) = code[from..].find("drop(") {
            let at = from + p;
            from = at + "drop(".len();
            let name: String = code[from..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            held.retain(|(n, _, _)| *n != name);
        }
        // Depth bookkeeping; block exit releases guards bound within.
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        held.retain(|(_, _, d)| *d <= depth);
        let _ = k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn run(path: &str, src: &str) -> (Vec<Finding>, Vec<ProofNote>) {
        let files = vec![File {
            path: path.into(),
            lines: scan(src),
        }];
        run_interprocedural(&files)
    }

    #[test]
    fn r8_flags_transitive_panics_from_roots() {
        let src = "pub struct Machine;\nimpl Machine {\n    pub fn run(&mut self) { self.step(); }\n    fn step(&mut self) { deep(None); }\n}\nfn deep(x: Option<u64>) -> u64 { x.unwrap() }\n";
        let (findings, proofs) = run("crates/isa/src/x.rs", src);
        let r8: Vec<_> = findings.iter().filter(|f| f.rule == Rule::PanicReach).collect();
        assert_eq!(r8.len(), 1);
        assert!(r8[0].message.contains("Machine::run -> Machine::step -> deep"));
        assert!(proofs.iter().any(|p| p.root == "Machine::run" && p.summary.contains("NOT panic-free")));
    }

    #[test]
    fn r8_proves_clean_trees_and_reports_residual_edges() {
        let src = "pub struct Machine;\nimpl Machine {\n    pub fn run(&mut self) { helper(3); }\n}\nfn helper(x: u64) -> u64 { x + 1 }\n";
        let (findings, proofs) = run("crates/isa/src/x.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::PanicReach));
        let p = proofs.iter().find(|p| p.root == "Machine::run").unwrap();
        assert!(p.summary.starts_with("panic-free"), "{}", p.summary);
        assert!(p.summary.contains("2 reachable fn(s)"));
    }

    #[test]
    fn r9_flags_undisciplined_shared_writes() {
        let src = "fn run() {\n    let mut total = 0u64;\n    std::thread::scope(|s| {\n        s.spawn(|| {\n            total += 1;\n        });\n    });\n}\n";
        let (findings, _) = run("crates/bench/src/x.rs", src);
        let r9: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Concurrency).collect();
        assert_eq!(r9.len(), 1);
        assert!(r9[0].message.contains("total"));
    }

    #[test]
    fn r9_allows_per_slot_lock_and_atomic_discipline() {
        let src = "fn run(results: &[std::sync::Mutex<u64>]) {\n    let mut scratch = 0u64;\n    std::thread::scope(|s| {\n        s.spawn(|| {\n            let i = 0;\n            *results[i].lock().unwrap_or_else(|e| e.into_inner()) = 1;\n        });\n    });\n    scratch += 1;\n    let _ = scratch;\n}\n";
        let (findings, _) = run("crates/bench/src/x.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::Concurrency));
    }

    #[test]
    fn r9_flags_relaxed_loads_feeding_control_flow() {
        let src = "fn f(stop: &std::sync::atomic::AtomicBool) {\n    while !stop.load(Ordering::Relaxed) == false {}\n}\nfn g(hits: &std::sync::atomic::AtomicU64) -> u64 {\n    hits.load(Ordering::Relaxed)\n}\n";
        let (findings, _) = run("crates/serve/src/x.rs", src);
        let r9: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Concurrency).collect();
        assert_eq!(r9.len(), 1, "{r9:?}");
        assert_eq!(r9[0].line, 2);
    }

    #[test]
    fn r10_flags_opposite_lock_orders() {
        let src = "use std::sync::Mutex;\npub struct S { a: Mutex<u64>, b: Mutex<u64> }\nimpl S {\n    fn one(&self) -> u64 {\n        let g = self.a.lock().unwrap_or_else(|e| e.into_inner());\n        let h = self.b.lock().unwrap_or_else(|e| e.into_inner());\n        *g + *h\n    }\n    fn two(&self) -> u64 {\n        let g = self.b.lock().unwrap_or_else(|e| e.into_inner());\n        let h = self.a.lock().unwrap_or_else(|e| e.into_inner());\n        *g + *h\n    }\n}\n";
        let (findings, _) = run("crates/bench/src/x.rs", src);
        let r10: Vec<_> = findings.iter().filter(|f| f.rule == Rule::LockOrder).collect();
        assert!(!r10.is_empty());
        assert!(r10[0].message.contains("fixed order"));
    }

    #[test]
    fn r10_accepts_consistent_lock_orders() {
        let src = "use std::sync::Mutex;\npub struct S { a: Mutex<u64>, b: Mutex<u64> }\nimpl S {\n    fn one(&self) -> u64 {\n        let g = self.a.lock().unwrap_or_else(|e| e.into_inner());\n        let h = self.b.lock().unwrap_or_else(|e| e.into_inner());\n        *g + *h\n    }\n    fn two(&self) -> u64 {\n        let g = self.a.lock().unwrap_or_else(|e| e.into_inner());\n        let h = self.b.lock().unwrap_or_else(|e| e.into_inner());\n        *g + *h\n    }\n}\n";
        let (findings, _) = run("crates/bench/src/x.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::LockOrder));
    }
}
