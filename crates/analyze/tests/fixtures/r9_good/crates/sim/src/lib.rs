//! R9 good twin: the same fan-out with deterministic discipline —
//! per-slot writes, RMW counters, and no control flow on `Relaxed`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

pub fn tally(n: u64) -> u64 {
    let mut results = vec![0u64; 4];
    let count = AtomicU64::new(0);
    thread::scope(|s| {
        for i in 0..4 {
            s.spawn(|| {
                results[i] = n + i as u64;
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    let snapshot = count.load(Ordering::Relaxed);
    results.iter().sum::<u64>() + snapshot
}
