//! R8 bad twin: a panic site transitively reachable from a proof root.

pub struct Machine {
    pub pc: u64,
}

impl Machine {
    pub fn run(&mut self) -> u64 {
        self.step()
    }

    fn step(&mut self) -> u64 {
        self.pc += 4;
        decode(self.pc)
    }
}

fn decode(word: u64) -> u64 {
    checked(word).unwrap()
}

fn checked(word: u64) -> Option<u64> {
    Some(word.rotate_left(3))
}
