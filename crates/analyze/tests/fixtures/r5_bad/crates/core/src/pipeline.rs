//! Updates the (too narrow) counter.

use crate::stats::TickStats;

pub fn tick(stats: &mut TickStats) {
    stats.ticks += 1;
}
