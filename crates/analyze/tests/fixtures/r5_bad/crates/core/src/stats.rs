//! R5 bad twin: a u32 counter overflows silently on long runs.

#[derive(Default)]
pub struct TickStats {
    pub ticks: u32,
}

impl TickStats {
    pub fn report(&self) -> u32 {
        self.ticks
    }
}
