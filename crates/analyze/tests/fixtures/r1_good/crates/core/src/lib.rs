//! R1 good twin: ordered collection, deterministic iteration.
use std::collections::BTreeMap;

pub fn checkpoints() -> BTreeMap<u64, u64> {
    BTreeMap::new()
}
