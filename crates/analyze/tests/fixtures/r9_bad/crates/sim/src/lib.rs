//! R9 bad twin: a spawn closure writes a shared mutable capture
//! without any per-slot, lock, or atomic discipline, and a `Relaxed`
//! load feeds control flow.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

pub fn tally(n: u64) -> u64 {
    let mut total = 0u64;
    let stop = AtomicU64::new(0);
    thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                if stop.load(Ordering::Relaxed) > 0 {
                    return;
                }
                total += n;
            });
        }
    });
    total
}
