//! R6 good twin: progress measured in simulated cycles, not wall time.

pub fn cycle_budget_exceeded(now: u64, started_cycle: u64, budget: u64) -> bool {
    now.saturating_sub(started_cycle) > budget
}

pub fn seed() -> u64 {
    0x5eed
}
