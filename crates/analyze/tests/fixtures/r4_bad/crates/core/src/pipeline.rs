//! Reads `width`; `ghost` stays untouched.

use crate::config::CoreConfig;

pub fn slots(config: &CoreConfig) -> usize {
    config.width * 2
}
