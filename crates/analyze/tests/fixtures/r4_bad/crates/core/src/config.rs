//! R4 bad twin: `ghost` is a knob nothing reads.

pub struct CoreConfig {
    pub width: usize,
    pub ghost: usize,
}
