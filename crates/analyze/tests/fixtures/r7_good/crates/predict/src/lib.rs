//! R7 good twin: the same table as parallel columns plus a validity
//! bitmap — occupancy is one word-test per 64 slots, values are a dense
//! column load.

pub struct ValueTable {
    pub tags: Vec<u64>,
    pub values: Vec<u64>,
    pub history: Vec<u8>,
    pub valid: Vec<u64>,
}

impl ValueTable {
    pub fn predict(&self, idx: usize) -> Option<u64> {
        let word = self.valid.get(idx / 64)?;
        if word & (1 << (idx % 64)) != 0 {
            self.values.get(idx).copied()
        } else {
            None
        }
    }
}
