//! Updates `hits` and `hidden`, but nothing touches `dead`.

use crate::stats::RunStats;

pub fn tick(stats: &mut RunStats) {
    stats.hits += 1;
    stats.hidden += 1;
}
