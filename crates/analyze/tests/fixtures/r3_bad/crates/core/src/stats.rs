//! R3 bad twin: `dead` is never updated, `hidden` is updated but never
//! surfaced by a report.

#[derive(Default)]
pub struct RunStats {
    pub hits: u64,
    pub dead: u64,
    pub hidden: u64,
}

impl RunStats {
    pub fn report(&self) -> u64 {
        self.hits
    }
}
