//! R7 bad twin: array-of-structs hot state in a cycle-level crate.
//!
//! Each slot packs tag + payload behind an `Option`, so every per-cycle
//! scan pays an occupancy branch and a strided load per slot.

pub struct ValueTable {
    pub entries: Vec<Option<(u64, u64)>>,
    pub history: Vec<Option<u8>>,
}

impl ValueTable {
    pub fn predict(&self, idx: usize) -> Option<u64> {
        match self.entries.get(idx) {
            Some(Some((_, v))) => Some(*v),
            _ => None,
        }
    }
}
