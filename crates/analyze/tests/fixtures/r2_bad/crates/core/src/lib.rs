//! R2 bad twin: panicking constructs on the hot path.

pub fn head(xs: &[u64], cache: Option<u64>) -> u64 {
    let first = xs[0];
    let cached = cache.unwrap();
    if first > cached {
        panic!("impossible");
    }
    cache.expect("checked above")
}
