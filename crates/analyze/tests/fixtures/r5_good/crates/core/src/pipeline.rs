//! Updates the counter.

use crate::stats::TickStats;

pub fn tick(stats: &mut TickStats) {
    stats.ticks += 1;
}
