//! R5 good twin: u64 counters cannot overflow in any realistic run.

#[derive(Default)]
pub struct TickStats {
    pub ticks: u64,
}

impl TickStats {
    pub fn report(&self) -> u64 {
        self.ticks
    }
}
