//! Updates every stats field.

use crate::stats::RunStats;

pub fn tick(stats: &mut RunStats, hit: bool) {
    if hit {
        stats.hits += 1;
    } else {
        stats.misses += 1;
    }
}
