//! R3 good twin: every field is updated and surfaced.

#[derive(Default)]
pub struct RunStats {
    pub hits: u64,
    pub misses: u64,
}

impl RunStats {
    pub fn report(&self) -> u64 {
        self.hits + self.misses
    }
}
