//! R4 good twin: every knob is read by the pipeline.

pub struct CoreConfig {
    pub width: usize,
    pub depth: usize,
}
