//! Reads both config fields.

use crate::config::CoreConfig;

pub fn slots(config: &CoreConfig) -> usize {
    config.width * config.depth
}
