//! R6 bad twin: wall-clock reads in a cycle-level crate.
use std::time::{Instant, SystemTime};

pub fn cycle_budget_exceeded(started: Instant) -> bool {
    started.elapsed().as_secs() > 10
}

pub fn seed() -> u64 {
    match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
