//! R10 good twin: every path acquires the locks in one fixed order
//! (cache before pool), or releases the first before the second.

use std::sync::Mutex;

pub struct Store {
    cache: Mutex<Vec<u64>>,
    pool: Mutex<Vec<u64>>,
}

impl Store {
    pub fn promote(&self) {
        let mut c = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let mut p = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = c.pop() {
            p.push(v);
        }
    }

    pub fn demote(&self) {
        let v = {
            let mut c = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            c.pop()
        };
        if let Some(v) = v {
            let mut p = self.pool.lock().unwrap_or_else(|e| e.into_inner());
            p.push(v);
        }
    }
}
