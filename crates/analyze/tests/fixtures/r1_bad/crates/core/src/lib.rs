//! R1 bad twin: hash-ordered collection in a cycle-level crate.
use std::collections::HashMap;

pub fn checkpoints() -> HashMap<u64, u64> {
    HashMap::new()
}
