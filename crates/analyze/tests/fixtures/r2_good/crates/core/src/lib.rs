//! R2 good twin: fallible paths return options / carry a recorded
//! justification; test-only panics are exempt.

pub fn head(xs: &[u64], cache: Option<u64>) -> Option<u64> {
    let first = xs.first().copied()?;
    let cached = cache.expect("filled by constructor"); // vpir: allow(panic, constructor always seeds the cache)
    Some(first.max(cached))
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_here_are_fine() {
        let xs = [1u64, 2];
        assert_eq!(xs[0], 1);
        assert_eq!(super::head(&xs, Some(3)).unwrap(), 3);
    }
}
