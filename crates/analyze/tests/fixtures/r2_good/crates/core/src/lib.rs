//! R2 good twin: fallible paths return options / carry a recorded
//! justification; test-only panics are exempt.

pub fn head(xs: &[u64], cache: Option<u64>) -> Option<u64> {
    let first = xs.first().copied()?;
    let cached = cache.expect("filled by constructor"); // vpir: allow(panic, constructor always seeds the cache)
    Some(first.max(cached))
}

/// The scratch-buffer idiom from the zero-allocation cycle loop: a pooled
/// buffer is taken, refilled, and put back every call, so the steady state
/// never allocates. The `expect` on put-back is justified the same way the
/// pipeline's pool invariants are — with a recorded allow.
pub struct Scratch {
    pool: Vec<Vec<u64>>,
}

impl Scratch {
    pub fn sum(&mut self, xs: &[u64]) -> u64 {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(xs);
        let total = buf.iter().sum();
        self.pool.push(buf);
        let back = self.pool.last().expect("buffer just pushed"); // vpir: allow(panic, pool take/put-back is balanced: the push above makes the pool non-empty)
        debug_assert_eq!(back.len(), xs.len());
        total
    }
}

/// The fault-isolation boundary idiom from the bench matrix runner: a
/// job runs behind `catch_unwind`, and a panic degrades to a structured
/// error value instead of tearing down the caller. Note the shape is
/// R2-clean without any allow — the payload is examined with
/// `downcast_ref` + fallbacks, never unwrapped.
pub fn isolated<T>(job: impl FnOnce() -> T) -> Result<T, String> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    match result {
        Ok(out) => Ok(out),
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_string())),
    }
}

/// The connection-handler error-boundary idiom from the serve crate: a
/// hostile byte stream maps to a structured status instead of a panic,
/// and shared state uses the poison-safe lock recovery. Every fallible
/// step flows through `?`/`map_err`, so the whole path is R2-clean with
/// no allow at all.
pub struct Handler {
    seen: std::sync::Mutex<u64>,
}

impl Handler {
    pub fn handle(&self, head: &str) -> Result<u64, (u16, String)> {
        let mut parts = head.split(' ');
        let method = parts.next().filter(|m| !m.is_empty()).ok_or_else(|| {
            (400, "empty request line".to_string())
        })?;
        if method != "GET" {
            return Err((405, format!("method {method} not allowed")));
        }
        let mut seen = self.seen.lock().unwrap_or_else(|e| e.into_inner());
        *seen += 1;
        Ok(*seen)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_here_are_fine() {
        let xs = [1u64, 2];
        assert_eq!(xs[0], 1);
        assert_eq!(super::head(&xs, Some(3)).unwrap(), 3);
        assert!(super::isolated(|| panic!("boom")).is_err());
        let h = super::Handler { seen: std::sync::Mutex::new(0) };
        assert_eq!(h.handle("GET / HTTP/1.1").unwrap(), 1);
        assert_eq!(h.handle("EAT / HTTP/1.1").unwrap_err().0, 405);
    }
}
