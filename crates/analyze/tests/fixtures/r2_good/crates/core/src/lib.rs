//! R2 good twin: fallible paths return options / carry a recorded
//! justification; test-only panics are exempt.

pub fn head(xs: &[u64], cache: Option<u64>) -> Option<u64> {
    let first = xs.first().copied()?;
    let cached = cache.expect("filled by constructor"); // vpir: allow(panic, constructor always seeds the cache)
    Some(first.max(cached))
}

/// The scratch-buffer idiom from the zero-allocation cycle loop: a pooled
/// buffer is taken, refilled, and put back every call, so the steady state
/// never allocates. The `expect` on put-back is justified the same way the
/// pipeline's pool invariants are — with a recorded allow.
pub struct Scratch {
    pool: Vec<Vec<u64>>,
}

impl Scratch {
    pub fn sum(&mut self, xs: &[u64]) -> u64 {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(xs);
        let total = buf.iter().sum();
        self.pool.push(buf);
        let back = self.pool.last().expect("buffer just pushed"); // vpir: allow(panic, pool take/put-back is balanced: the push above makes the pool non-empty)
        debug_assert_eq!(back.len(), xs.len());
        total
    }
}

/// The fault-isolation boundary idiom from the bench matrix runner: a
/// job runs behind `catch_unwind`, and a panic degrades to a structured
/// error value instead of tearing down the caller. Note the shape is
/// R2-clean without any allow — the payload is examined with
/// `downcast_ref` + fallbacks, never unwrapped.
pub fn isolated<T>(job: impl FnOnce() -> T) -> Result<T, String> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    match result {
        Ok(out) => Ok(out),
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_string())),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_here_are_fine() {
        let xs = [1u64, 2];
        assert_eq!(xs[0], 1);
        assert_eq!(super::head(&xs, Some(3)).unwrap(), 3);
        assert!(super::isolated(|| panic!("boom")).is_err());
    }
}
