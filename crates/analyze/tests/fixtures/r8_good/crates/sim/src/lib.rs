//! R8 good twin: the same call tree with the panic path closed off.

pub struct Machine {
    pub pc: u64,
}

impl Machine {
    pub fn run(&mut self) -> u64 {
        self.step()
    }

    fn step(&mut self) -> u64 {
        self.pc += 4;
        decode(self.pc)
    }
}

fn decode(word: u64) -> u64 {
    checked(word).unwrap_or(0)
}

fn checked(word: u64) -> Option<u64> {
    Some(word.rotate_left(3))
}
