//! R10 bad twin: two methods acquire the same pair of locks in
//! opposite orders — a classic ABBA deadlock.

use std::sync::Mutex;

pub struct Store {
    cache: Mutex<Vec<u64>>,
    pool: Mutex<Vec<u64>>,
}

impl Store {
    pub fn promote(&self) {
        let mut c = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let mut p = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = c.pop() {
            p.push(v);
        }
    }

    pub fn demote(&self) {
        let mut p = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        let mut c = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = p.pop() {
            c.push(v);
        }
    }
}
