//! Fixture tests: each rule has a bad/good twin under
//! `tests/fixtures/`, shaped like a miniature workspace, plus a
//! self-check that the real workspace stays clean.

use std::path::{Path, PathBuf};

use vpir_analyze::{analyze_root, Report};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze(name: &str) -> Report {
    analyze_root(&fixture(name)).expect("fixture tree readable")
}

/// Rule ids of unsuppressed findings, e.g. `["R1"]`.
fn live_ids(report: &Report) -> Vec<&'static str> {
    report.live().map(|f| f.rule.id()).collect()
}

#[test]
fn r1_fires_on_hash_collections_and_not_on_btree() {
    let bad = analyze("r1_bad");
    assert_eq!(live_ids(&bad), ["R1", "R1", "R1"], "{}", bad.to_text());
    let good = analyze("r1_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn r2_fires_on_panicking_constructs_and_honors_allows() {
    let bad = analyze("r2_bad");
    let ids = live_ids(&bad);
    assert_eq!(ids.len(), 4, "{}", bad.to_text());
    assert!(ids.iter().all(|id| *id == "R2"));

    let good = analyze("r2_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
    // The allow comments are recorded, not discarded: one on the cached
    // expect, one on the scratch-pool balance assert.
    assert_eq!(good.suppressed().count(), 2, "{}", good.to_text());
    let reasons: Vec<String> = good
        .suppressed()
        .filter_map(|f| f.suppressed.clone())
        .collect();
    assert!(
        reasons.iter().any(|r| r.contains("constructor")),
        "reasons: {reasons:?}"
    );
    assert!(
        reasons.iter().any(|r| r.contains("pool take/put-back")),
        "reasons: {reasons:?}"
    );
}

#[test]
fn r3_fires_on_dead_and_unsurfaced_stats_fields() {
    let bad = analyze("r3_bad");
    let r3: Vec<_> = bad.live().filter(|f| f.rule.id() == "R3").collect();
    assert_eq!(r3.len(), 2, "{}", bad.to_text());
    assert!(r3.iter().any(|f| f.message.contains("`RunStats.dead` is never updated")));
    assert!(r3.iter().any(|f| f.message.contains("`RunStats.hidden` is never surfaced")));

    let good = analyze("r3_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn r4_fires_on_unread_config_fields() {
    let bad = analyze("r4_bad");
    let ids = live_ids(&bad);
    assert_eq!(ids, ["R4"], "{}", bad.to_text());
    assert!(bad.live().next().is_some_and(|f| f.message.contains("ghost")));

    let good = analyze("r4_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn r5_fires_on_narrow_counters() {
    let bad = analyze("r5_bad");
    let ids = live_ids(&bad);
    assert_eq!(ids, ["R5"], "{}", bad.to_text());
    assert!(bad.live().next().is_some_and(|f| f.message.contains("u32")));

    let good = analyze("r5_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn r6_fires_on_wall_clock_reads_in_cycle_code() {
    let bad = analyze("r6_bad");
    let ids = live_ids(&bad);
    assert_eq!(ids, ["R6", "R6", "R6", "R6"], "{}", bad.to_text());
    assert!(bad.live().all(|f| f.message.contains("wall-clock")));

    let good = analyze("r6_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn r7_fires_on_vec_option_hot_state_and_not_on_columns() {
    let bad = analyze("r7_bad");
    let ids = live_ids(&bad);
    assert_eq!(ids, ["R7", "R7"], "{}", bad.to_text());
    assert!(bad.live().all(|f| f.message.contains("Vec<Option<")));

    let good = analyze("r7_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn json_output_round_trips_rule_ids() {
    let bad = analyze("r2_bad");
    let json = bad.to_json();
    assert!(json.contains("\"rule\":\"R2\""));
    assert!(json.contains("\"name\":\"panic\""));
    assert!(json.starts_with('{') && json.ends_with('}'));
}

#[test]
fn the_workspace_itself_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = analyze_root(root).expect("workspace readable");
    assert!(
        report.live().next().is_none(),
        "workspace has live findings:\n{}",
        report.to_text()
    );
    // The burn-down left justifications behind, not bare suppressions.
    assert!(report.suppressed().all(|f| f
        .suppressed
        .as_ref()
        .is_some_and(|r| !r.is_empty())));
}
