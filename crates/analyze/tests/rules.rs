//! Fixture tests: each rule has a bad/good twin under
//! `tests/fixtures/`, shaped like a miniature workspace, plus a
//! self-check that the real workspace stays clean.

use std::path::{Path, PathBuf};

use vpir_analyze::{analyze_root, dump_call_graph, sarif, Report};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze(name: &str) -> Report {
    analyze_root(&fixture(name)).expect("fixture tree readable")
}

/// Rule ids of unsuppressed findings, e.g. `["R1"]`.
fn live_ids(report: &Report) -> Vec<&'static str> {
    report.live().map(|f| f.rule.id()).collect()
}

#[test]
fn r1_fires_on_hash_collections_and_not_on_btree() {
    let bad = analyze("r1_bad");
    assert_eq!(live_ids(&bad), ["R1", "R1", "R1"], "{}", bad.to_text());
    let good = analyze("r1_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn r2_fires_on_panicking_constructs_and_honors_allows() {
    let bad = analyze("r2_bad");
    let ids = live_ids(&bad);
    assert_eq!(ids.len(), 4, "{}", bad.to_text());
    assert!(ids.iter().all(|id| *id == "R2"));

    let good = analyze("r2_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
    // The allow comments are recorded, not discarded: one on the cached
    // expect, one on the scratch-pool balance assert.
    assert_eq!(good.suppressed().count(), 2, "{}", good.to_text());
    let reasons: Vec<String> = good
        .suppressed()
        .filter_map(|f| f.suppressed.clone())
        .collect();
    assert!(
        reasons.iter().any(|r| r.contains("constructor")),
        "reasons: {reasons:?}"
    );
    assert!(
        reasons.iter().any(|r| r.contains("pool take/put-back")),
        "reasons: {reasons:?}"
    );
}

#[test]
fn r3_fires_on_dead_and_unsurfaced_stats_fields() {
    let bad = analyze("r3_bad");
    let r3: Vec<_> = bad.live().filter(|f| f.rule.id() == "R3").collect();
    assert_eq!(r3.len(), 2, "{}", bad.to_text());
    assert!(r3.iter().any(|f| f.message.contains("`RunStats.dead` is never updated")));
    assert!(r3.iter().any(|f| f.message.contains("`RunStats.hidden` is never surfaced")));

    let good = analyze("r3_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn r4_fires_on_unread_config_fields() {
    let bad = analyze("r4_bad");
    let ids = live_ids(&bad);
    assert_eq!(ids, ["R4"], "{}", bad.to_text());
    assert!(bad.live().next().is_some_and(|f| f.message.contains("ghost")));

    let good = analyze("r4_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn r5_fires_on_narrow_counters() {
    let bad = analyze("r5_bad");
    let ids = live_ids(&bad);
    assert_eq!(ids, ["R5"], "{}", bad.to_text());
    assert!(bad.live().next().is_some_and(|f| f.message.contains("u32")));

    let good = analyze("r5_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn r6_fires_on_wall_clock_reads_in_cycle_code() {
    let bad = analyze("r6_bad");
    let ids = live_ids(&bad);
    assert_eq!(ids, ["R6", "R6", "R6", "R6"], "{}", bad.to_text());
    assert!(bad.live().all(|f| f.message.contains("wall-clock")));

    let good = analyze("r6_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn r7_fires_on_vec_option_hot_state_and_not_on_columns() {
    let bad = analyze("r7_bad");
    let ids = live_ids(&bad);
    assert_eq!(ids, ["R7", "R7"], "{}", bad.to_text());
    assert!(bad.live().all(|f| f.message.contains("Vec<Option<")));

    let good = analyze("r7_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn r8_fires_on_transitively_reachable_panic_and_proves_the_good_twin() {
    let bad = analyze("r8_bad");
    let ids = live_ids(&bad);
    assert_eq!(ids, ["R8"], "{}", bad.to_text());
    let finding = bad.live().next().expect("one finding");
    assert!(
        finding.message.contains(".unwrap()") && finding.message.contains("Machine::"),
        "message: {}",
        finding.message
    );

    let good = analyze("r8_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
    // The proof notes certify the root's whole tree, not just silence.
    let run_proof = good
        .proofs
        .iter()
        .find(|p| p.root == "Machine::run")
        .expect("a proof for Machine::run");
    assert!(
        run_proof.summary.starts_with("panic-free"),
        "summary: {}",
        run_proof.summary
    );
    assert!(run_proof.summary.contains("0 panic site(s)"));
}

#[test]
fn r9_fires_on_shared_writes_and_relaxed_control_flow() {
    let bad = analyze("r9_bad");
    let ids = live_ids(&bad);
    assert_eq!(ids, ["R9", "R9"], "{}", bad.to_text());
    assert!(bad.live().any(|f| f.message.contains("total")), "{}", bad.to_text());
    assert!(
        bad.live().any(|f| f.message.contains("Relaxed")),
        "{}",
        bad.to_text()
    );

    // Per-slot writes and RMW counters are the sanctioned disciplines.
    let good = analyze("r9_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn r10_fires_on_opposite_lock_orders_and_not_on_a_fixed_order() {
    let bad = analyze("r10_bad");
    let ids = live_ids(&bad);
    assert!(!ids.is_empty() && ids.iter().all(|id| *id == "R10"), "{}", bad.to_text());
    assert!(
        bad.live().any(|f| f.message.contains("fixed order")),
        "{}",
        bad.to_text()
    );

    let good = analyze("r10_good");
    assert!(live_ids(&good).is_empty(), "{}", good.to_text());
}

#[test]
fn call_graph_dump_resolves_methods_and_free_functions() {
    let tree = dump_call_graph(&fixture("r8_bad"), "Machine::run")
        .expect("fixture readable")
        .expect("root resolves");
    assert!(tree.starts_with("Machine::run"), "tree: {tree}");
    assert!(tree.contains("Machine::step"), "tree: {tree}");
    assert!(tree.contains("decode"), "tree: {tree}");
    assert!(tree.contains("[1 panic"), "tree: {tree}");

    // A unique suffix resolves too; an unknown name reports cleanly.
    assert!(dump_call_graph(&fixture("r8_bad"), "step")
        .expect("fixture readable")
        .is_ok());
    let missing = dump_call_graph(&fixture("r8_bad"), "no_such_fn")
        .expect("fixture readable");
    assert!(missing.is_err());
}

#[test]
fn sarif_output_round_trips_through_the_validator() {
    // Findings, suppressions, and proofs all survive the round trip.
    for name in ["r8_bad", "r2_good", "r10_bad"] {
        let report = analyze(name);
        let sarif_text = sarif::to_sarif(&report);
        sarif::validate_sarif(&sarif_text)
            .unwrap_or_else(|e| panic!("{name} SARIF failed validation: {e}"));
    }
    let bad = sarif::to_sarif(&analyze("r8_bad"));
    assert!(bad.contains("\"ruleId\":\"R8\""), "{bad}");
    let suppressed = sarif::to_sarif(&analyze("r2_good"));
    assert!(suppressed.contains("\"suppressions\""), "{suppressed}");
    assert!(suppressed.contains("inSource"), "{suppressed}");
}

#[test]
fn json_output_round_trips_rule_ids() {
    let bad = analyze("r2_bad");
    let json = bad.to_json();
    assert!(json.contains("\"rule\":\"R2\""));
    assert!(json.contains("\"name\":\"panic\""));
    assert!(json.starts_with('{') && json.ends_with('}'));
}

#[test]
fn the_workspace_itself_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = analyze_root(root).expect("workspace readable");
    assert!(
        report.live().next().is_none(),
        "workspace has live findings:\n{}",
        report.to_text()
    );
    // The R2 burn-down removed every suppression: each former allow
    // site now handles its case structurally (let-else, `?`, if-let).
    // New suppressions need a justification strong enough to also
    // justify weakening this count.
    assert_eq!(
        report.suppressed().count(),
        0,
        "unexpected suppressions:\n{}",
        report.to_text()
    );
    // The interprocedural pass certifies every simulator entry point.
    assert!(
        report.proofs.iter().any(|p| p.root == "Simulator::run_checked"
            && p.summary.starts_with("panic-free")),
        "no panic-freedom proof for Simulator::run_checked:\n{}",
        report.to_text()
    );
}
