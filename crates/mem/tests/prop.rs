//! Property-based tests for the cache model against a reference
//! implementation of set-associative LRU.

use std::collections::HashMap;

use proptest::prelude::*;

use vpir_mem::{Cache, CacheConfig, PortArbiter};

/// A straightforward reference model of a set-associative LRU cache.
struct RefCache {
    sets: HashMap<u64, Vec<u64>>, // set -> lines, most recent last
    assoc: usize,
    line_bytes: u64,
    nsets: u64,
}

impl RefCache {
    fn new(cfg: &CacheConfig) -> RefCache {
        RefCache {
            sets: HashMap::new(),
            assoc: cfg.assoc,
            line_bytes: cfg.line_bytes as u64,
            nsets: cfg.sets() as u64,
        }
    }

    /// Returns whether the access hits, then updates LRU state.
    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = self.sets.entry(line % self.nsets).or_default();
        let hit = set.contains(&line);
        set.retain(|l| *l != line);
        set.push(line);
        if set.len() > self.assoc {
            set.remove(0);
        }
        hit
    }
}

fn small_config() -> CacheConfig {
    CacheConfig {
        size_bytes: 512,
        assoc: 2,
        line_bytes: 32,
        hit_latency: 1,
        miss_latency: 6,
        mshrs: 64, // effectively unlimited so timing never reorders fills
    }
}

proptest! {
    /// Hit/miss classification matches the reference LRU model when
    /// accesses are spaced out (no overlapping misses).
    #[test]
    fn matches_reference_lru(addrs in proptest::collection::vec(0u64..0x4000, 1..200)) {
        let cfg = small_config();
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(&cfg);
        let mut t = 0u64;
        for addr in addrs {
            t += 100; // far enough apart that every miss has completed
            let expect = reference.access(addr);
            let got = cache.access(t, addr, false);
            prop_assert_eq!(got.hit, expect, "addr {:#x} at {}", addr, t);
        }
    }

    /// Data is never ready before the hit latency nor later than a full
    /// miss, and hits are strictly faster than cold misses.
    #[test]
    fn latency_bounds(addrs in proptest::collection::vec(0u64..0x4000, 1..100)) {
        let cfg = small_config();
        let mut cache = Cache::new(cfg);
        let mut t = 0u64;
        for addr in addrs {
            t += 50;
            let out = cache.access(t, addr, false);
            let delay = out.ready_cycle - t;
            prop_assert!(delay >= cfg.hit_latency as u64);
            prop_assert!(delay <= (cfg.hit_latency + cfg.miss_latency) as u64);
            if out.hit {
                prop_assert_eq!(delay, cfg.hit_latency as u64);
            }
        }
    }

    /// Stats add up: hits + misses + merges equals accesses.
    #[test]
    fn stats_are_consistent(addrs in proptest::collection::vec(0u64..0x2000, 1..100)) {
        let mut cache = Cache::new(small_config());
        for (i, addr) in addrs.iter().enumerate() {
            cache.access(i as u64, *addr, i % 3 == 0);
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!(s.miss_ratio() >= 0.0 && s.miss_ratio() <= 1.0);
    }

    /// The port arbiter grants exactly `ports` requests per cycle.
    #[test]
    fn arbiter_grants_exactly_ports(
        ports in 1u32..4,
        demands in proptest::collection::vec(0usize..8, 1..50),
    ) {
        let mut arb = PortArbiter::new(ports);
        for (cycle, demand) in demands.iter().enumerate() {
            let granted = (0..*demand)
                .filter(|_| arb.request(cycle as u64))
                .count();
            prop_assert_eq!(granted, (*demand).min(ports as usize));
        }
        let (g, d) = arb.totals();
        prop_assert_eq!(g + d, demands.iter().map(|d| *d as u64).sum::<u64>());
    }
}
