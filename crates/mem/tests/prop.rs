//! Property-based tests for the cache model against a reference
//! implementation of set-associative LRU.

use std::collections::HashMap;

use vpir_mem::{Cache, CacheConfig, PortArbiter};
use vpir_testkit::check;

/// A straightforward reference model of a set-associative LRU cache.
struct RefCache {
    sets: HashMap<u64, Vec<u64>>, // set -> lines, most recent last
    assoc: usize,
    line_bytes: u64,
    nsets: u64,
}

impl RefCache {
    fn new(cfg: &CacheConfig) -> RefCache {
        RefCache {
            sets: HashMap::new(),
            assoc: cfg.assoc,
            line_bytes: cfg.line_bytes as u64,
            nsets: cfg.sets() as u64,
        }
    }

    /// Returns whether the access hits, then updates LRU state.
    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = self.sets.entry(line % self.nsets).or_default();
        let hit = set.contains(&line);
        set.retain(|l| *l != line);
        set.push(line);
        if set.len() > self.assoc {
            set.remove(0);
        }
        hit
    }
}

fn small_config() -> CacheConfig {
    CacheConfig {
        size_bytes: 512,
        assoc: 2,
        line_bytes: 32,
        hit_latency: 1,
        miss_latency: 6,
        mshrs: 64, // effectively unlimited so timing never reorders fills
    }
}

/// Hit/miss classification matches the reference LRU model when
/// accesses are spaced out (no overlapping misses).
#[test]
fn matches_reference_lru() {
    check("matches_reference_lru", 256, |rng| {
        let cfg = small_config();
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(&cfg);
        let mut t = 0u64;
        for _ in 0..rng.gen_range(1usize..200) {
            let addr = rng.gen_range(0u64..0x4000);
            t += 100; // far enough apart that every miss has completed
            let expect = reference.access(addr);
            let got = cache.access(t, addr, false);
            assert_eq!(got.hit, expect, "addr {addr:#x} at {t}");
        }
    });
}

/// Data is never ready before the hit latency nor later than a full
/// miss, and hits are strictly faster than cold misses.
#[test]
fn latency_bounds() {
    check("latency_bounds", 256, |rng| {
        let cfg = small_config();
        let mut cache = Cache::new(cfg);
        let mut t = 0u64;
        for _ in 0..rng.gen_range(1usize..100) {
            let addr = rng.gen_range(0u64..0x4000);
            t += 50;
            let out = cache.access(t, addr, false);
            let delay = out.ready_cycle - t;
            assert!(delay >= cfg.hit_latency as u64);
            assert!(delay <= (cfg.hit_latency + cfg.miss_latency) as u64);
            if out.hit {
                assert_eq!(delay, cfg.hit_latency as u64);
            }
        }
    });
}

/// Stats add up: hits + misses + merges equals accesses.
#[test]
fn stats_are_consistent() {
    check("stats_are_consistent", 256, |rng| {
        let mut cache = Cache::new(small_config());
        let n = rng.gen_range(1usize..100);
        for i in 0..n {
            let addr = rng.gen_range(0u64..0x2000);
            cache.access(i as u64, addr, i % 3 == 0);
        }
        let s = cache.stats();
        assert_eq!(s.accesses(), n as u64);
        assert!(s.miss_ratio() >= 0.0 && s.miss_ratio() <= 1.0);
    });
}

/// The port arbiter grants exactly `ports` requests per cycle.
#[test]
fn arbiter_grants_exactly_ports() {
    check("arbiter_grants_exactly_ports", 256, |rng| {
        let ports = rng.gen_range(1u32..4);
        let demands: Vec<usize> = (0..rng.gen_range(1usize..50))
            .map(|_| rng.gen_range(0usize..8))
            .collect();
        let mut arb = PortArbiter::new(ports);
        for (cycle, demand) in demands.iter().enumerate() {
            let granted = (0..*demand).filter(|_| arb.request(cycle as u64)).count();
            assert_eq!(granted, (*demand).min(ports as usize));
        }
        let (g, d) = arb.totals();
        assert_eq!(g + d, demands.iter().map(|d| *d as u64).sum::<u64>());
    });
}
