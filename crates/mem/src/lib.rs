//! # vpir-mem — cache and memory-port timing models
//!
//! Timing-only models of the Table 1 memory hierarchy: 64 KB 2-way
//! set-associative instruction and data caches with 32-byte lines and a
//! 6-cycle miss latency; the data cache is dual-ported and non-blocking.
//!
//! These models track *tags and timing only* — data values live in
//! `vpir_isa::MemImage` (the simulator executes at dispatch and uses the
//! cache purely to decide when a value becomes available).
//!
//! # Examples
//!
//! ```
//! use vpir_mem::{Cache, CacheConfig};
//! let mut dcache = Cache::new(CacheConfig::table1_data());
//! let miss = dcache.access(0, 0x1000, false);
//! assert_eq!(miss.ready_cycle, 7); // 1-cycle hit pipe + 6-cycle miss
//! let hit = dcache.access(8, 0x1008, false);
//! assert_eq!(hit.ready_cycle, 9); // same line now resident
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod ports;

pub use cache::{AccessOutcome, Cache, CacheConfig, CacheStats};
pub use ports::PortArbiter;
