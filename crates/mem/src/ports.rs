//! Per-cycle port arbitration.

/// Arbitrates a fixed number of ports per cycle.
///
/// The Table 1 data cache is dual-ported: at most two memory operations
/// may access it per cycle. The pipeline asks the arbiter for a port
/// before issuing a memory operation; a denied request is counted as
/// resource contention (Figure 5 of the paper).
///
/// # Examples
///
/// ```
/// use vpir_mem::PortArbiter;
/// let mut ports = PortArbiter::new(2);
/// assert!(ports.request(100));
/// assert!(ports.request(100));
/// assert!(!ports.request(100)); // third request in cycle 100 denied
/// assert!(ports.request(101));  // new cycle, ports free again
/// ```
#[derive(Debug, Clone)]
pub struct PortArbiter {
    ports: u32,
    cycle: u64,
    used: u32,
    granted: u64,
    denied: u64,
}

impl PortArbiter {
    /// Creates an arbiter with `ports` ports per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: u32) -> PortArbiter {
        assert!(ports > 0, "need at least one port");
        PortArbiter {
            ports,
            cycle: 0,
            used: 0,
            granted: 0,
            denied: 0,
        }
    }

    /// Requests a port in `cycle`; returns whether one was granted.
    ///
    /// Cycles may only move forward; a request for an earlier cycle than
    /// the last one seen is treated as the current cycle.
    pub fn request(&mut self, cycle: u64) -> bool {
        if cycle > self.cycle {
            self.cycle = cycle;
            self.used = 0;
        }
        if self.used < self.ports {
            self.used += 1;
            self.granted += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Ports still free in `cycle` without consuming one.
    pub fn available(&self, cycle: u64) -> u32 {
        if cycle > self.cycle {
            self.ports
        } else {
            self.ports - self.used
        }
    }

    /// Total `(granted, denied)` requests.
    pub fn totals(&self) -> (u64, u64) {
        (self.granted, self.denied)
    }

    /// Resets usage and counters.
    pub fn reset(&mut self) {
        self.cycle = 0;
        self.used = 0;
        self.granted = 0;
        self.denied = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_up_to_port_count() {
        let mut p = PortArbiter::new(2);
        assert!(p.request(5));
        assert!(p.request(5));
        assert!(!p.request(5));
        assert_eq!(p.available(5), 0);
        assert_eq!(p.totals(), (2, 1));
    }

    #[test]
    fn new_cycle_frees_ports() {
        let mut p = PortArbiter::new(1);
        assert!(p.request(1));
        assert!(!p.request(1));
        assert!(p.request(2));
        assert_eq!(p.available(3), 1);
    }

    #[test]
    fn stale_cycle_counts_against_current() {
        let mut p = PortArbiter::new(1);
        assert!(p.request(10));
        assert!(!p.request(9)); // treated as cycle 10, which is full
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = PortArbiter::new(1);
        p.request(1);
        p.reset();
        assert_eq!(p.totals(), (0, 0));
        assert!(p.request(0));
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        PortArbiter::new(0);
    }
}
