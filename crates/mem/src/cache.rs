//! Set-associative, LRU, non-blocking cache timing model.

/// Geometry and timing of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Hit latency in cycles (data available `hit_latency` cycles after access).
    pub hit_latency: u32,
    /// Additional cycles a miss takes beyond the hit latency.
    pub miss_latency: u32,
    /// Maximum outstanding misses (MSHRs); further misses to new lines
    /// are serialised behind the oldest outstanding one.
    pub mshrs: usize,
}

impl CacheConfig {
    /// The Table 1 instruction cache: 64 KB, 2-way, 32 B lines, 6-cycle miss.
    pub fn table1_inst() -> CacheConfig {
        CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 2,
            line_bytes: 32,
            hit_latency: 1,
            miss_latency: 6,
            mshrs: 8,
        }
    }

    /// The Table 1 data cache: identical geometry, dual-ported (ports are
    /// arbitrated by [`crate::PortArbiter`], not by the cache itself).
    pub fn table1_data() -> CacheConfig {
        CacheConfig::table1_inst()
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was resident (or its miss already outstanding).
    pub hit: bool,
    /// Cycle at which the data is available.
    pub ready_cycle: u64,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed (primary misses).
    pub misses: u64,
    /// Misses that merged into an outstanding MSHR (secondary misses).
    pub mshr_merges: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.mshr_merges
    }

    /// Miss ratio over all accesses (secondary misses count as misses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            (self.misses + self.mshr_merges) as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    /// Monotonic touch stamp for LRU.
    lru: u64,
}

#[derive(Debug, Clone, Copy)]
struct Mshr {
    line: u64,
    ready_cycle: u64,
}

/// A set-associative, LRU, non-blocking cache (tags + timing only).
///
/// The cache is *stateful in time*: `access` takes the current cycle and
/// returns when the data will be ready. Misses allocate the line
/// immediately (fill timing is folded into `ready_cycle`); accesses to a
/// line with an outstanding miss complete when that miss does.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// All ways in one flat array; set `s` is the contiguous slice
    /// `[s * assoc, (s + 1) * assoc)`.
    ways: Vec<Way>,
    /// `log2(line_bytes)` — the line size is validated a power of two.
    line_shift: u32,
    /// `sets - 1` when the set count is a power of two (the common
    /// geometry), letting `set_of` mask instead of divide; `None` falls
    /// back to modulo.
    set_mask: Option<u64>,
    mshrs: Vec<Mshr>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line size, or a line larger than a way's share of the capacity).
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(config.assoc > 0 && config.mshrs > 0);
        assert!(config.sets() > 0, "capacity must hold at least one set");
        Cache {
            config,
            ways: vec![
                Way {
                    tag: 0,
                    valid: false,
                    lru: 0
                };
                config.sets() * config.assoc
            ],
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: config
                .sets()
                .is_power_of_two()
                .then(|| config.sets() as u64 - 1),
            mshrs: Vec::new(),
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn set_of(&self, line: u64) -> usize {
        match self.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.config.sets() as u64) as usize,
        }
    }

    fn set(&self, set: usize) -> &[Way] {
        &self.ways[set * self.config.assoc..][..self.config.assoc]
    }

    fn set_mut(&mut self, set: usize) -> &mut [Way] {
        let assoc = self.config.assoc;
        &mut self.ways[set * assoc..][..assoc]
    }

    /// Accesses `addr` at `now`; returns when the data is ready.
    ///
    /// Writes allocate like reads (write-allocate); dirty-line writeback
    /// bandwidth is not modelled, matching the paper's single-level
    /// hierarchy with a flat 6-cycle miss.
    pub fn access(&mut self, now: u64, addr: u64, is_write: bool) -> AccessOutcome {
        let _ = is_write;
        self.tick += 1;
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let tag = line;
        self.mshrs.retain(|m| m.ready_cycle > now);

        let tick = self.tick;
        if let Some(way) = self.set_mut(set).iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = tick;
            // A hit on a line whose fill is still in flight completes with
            // the fill, not before.
            if let Some(m) = self.mshrs.iter().find(|m| m.line == line) {
                self.stats.mshr_merges += 1;
                return AccessOutcome {
                    hit: true,
                    ready_cycle: m.ready_cycle.max(now + self.config.hit_latency as u64),
                };
            }
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                ready_cycle: now + self.config.hit_latency as u64,
            };
        }

        // Primary miss: allocate MSHR (serialised if all are busy) and fill.
        self.stats.misses += 1;
        let base_ready = now + (self.config.hit_latency + self.config.miss_latency) as u64;
        let ready_cycle = if self.mshrs.len() >= self.config.mshrs {
            let oldest = self
                .mshrs
                .iter()
                .map(|m| m.ready_cycle)
                .min()
                .unwrap_or(now);
            oldest.max(base_ready)
        } else {
            base_ready
        };
        self.mshrs.push(Mshr { line, ready_cycle });

        // The set is non-empty (assoc is validated positive at
        // construction), so a victim always exists; `if let` keeps the
        // miss path panic-free without changing the selection.
        if let Some(victim) = self
            .set_mut(set)
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
        {
            victim.tag = tag;
            victim.valid = true;
            victim.lru = tick;
        }

        AccessOutcome {
            hit: false,
            ready_cycle,
        }
    }

    /// Whether `addr`'s line is currently resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        self.set(set).iter().any(|w| w.valid && w.tag == line)
    }

    /// Invalidates every line and drops outstanding misses.
    pub fn flush(&mut self) {
        for way in &mut self.ways {
            way.valid = false;
        }
        self.mshrs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 32B = 256B for easy conflict construction.
        Cache::new(CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_bytes: 32,
            hit_latency: 1,
            miss_latency: 6,
            mshrs: 4,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let a = c.access(0, 0x100, false);
        assert!(!a.hit);
        assert_eq!(a.ready_cycle, 7);
        let b = c.access(10, 0x10c, false);
        assert!(b.hit);
        assert_eq!(b.ready_cycle, 11);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Three lines mapping to the same set (4 sets, 32B lines -> stride 128).
        c.access(0, 0x000, false);
        c.access(10, 0x080, false);
        c.access(20, 0x000, false); // touch first again
        c.access(30, 0x100, false); // evicts 0x080, not 0x000
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn access_during_outstanding_miss_completes_with_fill() {
        let mut c = small();
        let first = c.access(0, 0x200, false);
        let second = c.access(2, 0x208, false); // same line, miss in flight
        assert!(second.hit);
        assert_eq!(second.ready_cycle, first.ready_cycle);
        assert_eq!(c.stats().mshr_merges, 1);
        // After the fill completes, accesses are plain hits again.
        let third = c.access(first.ready_cycle + 1, 0x210, false);
        assert_eq!(third.ready_cycle, first.ready_cycle + 2);
    }

    #[test]
    fn mshr_exhaustion_serialises() {
        let mut c = Cache::new(CacheConfig {
            mshrs: 1,
            ..*small().config()
        });
        let a = c.access(0, 0x000, false);
        let b = c.access(0, 0x400, false); // distinct line, MSHR full
        assert!(b.ready_cycle >= a.ready_cycle);
    }

    #[test]
    fn table1_geometry() {
        let cfg = CacheConfig::table1_data();
        assert_eq!(cfg.sets(), 1024);
        let mut c = Cache::new(cfg);
        // Fill both ways of set 0 and verify no thrash of a 2-line set.
        let stride = (cfg.sets() * cfg.line_bytes) as u64;
        c.access(0, 0, false);
        c.access(1, stride, false);
        assert!(c.probe(0));
        assert!(c.probe(stride));
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access(0, 0x40, true);
        assert!(c.probe(0x40));
        c.flush();
        assert!(!c.probe(0x40));
    }

    #[test]
    fn miss_ratio() {
        let mut c = small();
        c.access(0, 0x0, false);
        c.access(10, 0x0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        Cache::new(CacheConfig {
            line_bytes: 24,
            ..*small().config()
        });
    }
}
