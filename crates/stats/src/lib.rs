//! # vpir-stats — means, ratios, and report rendering
//!
//! Small numeric and formatting helpers shared by the experiment harness:
//! the paper reports harmonic means over benchmarks (Figures 3, 6, 7) and
//! fixed-width tables; this crate renders both.
//!
//! # Examples
//!
//! ```
//! use vpir_stats::harmonic_mean;
//! let speedups = [1.1, 1.2, 1.3];
//! let hm = harmonic_mean(speedups.iter().copied()).unwrap();
//! assert!(hm > 1.19 && hm < 1.20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod table;

pub use table::{AsciiBars, Table};

/// The harmonic mean of a sequence of positive values.
///
/// Returns `None` for an empty sequence or any non-positive value. The
/// paper's HM bars over per-benchmark speedups use this.
pub fn harmonic_mean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut n = 0usize;
    let mut recip_sum = 0.0;
    for v in values {
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        n += 1;
        recip_sum += 1.0 / v;
    }
    if n == 0 {
        None
    } else {
        Some(n as f64 / recip_sum)
    }
}

/// The arithmetic mean; `None` for an empty sequence.
pub fn arithmetic_mean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut n = 0usize;
    let mut sum = 0.0;
    for v in values {
        n += 1;
        sum += v;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// The geometric mean of positive values; `None` if empty or non-positive.
pub fn geometric_mean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut n = 0usize;
    let mut log_sum = 0.0;
    for v in values {
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        n += 1;
        log_sum += v.ln();
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

/// Per-static-instruction dynamic counters collected by the pipeline
/// when `CoreConfig::pc_profile` is on.
///
/// The static analyzer (`vpir-isa-analyze`) joins these against its
/// per-PC invariance prediction: a statically *invariant* instruction
/// should show high `rb_hits`, a *stride-derivable* one high
/// `vpt_correct` under a stride predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcStats {
    /// Committed executions of this static instruction.
    pub executions: u64,
    /// Committed executions satisfied from the reuse buffer.
    pub rb_hits: u64,
    /// Committed executions whose VPT prediction matched the result.
    pub vpt_correct: u64,
}

impl PcStats {
    /// Percent of committed executions served by the reuse buffer.
    pub fn rb_hit_pct(&self) -> f64 {
        percent(self.rb_hits, self.executions)
    }

    /// Percent of committed executions the VPT predicted correctly.
    pub fn vpt_correct_pct(&self) -> f64 {
        percent(self.vpt_correct, self.executions)
    }
}

/// Trace-reuse (RTB) counters, collected by the trace-reuse mechanism
/// and surfaced through `SimStats`.
///
/// Capture pipeline: dispatched straight-line runs become *captured*
/// pendings; pendings whose members all commit are *installed* into the
/// RTB (or *dropped* when a partially-overlapping in-trace store makes
/// a member load unclassifiable); pendings with a squashed member are
/// *pending_squashed* — the wrong-path-invalidation guarantee. Replay:
/// a validated dispatch-time hit counts one *replay* and
/// `replayed_insts` members; a member whose recorded outcome disagrees
/// with the functional recomputation *aborts* the rest of the replay
/// (the member then dispatches normally — soundness never depends on
/// the recording). `committed_reused` attributes committed trace
/// members by instruction class (`per_class`, `OpClass` declaration
/// order) and by natural-loop nesting depth (`per_depth`, depths ≥ 4
/// share the last bucket).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RtbStats {
    /// Trace captures finalized into the pending queue.
    pub captured: u64,
    /// Pending captures discarded because a member was squashed.
    pub pending_squashed: u64,
    /// Pending captures installed into the RTB at commit.
    pub installed: u64,
    /// Pending captures dropped at install (unclassifiable member load).
    pub dropped: u64,
    /// Validated dispatch-time trace replays granted.
    pub replays: u64,
    /// Trace members dispatched under a granted replay.
    pub replayed_insts: u64,
    /// Replays cut short by a member guard failure.
    pub aborted: u64,
    /// Committed instructions that were replayed trace members.
    pub committed_reused: u64,
    /// `committed_reused` by instruction class (`OpClass` order).
    pub per_class: [u64; 9],
    /// `committed_reused` by natural-loop nesting depth (0–3, then 4+).
    pub per_depth: [u64; 5],
}

impl RtbStats {
    /// Mean members per granted replay.
    pub fn mean_trace_len(&self) -> f64 {
        ratio(self.replayed_insts as f64, self.replays as f64)
    }

    /// Percent of committed instructions that were replayed trace
    /// members, given the run's total committed count.
    pub fn committed_reuse_pct(&self, committed: u64) -> f64 {
        percent(self.committed_reused, committed)
    }

    /// Percent of installs among finalized captures.
    pub fn install_pct(&self) -> f64 {
        percent(self.installed, self.captured)
    }
}

/// `part / whole` as a percentage; `0.0` when `whole` is zero.
pub fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// `value / base`; `0.0` when `base` is zero (used for normalised bars).
pub fn ratio(value: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        value / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_basics() {
        assert_eq!(harmonic_mean([2.0, 2.0]), Some(2.0));
        let hm = harmonic_mean([1.0, 2.0]).unwrap();
        assert!((hm - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(std::iter::empty()), None);
        assert_eq!(harmonic_mean([1.0, 0.0]), None);
        assert_eq!(harmonic_mean([1.0, -2.0]), None);
    }

    #[test]
    fn harmonic_is_below_arithmetic() {
        let vals = [1.0, 2.0, 4.0];
        let hm = harmonic_mean(vals).unwrap();
        let am = arithmetic_mean(vals).unwrap();
        let gm = geometric_mean(vals).unwrap();
        assert!(hm < gm && gm < am);
    }

    #[test]
    fn percent_and_ratio_handle_zero() {
        assert_eq!(percent(1, 0), 0.0);
        assert_eq!(percent(25, 100), 25.0);
        assert_eq!(ratio(5.0, 0.0), 0.0);
        assert_eq!(ratio(5.0, 2.0), 2.5);
    }
}
