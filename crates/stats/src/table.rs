//! Fixed-width table and ASCII bar-chart rendering.

use std::fmt::Write as _;

/// A simple fixed-width text table.
///
/// # Examples
///
/// ```
/// use vpir_stats::Table;
/// let mut t = Table::new(&["bench", "speedup"]);
/// t.row(&["go", "1.04"]);
/// t.row(&["gcc", "1.11"]);
/// let s = t.render();
/// assert!(s.contains("bench"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extras are dropped.
    pub fn row(&mut self, cells: &[&str]) -> &mut Table {
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Table {
        let mut row = cells;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header separator.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Horizontal ASCII bars for normalised quantities (the paper's figures).
///
/// # Examples
///
/// ```
/// use vpir_stats::AsciiBars;
/// let mut bars = AsciiBars::new(20, 2.0);
/// bars.bar("go", 1.0);
/// bars.bar("gcc", 1.5);
/// let s = bars.render();
/// assert!(s.contains("go"));
/// assert!(s.contains('#'));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiBars {
    width: usize,
    max: f64,
    bars: Vec<(String, f64)>,
}

impl AsciiBars {
    /// Creates a chart `width` characters wide whose full scale is `max`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `max` is not positive.
    pub fn new(width: usize, max: f64) -> AsciiBars {
        assert!(width > 0 && max > 0.0, "degenerate chart scale");
        AsciiBars {
            width,
            max,
            bars: Vec::new(),
        }
    }

    /// Adds a labelled bar; values are clamped to the scale.
    pub fn bar(&mut self, label: &str, value: f64) -> &mut AsciiBars {
        self.bars.push((label.to_string(), value));
        self
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (label, value) in &self.bars {
            let frac = (value / self.max).clamp(0.0, 1.0);
            let n = (frac * self.width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{label:<label_w$} |{bar:<width$}| {value:.3}",
                bar = "#".repeat(n),
                width = self.width
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_pads_and_truncates() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        let s = t.render();
        assert_eq!(t.len(), 2);
        assert!(!s.contains('3'));
    }

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "v"]);
        t.row(&["long-name", "1"]);
        t.row(&["x", "22"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().map(|l| l.trim_end()).collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn bars_clamp() {
        let mut b = AsciiBars::new(10, 1.0);
        b.bar("over", 5.0);
        let s = b.render();
        assert!(s.contains(&"#".repeat(10)));
        assert!(!s.contains(&"#".repeat(11)));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_width_rejected() {
        AsciiBars::new(0, 1.0);
    }
}
