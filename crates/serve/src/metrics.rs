//! The service's metrics registry: plain `AtomicU64` counters and
//! gauges rendered in the Prometheus text exposition format.
//!
//! No labels, no histograms — every series is a named scalar, emitted
//! in a fixed order so two scrapes of the same state are byte-identical
//! (the same determinism discipline the simulator itself follows).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// All counters and gauges the service exposes on `GET /metrics`.
#[derive(Debug)]
pub struct Metrics {
    start: Instant,
    /// Requests accepted by the HTTP layer (malformed ones included).
    pub requests_total: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_ok: AtomicU64,
    /// Responses with a 4xx status.
    pub responses_client_error: AtomicU64,
    /// Responses with a 5xx status other than 503.
    pub responses_server_error: AtomicU64,
    /// 503 responses (queue full, draining, or connection cap).
    pub responses_rejected: AtomicU64,
    /// Run/matrix requests answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Run/matrix requests that had to simulate.
    pub cache_misses: AtomicU64,
    /// Entries currently held by the result cache (gauge).
    pub cache_entries: AtomicU64,
    /// Jobs waiting in the bounded queue (gauge).
    pub queue_depth: AtomicU64,
    /// Jobs currently executing on a worker (gauge).
    pub in_flight_jobs: AtomicU64,
    /// Simulations that ran to completion (halt or cycle cap).
    pub runs_completed: AtomicU64,
    /// Simulations that ended in a structured `SimError`.
    pub runs_sim_error: AtomicU64,
    /// Jobs whose execution panicked (contained by the worker).
    pub runs_panicked: AtomicU64,
    /// Matrix cells that degraded to failure rows.
    pub matrix_cells_failed: AtomicU64,
    /// Cumulative simulated cycles across all jobs.
    pub sim_cycles_total: AtomicU64,
}

impl Metrics {
    /// A zeroed registry whose uptime clock starts now.
    pub fn new() -> Metrics {
        Metrics {
            start: Instant::now(),
            requests_total: AtomicU64::new(0),
            responses_ok: AtomicU64::new(0),
            responses_client_error: AtomicU64::new(0),
            responses_server_error: AtomicU64::new(0),
            responses_rejected: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_entries: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            in_flight_jobs: AtomicU64::new(0),
            runs_completed: AtomicU64::new(0),
            runs_sim_error: AtomicU64::new(0),
            runs_panicked: AtomicU64::new(0),
            matrix_cells_failed: AtomicU64::new(0),
            sim_cycles_total: AtomicU64::new(0),
        }
    }

    /// Buckets a response status into the right outcome counter.
    pub fn observe_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_ok,
            503 => &self.responses_rejected,
            400..=499 => &self.responses_client_error,
            _ => &self.responses_server_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let uptime = self.start.elapsed().as_secs_f64();
        let cycles = self.sim_cycles_total.load(Ordering::Relaxed);
        let cycles_per_sec = if uptime > 0.0 { cycles as f64 / uptime } else { 0.0 };
        let mut out = String::with_capacity(2048);
        let series: &[(&str, &str, &str, u64)] = &[
            ("vpir_requests_total", "counter", "Requests accepted by the HTTP layer.", self.requests_total.load(Ordering::Relaxed)),
            ("vpir_responses_ok_total", "counter", "Responses with a 2xx status.", self.responses_ok.load(Ordering::Relaxed)),
            ("vpir_responses_client_error_total", "counter", "Responses with a 4xx status.", self.responses_client_error.load(Ordering::Relaxed)),
            ("vpir_responses_server_error_total", "counter", "Responses with a 5xx status other than 503.", self.responses_server_error.load(Ordering::Relaxed)),
            ("vpir_responses_rejected_total", "counter", "503 responses (backpressure or draining).", self.responses_rejected.load(Ordering::Relaxed)),
            ("vpir_cache_hits_total", "counter", "Requests answered from the result cache.", self.cache_hits.load(Ordering::Relaxed)),
            ("vpir_cache_misses_total", "counter", "Requests that had to simulate.", self.cache_misses.load(Ordering::Relaxed)),
            ("vpir_cache_entries", "gauge", "Entries held by the result cache.", self.cache_entries.load(Ordering::Relaxed)),
            ("vpir_queue_depth", "gauge", "Jobs waiting in the bounded queue.", self.queue_depth.load(Ordering::Relaxed)),
            ("vpir_in_flight_jobs", "gauge", "Jobs currently executing on a worker.", self.in_flight_jobs.load(Ordering::Relaxed)),
            ("vpir_runs_completed_total", "counter", "Simulations that ran to completion.", self.runs_completed.load(Ordering::Relaxed)),
            ("vpir_runs_sim_error_total", "counter", "Simulations that ended in a structured SimError.", self.runs_sim_error.load(Ordering::Relaxed)),
            ("vpir_runs_panicked_total", "counter", "Jobs whose execution panicked (contained).", self.runs_panicked.load(Ordering::Relaxed)),
            ("vpir_matrix_cells_failed_total", "counter", "Matrix cells that degraded to failure rows.", self.matrix_cells_failed.load(Ordering::Relaxed)),
            ("vpir_sim_cycles_total", "counter", "Cumulative simulated cycles across all jobs.", cycles),
        ];
        for (name, kind, help, value) in series {
            push_series(&mut out, name, kind, help, &value.to_string());
        }
        push_series(
            &mut out,
            "vpir_sim_cycles_per_second",
            "gauge",
            "Simulated cycles per wall-clock second since start.",
            &format!("{cycles_per_sec:.3}"),
        );
        push_series(
            &mut out,
            "vpir_uptime_seconds",
            "gauge",
            "Seconds since the service started.",
            &format!("{uptime:.3}"),
        );
        out
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

fn push_series(out: &mut String, name: &str, kind: &str, help: &str, value: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
    out.push_str(name);
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_every_series_with_help_and_type() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        m.observe_status(200);
        m.observe_status(404);
        m.observe_status(503);
        m.observe_status(500);
        let text = m.render();
        assert!(text.contains("vpir_requests_total 3"), "{text}");
        assert!(text.contains("vpir_cache_hits_total 1"), "{text}");
        assert!(text.contains("vpir_responses_ok_total 1"), "{text}");
        assert!(text.contains("vpir_responses_client_error_total 1"), "{text}");
        assert!(text.contains("vpir_responses_rejected_total 1"), "{text}");
        assert!(text.contains("vpir_responses_server_error_total 1"), "{text}");
        assert!(text.contains("# TYPE vpir_queue_depth gauge"), "{text}");
        assert!(text.contains("# HELP vpir_sim_cycles_per_second "), "{text}");
        // One HELP and one TYPE line per series, every series present.
        assert_eq!(text.matches("# HELP ").count(), 17);
        assert_eq!(text.matches("# TYPE ").count(), 17);
    }
}
