//! The service's metrics registry: plain `AtomicU64` counters and
//! gauges plus per-endpoint latency histograms, rendered in the
//! Prometheus text exposition format.
//!
//! No labels — every series is a named scalar, emitted in a fixed
//! order so two scrapes of the same state are byte-identical (the same
//! determinism discipline the simulator itself follows). Latency
//! percentiles come from the log-bucketed [`Histogram`]s in
//! [`crate::histo`], whose atomics (like every counter here) follow
//! the telemetry-`Relaxed` half of the ordering contract documented in
//! [`crate::pool`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::histo::Histogram;

/// Load-shedding state derived from queue-depth watermarks; exported
/// on `/metrics` as `vpir_shed_state` and consulted by the router for
/// expensive endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedState {
    /// Below the shed watermark: everything is served.
    Healthy = 0,
    /// At or past the watermark: expensive endpoints are refused with
    /// `503 + Retry-After`; cached hits and cheap endpoints still work.
    Shedding = 1,
    /// The queue is full: every miss is refused.
    Saturated = 2,
}

impl ShedState {
    /// The watermark table: healthy below half the queue capacity,
    /// shedding from half up, saturated when completely full.
    pub fn for_depth(depth: usize, capacity: usize) -> ShedState {
        if depth >= capacity {
            ShedState::Saturated
        } else if depth * 2 >= capacity {
            ShedState::Shedding
        } else {
            ShedState::Healthy
        }
    }

    /// The state's name, as rendered in `/healthz`.
    pub fn name(self) -> &'static str {
        match self {
            ShedState::Healthy => "healthy",
            ShedState::Shedding => "shedding",
            ShedState::Saturated => "saturated",
        }
    }
}

/// All counters, gauges, and histograms the service exposes on
/// `GET /metrics`.
#[derive(Debug)]
pub struct Metrics {
    start: Instant,
    /// Connections accepted by the listener.
    pub connections_total: AtomicU64,
    /// Requests accepted by the HTTP layer (malformed ones included).
    pub requests_total: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_ok: AtomicU64,
    /// Responses with a 4xx status.
    pub responses_client_error: AtomicU64,
    /// Responses with a 5xx status other than 503.
    pub responses_server_error: AtomicU64,
    /// 503 responses (queue full, shedding, draining, connection cap).
    pub responses_rejected: AtomicU64,
    /// Requests answered from the in-memory cache tier.
    pub cache_hits: AtomicU64,
    /// Requests answered from the disk cache tier after a restart or
    /// memory eviction.
    pub cache_hits_disk: AtomicU64,
    /// Run/matrix requests that had to simulate.
    pub cache_misses: AtomicU64,
    /// Entries currently held by the in-memory cache tier (gauge).
    pub cache_entries: AtomicU64,
    /// Body bytes currently held by the in-memory cache tier (gauge).
    pub cache_mem_bytes: AtomicU64,
    /// Entries evicted from the in-memory LRU since startup.
    pub cache_entries_evicted: AtomicU64,
    /// Entries currently indexed by the disk store (gauge).
    pub store_entries: AtomicU64,
    /// File bytes currently indexed by the disk store (gauge).
    pub store_bytes: AtomicU64,
    /// Disk entries evicted to stay under the byte budget.
    pub store_evictions: AtomicU64,
    /// Disk entries quarantined after failing a frame check.
    pub store_quarantined: AtomicU64,
    /// Jobs waiting in the bounded queue (gauge).
    pub queue_depth: AtomicU64,
    /// Jobs currently executing on a worker (gauge).
    pub in_flight_jobs: AtomicU64,
    /// Current load-shedding state: 0 healthy, 1 shedding, 2 saturated.
    pub shed_state: AtomicU64,
    /// Expensive requests refused because the service was shedding.
    pub requests_shed: AtomicU64,
    /// Requests answered 504 because the simulation outran the
    /// per-request deadline.
    pub deadline_exceeded: AtomicU64,
    /// Connections answered 408 because the client stalled mid-request.
    pub slow_client_timeouts: AtomicU64,
    /// Simulations that ran to completion (halt or cycle cap).
    pub runs_completed: AtomicU64,
    /// Simulations that ended in a structured `SimError`.
    pub runs_sim_error: AtomicU64,
    /// Jobs whose execution panicked (contained by the worker).
    pub runs_panicked: AtomicU64,
    /// Matrix cells that degraded to failure rows.
    pub matrix_cells_failed: AtomicU64,
    /// Cumulative simulated cycles across all jobs.
    pub sim_cycles_total: AtomicU64,
    /// Latency of `/v1/run` requests, microseconds.
    pub latency_run: Histogram,
    /// Latency of `/v1/matrix` requests, microseconds.
    pub latency_matrix: Histogram,
    /// Latency of `/v1/analyze` requests, microseconds.
    pub latency_analyze: Histogram,
    /// Latency of every other request (health, metrics, errors).
    pub latency_other: Histogram,
}

impl Metrics {
    /// A zeroed registry whose uptime clock starts now.
    pub fn new() -> Metrics {
        Metrics {
            start: Instant::now(),
            connections_total: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            responses_ok: AtomicU64::new(0),
            responses_client_error: AtomicU64::new(0),
            responses_server_error: AtomicU64::new(0),
            responses_rejected: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_hits_disk: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_entries: AtomicU64::new(0),
            cache_mem_bytes: AtomicU64::new(0),
            cache_entries_evicted: AtomicU64::new(0),
            store_entries: AtomicU64::new(0),
            store_bytes: AtomicU64::new(0),
            store_evictions: AtomicU64::new(0),
            store_quarantined: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            in_flight_jobs: AtomicU64::new(0),
            shed_state: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            slow_client_timeouts: AtomicU64::new(0),
            runs_completed: AtomicU64::new(0),
            runs_sim_error: AtomicU64::new(0),
            runs_panicked: AtomicU64::new(0),
            matrix_cells_failed: AtomicU64::new(0),
            sim_cycles_total: AtomicU64::new(0),
            latency_run: Histogram::new(),
            latency_matrix: Histogram::new(),
            latency_analyze: Histogram::new(),
            latency_other: Histogram::new(),
        }
    }

    /// Buckets a response status into the right outcome counter.
    pub fn observe_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_ok,
            503 => &self.responses_rejected,
            400..=499 => &self.responses_client_error,
            _ => &self.responses_server_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The latency histogram for a request path.
    pub fn latency_for(&self, path: &str) -> &Histogram {
        match path {
            "/v1/run" => &self.latency_run,
            "/v1/matrix" => &self.latency_matrix,
            "/v1/analyze" => &self.latency_analyze,
            _ => &self.latency_other,
        }
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let uptime = self.start.elapsed().as_secs_f64();
        let cycles = self.sim_cycles_total.load(Ordering::Relaxed);
        let cycles_per_sec = if uptime > 0.0 { cycles as f64 / uptime } else { 0.0 };
        let mut out = String::with_capacity(8192);
        let series: &[(&str, &str, &str, u64)] = &[
            ("vpir_connections_total", "counter", "Connections accepted by the listener.", self.connections_total.load(Ordering::Relaxed)),
            ("vpir_requests_total", "counter", "Requests accepted by the HTTP layer.", self.requests_total.load(Ordering::Relaxed)),
            ("vpir_responses_ok_total", "counter", "Responses with a 2xx status.", self.responses_ok.load(Ordering::Relaxed)),
            ("vpir_responses_client_error_total", "counter", "Responses with a 4xx status.", self.responses_client_error.load(Ordering::Relaxed)),
            ("vpir_responses_server_error_total", "counter", "Responses with a 5xx status other than 503.", self.responses_server_error.load(Ordering::Relaxed)),
            ("vpir_responses_rejected_total", "counter", "503 responses (backpressure, shedding, or draining).", self.responses_rejected.load(Ordering::Relaxed)),
            ("vpir_cache_hits_total", "counter", "Requests answered from the in-memory cache tier.", self.cache_hits.load(Ordering::Relaxed)),
            ("vpir_cache_hits_disk_total", "counter", "Requests answered from the disk cache tier.", self.cache_hits_disk.load(Ordering::Relaxed)),
            ("vpir_cache_misses_total", "counter", "Requests that had to simulate.", self.cache_misses.load(Ordering::Relaxed)),
            ("vpir_cache_entries", "gauge", "Entries held by the in-memory cache tier.", self.cache_entries.load(Ordering::Relaxed)),
            ("vpir_cache_mem_bytes", "gauge", "Body bytes held by the in-memory cache tier.", self.cache_mem_bytes.load(Ordering::Relaxed)),
            ("vpir_cache_entries_evicted_total", "counter", "Entries evicted from the in-memory LRU.", self.cache_entries_evicted.load(Ordering::Relaxed)),
            ("vpir_store_entries", "gauge", "Entries indexed by the disk store.", self.store_entries.load(Ordering::Relaxed)),
            ("vpir_store_bytes", "gauge", "File bytes indexed by the disk store.", self.store_bytes.load(Ordering::Relaxed)),
            ("vpir_store_evictions_total", "counter", "Disk entries evicted for the byte budget.", self.store_evictions.load(Ordering::Relaxed)),
            ("vpir_store_quarantined_total", "counter", "Disk entries quarantined by a failed frame check.", self.store_quarantined.load(Ordering::Relaxed)),
            ("vpir_queue_depth", "gauge", "Jobs waiting in the bounded queue.", self.queue_depth.load(Ordering::Relaxed)),
            ("vpir_in_flight_jobs", "gauge", "Jobs currently executing on a worker.", self.in_flight_jobs.load(Ordering::Relaxed)),
            ("vpir_shed_state", "gauge", "Load shedding state: 0 healthy, 1 shedding, 2 saturated.", self.shed_state.load(Ordering::Relaxed)),
            ("vpir_requests_shed_total", "counter", "Expensive requests refused while shedding.", self.requests_shed.load(Ordering::Relaxed)),
            ("vpir_deadline_exceeded_total", "counter", "Requests answered 504 past the simulation deadline.", self.deadline_exceeded.load(Ordering::Relaxed)),
            ("vpir_slow_client_timeouts_total", "counter", "Connections answered 408 for stalling mid-request.", self.slow_client_timeouts.load(Ordering::Relaxed)),
            ("vpir_runs_completed_total", "counter", "Simulations that ran to completion.", self.runs_completed.load(Ordering::Relaxed)),
            ("vpir_runs_sim_error_total", "counter", "Simulations that ended in a structured SimError.", self.runs_sim_error.load(Ordering::Relaxed)),
            ("vpir_runs_panicked_total", "counter", "Jobs whose execution panicked (contained).", self.runs_panicked.load(Ordering::Relaxed)),
            ("vpir_matrix_cells_failed_total", "counter", "Matrix cells that degraded to failure rows.", self.matrix_cells_failed.load(Ordering::Relaxed)),
            ("vpir_sim_cycles_total", "counter", "Cumulative simulated cycles across all jobs.", cycles),
        ];
        for (name, kind, help, value) in series {
            push_series(&mut out, name, kind, help, &value.to_string());
        }
        let endpoints: &[(&str, &Histogram)] = &[
            ("run", &self.latency_run),
            ("matrix", &self.latency_matrix),
            ("analyze", &self.latency_analyze),
            ("other", &self.latency_other),
        ];
        for (name, histo) in endpoints {
            let quantiles: &[(&str, u64)] = &[
                ("count", histo.count()),
                ("p50_micros", histo.p50()),
                ("p99_micros", histo.p99()),
                ("p999_micros", histo.p999()),
            ];
            for (suffix, value) in quantiles {
                let kind = if *suffix == "count" { "counter" } else { "gauge" };
                push_series(
                    &mut out,
                    &format!("vpir_latency_{name}_{suffix}"),
                    kind,
                    &format!("Latency of {name} requests ({suffix})."),
                    &value.to_string(),
                );
            }
        }
        push_series(
            &mut out,
            "vpir_sim_cycles_per_second",
            "gauge",
            "Simulated cycles per wall-clock second since start.",
            &format!("{cycles_per_sec:.3}"),
        );
        push_series(
            &mut out,
            "vpir_uptime_seconds",
            "gauge",
            "Seconds since the service started.",
            &format!("{uptime:.3}"),
        );
        out
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

fn push_series(out: &mut String, name: &str, kind: &str, help: &str, value: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
    out.push_str(name);
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_every_series_with_help_and_type() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        m.observe_status(200);
        m.observe_status(404);
        m.observe_status(503);
        m.observe_status(500);
        m.latency_for("/v1/run").record(300);
        m.latency_for("/nope").record(5);
        let text = m.render();
        assert!(text.contains("vpir_requests_total 3"), "{text}");
        assert!(text.contains("vpir_cache_hits_total 1"), "{text}");
        assert!(text.contains("vpir_responses_ok_total 1"), "{text}");
        assert!(text.contains("vpir_responses_client_error_total 1"), "{text}");
        assert!(text.contains("vpir_responses_rejected_total 1"), "{text}");
        assert!(text.contains("vpir_responses_server_error_total 1"), "{text}");
        assert!(text.contains("# TYPE vpir_queue_depth gauge"), "{text}");
        assert!(text.contains("# TYPE vpir_shed_state gauge"), "{text}");
        assert!(text.contains("vpir_store_quarantined_total 0"), "{text}");
        assert!(text.contains("vpir_latency_run_count 1"), "{text}");
        assert!(text.contains("vpir_latency_run_p50_micros 511"), "{text}");
        assert!(text.contains("vpir_latency_other_p99_micros 7"), "{text}");
        assert!(text.contains("# HELP vpir_sim_cycles_per_second "), "{text}");
        // One HELP and one TYPE line per series, every series present:
        // 27 scalars + 4 endpoints x 4 histogram series + 2 derived.
        assert_eq!(text.matches("# HELP ").count(), 45);
        assert_eq!(text.matches("# TYPE ").count(), 45);
    }

    #[test]
    fn shed_watermark_table() {
        // (depth, capacity, expected)
        let table: &[(usize, usize, ShedState)] = &[
            (0, 8, ShedState::Healthy),
            (3, 8, ShedState::Healthy),
            (4, 8, ShedState::Shedding),
            (7, 8, ShedState::Shedding),
            (8, 8, ShedState::Saturated),
            (9, 8, ShedState::Saturated),
            (0, 1, ShedState::Healthy),
            (1, 1, ShedState::Saturated),
            (0, 2, ShedState::Healthy),
            (1, 2, ShedState::Shedding),
            (2, 2, ShedState::Saturated),
            (16, 32, ShedState::Shedding),
            (15, 32, ShedState::Healthy),
        ];
        for (depth, capacity, want) in table {
            assert_eq!(
                ShedState::for_depth(*depth, *capacity),
                *want,
                "depth {depth} capacity {capacity}"
            );
        }
        assert_eq!(ShedState::Healthy.name(), "healthy");
        assert_eq!(ShedState::Shedding.name(), "shedding");
        assert_eq!(ShedState::Saturated.name(), "saturated");
        assert!(ShedState::Healthy < ShedState::Shedding);
        assert!(ShedState::Shedding < ShedState::Saturated);
    }
}
