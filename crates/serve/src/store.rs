//! The disk tier of the content-addressed result cache.
//!
//! Every entry is one file under the configured cache directory,
//! written atomically (temp file + fsync + rename) and framed so that
//! a partial or corrupted file is *detected*, never served:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "VPSC"
//!      4     4  format version (u32 LE, currently 1)
//!      8     8  cache key (u64 LE) — must match the file name
//!     16     8  write sequence (u64 LE) — rebuilds LRU order on open
//!     24     8  body length in bytes (u64 LE)
//!     32     8  FNV-1a 64 checksum of the body (u64 LE)
//!     40     …  body bytes
//! ```
//!
//! A record that fails any check (magic, version, key, length,
//! checksum) is **quarantined**: renamed to `<name>.quarantine`,
//! dropped from the index, and counted — the caller sees a plain miss
//! and re-simulates, so corruption can cost latency but never
//! correctness. Crash safety follows from the write protocol: a
//! `kill -9` mid-write leaves only a `*.tmp` file (deleted on the next
//! open), so at most the in-flight entry is lost and every previously
//! completed entry is served back byte-identically after restart.
//!
//! Total disk usage is bounded: inserts evict least-recently-used
//! entries (by the persisted write sequence, refreshed on every hit)
//! until the configured byte budget is met.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::cache::fnv1a64;

const MAGIC: &[u8; 4] = b"VPSC";
const VERSION: u32 = 1;
/// Header bytes before the body.
pub const HEADER_BYTES: u64 = 40;

/// Deterministic fault injection for the chaos tests and the CI chaos
/// step: the *next* entry written to disk is damaged after the atomic
/// rename completes, exactly as latent media corruption would present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// Flip one byte in the middle of the stored body.
    CorruptNext,
    /// Truncate the stored file to half its length.
    TruncateNext,
}

impl StoreFault {
    /// Parses the `--inject-fault` vocabulary for the service.
    pub fn parse(spec: &str) -> Result<StoreFault, String> {
        match spec {
            "corrupt-store" => Ok(StoreFault::CorruptNext),
            "truncate-store" => Ok(StoreFault::TruncateNext),
            other => Err(format!(
                "unknown serve fault `{other}` (valid: corrupt-store, truncate-store)"
            )),
        }
    }
}

/// Point-in-time store statistics for `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries currently indexed.
    pub entries: u64,
    /// Total file bytes currently indexed (headers included).
    pub bytes: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Entries quarantined after failing a frame check.
    pub quarantined: u64,
}

struct DiskMeta {
    seq: u64,
    file_bytes: u64,
}

struct StoreInner {
    /// key → metadata for every well-framed entry on disk.
    entries: BTreeMap<u64, DiskMeta>,
    /// recency sequence → key (ascending = least recently used first).
    recency: BTreeMap<u64, u64>,
    next_seq: u64,
    total_bytes: u64,
    evictions: u64,
    quarantined: u64,
    fault: Option<StoreFault>,
}

/// A bounded, crash-safe, content-addressed store of rendered response
/// bodies. All operations are infallible from the caller's view: any
/// I/O or framing problem degrades to a miss (plus a counter), because
/// the store is a cache, not a system of record.
pub struct DiskStore {
    dir: PathBuf,
    max_bytes: u64,
    inner: Mutex<StoreInner>,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("DiskStore")
            .field("dir", &self.dir)
            .field("max_bytes", &self.max_bytes)
            .field("stats", &stats)
            .finish()
    }
}

impl DiskStore {
    /// Opens (creating if needed) the store under `dir`, rebuilding the
    /// index from the entry files already present: leftover `*.tmp`
    /// files from an interrupted write are deleted, files with an
    /// unreadable or inconsistent header are quarantined immediately,
    /// and LRU order is restored from each entry's persisted sequence.
    pub fn open(
        dir: &Path,
        max_bytes: u64,
        fault: Option<StoreFault>,
    ) -> std::io::Result<DiskStore> {
        fs::create_dir_all(dir)?;
        let mut inner = StoreInner {
            entries: BTreeMap::new(),
            recency: BTreeMap::new(),
            next_seq: 0,
            total_bytes: 0,
            evictions: 0,
            quarantined: 0,
            fault,
        };
        for item in fs::read_dir(dir)? {
            let Ok(item) = item else { continue };
            let path = item.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                // A write was interrupted before its atomic rename; the
                // entry never existed as far as readers are concerned.
                let _ = fs::remove_file(&path);
                continue;
            }
            if !name.ends_with(".vpc") {
                continue;
            }
            match read_header(&path) {
                Some(header) if header_consistent(&header, name, &path) => {
                    let file_bytes = HEADER_BYTES + header.body_len;
                    let mut seq = header.seq;
                    while inner.recency.contains_key(&seq) {
                        seq += 1;
                    }
                    inner.recency.insert(seq, header.key);
                    inner.entries.insert(header.key, DiskMeta { seq, file_bytes });
                    inner.total_bytes += file_bytes;
                    inner.next_seq = inner.next_seq.max(seq + 1);
                }
                _ => {
                    quarantine_file(&path);
                    inner.quarantined += 1;
                }
            }
        }
        let store = DiskStore { dir: dir.to_path_buf(), max_bytes, inner: Mutex::new(inner) };
        // An older run may have written more than the current budget.
        store.with_inner(|inner, dir| evict_to_fit(inner, dir, max_bytes, None));
        Ok(store)
    }

    /// Loads the body stored under `key`, verifying the full frame
    /// (magic, version, key, length, checksum). Any failure quarantines
    /// the entry and reads as a miss.
    pub fn load(&self, key: u64) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        self.with_inner(|inner, _| {
            if !inner.entries.contains_key(&key) {
                return None;
            }
            match read_verified_body(&path, key) {
                Some(body) => {
                    touch(inner, key);
                    Some(body)
                }
                None => {
                    quarantine_file(&path);
                    inner.quarantined += 1;
                    remove_from_index(inner, key);
                    None
                }
            }
        })
    }

    /// Writes `body` under `key` atomically, then evicts LRU entries
    /// until the store fits its byte budget again. Failures are
    /// swallowed (the store is a cache); an oversized body is simply
    /// not persisted.
    pub fn insert(&self, key: u64, body: &[u8]) {
        let file_bytes = HEADER_BYTES + body.len() as u64;
        if file_bytes > self.max_bytes {
            return;
        }
        let final_path = self.entry_path(key);
        let tmp_path = self.dir.join(format!("{key:016x}.vpc.tmp"));
        self.with_inner(|inner, dir| {
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let record = frame(key, seq, body);
            if write_atomic(&tmp_path, &final_path, dir, &record).is_err() {
                let _ = fs::remove_file(&tmp_path);
                return;
            }
            if let Some(fault) = inner.fault.take() {
                apply_fault(&final_path, fault, body.len());
            }
            if let Some(old) = inner.entries.remove(&key) {
                inner.recency.remove(&old.seq);
                inner.total_bytes = inner.total_bytes.saturating_sub(old.file_bytes);
            }
            inner.entries.insert(key, DiskMeta { seq, file_bytes });
            inner.recency.insert(seq, key);
            inner.total_bytes += file_bytes;
            evict_to_fit(inner, dir, self.max_bytes, Some(seq));
        });
    }

    /// Current statistics (entries, bytes, evictions, quarantined).
    pub fn stats(&self) -> StoreStats {
        self.with_inner(|inner, _| StoreStats {
            entries: inner.entries.len() as u64,
            bytes: inner.total_bytes,
            evictions: inner.evictions,
            quarantined: inner.quarantined,
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.vpc"))
    }

    fn with_inner<T>(&self, f: impl FnOnce(&mut StoreInner, &Path) -> T) -> T {
        // Nothing run under this lock can panic (all file errors are
        // handled), but recover from poisoning anyway.
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard, &self.dir)
    }
}

/// Refreshes `key`'s recency to now.
fn touch(inner: &mut StoreInner, key: u64) {
    let Some(meta) = inner.entries.get_mut(&key) else { return };
    let old_seq = meta.seq;
    let seq = inner.next_seq;
    inner.next_seq += 1;
    meta.seq = seq;
    inner.recency.remove(&old_seq);
    inner.recency.insert(seq, key);
}

fn remove_from_index(inner: &mut StoreInner, key: u64) {
    if let Some(meta) = inner.entries.remove(&key) {
        inner.recency.remove(&meta.seq);
        inner.total_bytes = inner.total_bytes.saturating_sub(meta.file_bytes);
    }
}

/// Deletes least-recently-used entries until the budget is met.
/// `keep_seq` protects the entry just inserted from evicting itself.
fn evict_to_fit(inner: &mut StoreInner, dir: &Path, max_bytes: u64, keep_seq: Option<u64>) {
    while inner.total_bytes > max_bytes {
        let Some((&seq, &key)) = inner.recency.iter().next() else { break };
        if Some(seq) == keep_seq {
            break;
        }
        inner.recency.remove(&seq);
        if let Some(meta) = inner.entries.remove(&key) {
            inner.total_bytes = inner.total_bytes.saturating_sub(meta.file_bytes);
        }
        let _ = fs::remove_file(dir.join(format!("{key:016x}.vpc")));
        inner.evictions += 1;
    }
}

struct Header {
    key: u64,
    seq: u64,
    body_len: u64,
    checksum: u64,
}

fn frame(key: u64, seq: u64, body: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(HEADER_BYTES as usize + body.len());
    record.extend_from_slice(MAGIC);
    record.extend_from_slice(&VERSION.to_le_bytes());
    record.extend_from_slice(&key.to_le_bytes());
    record.extend_from_slice(&seq.to_le_bytes());
    record.extend_from_slice(&(body.len() as u64).to_le_bytes());
    record.extend_from_slice(&fnv1a64(&[body]).to_le_bytes());
    record.extend_from_slice(body);
    record
}

fn parse_header(bytes: &[u8]) -> Option<Header> {
    if bytes.get(..4) != Some(MAGIC.as_slice()) {
        return None;
    }
    let version = u32::from_le_bytes(bytes.get(4..8)?.try_into().ok()?);
    if version != VERSION {
        return None;
    }
    Some(Header {
        key: u64::from_le_bytes(bytes.get(8..16)?.try_into().ok()?),
        seq: u64::from_le_bytes(bytes.get(16..24)?.try_into().ok()?),
        body_len: u64::from_le_bytes(bytes.get(24..32)?.try_into().ok()?),
        checksum: u64::from_le_bytes(bytes.get(32..40)?.try_into().ok()?),
    })
}

/// Reads and parses just the header of an entry file.
fn read_header(path: &Path) -> Option<Header> {
    use std::io::Read as _;
    let mut file = fs::File::open(path).ok()?;
    let mut head = [0u8; HEADER_BYTES as usize];
    file.read_exact(&mut head).ok()?;
    parse_header(&head)
}

/// Startup check: the header must name this file and declare exactly
/// the bytes the file holds (a truncated tail fails here).
fn header_consistent(header: &Header, name: &str, path: &Path) -> bool {
    let named_key = name
        .strip_suffix(".vpc")
        .and_then(|stem| u64::from_str_radix(stem, 16).ok());
    let Ok(meta) = fs::metadata(path) else { return false };
    named_key == Some(header.key) && meta.len() == HEADER_BYTES + header.body_len
}

/// Full read + verification of one entry: every frame field is checked
/// and the body checksum recomputed before a single byte is trusted.
fn read_verified_body(path: &Path, key: u64) -> Option<Vec<u8>> {
    let bytes = fs::read(path).ok()?;
    let header = parse_header(&bytes)?;
    if header.key != key {
        return None;
    }
    let body = bytes.get(HEADER_BYTES as usize..)?;
    if body.len() as u64 != header.body_len {
        return None;
    }
    if fnv1a64(&[body]) != header.checksum {
        return None;
    }
    Some(body.to_vec())
}

/// temp file + write + fsync + rename (+ best-effort directory fsync):
/// the entry either exists completely or not at all.
fn write_atomic(
    tmp_path: &Path,
    final_path: &Path,
    dir: &Path,
    record: &[u8],
) -> std::io::Result<()> {
    let mut file = fs::File::create(tmp_path)?;
    file.write_all(record)?;
    file.sync_all()?;
    drop(file);
    fs::rename(tmp_path, final_path)?;
    // Persist the rename itself. Failure here only widens the crash
    // window back to "entry may be lost", which is already tolerated.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn quarantine_file(path: &Path) {
    let mut quarantined = path.as_os_str().to_os_string();
    quarantined.push(".quarantine");
    if fs::rename(path, &quarantined).is_err() {
        // Renaming failed (e.g. the file vanished); removing is just as
        // good — the only requirement is that it stops being an entry.
        let _ = fs::remove_file(path);
    }
}

fn apply_fault(path: &Path, fault: StoreFault, body_len: usize) {
    match fault {
        StoreFault::CorruptNext => {
            let Ok(mut bytes) = fs::read(path) else { return };
            let at = HEADER_BYTES as usize + body_len / 2;
            if let Some(byte) = bytes.get_mut(at) {
                *byte ^= 0x40;
                let _ = fs::write(path, &bytes);
            }
        }
        StoreFault::TruncateNext => {
            let Ok(bytes) = fs::read(path) else { return };
            let keep = bytes.len() / 2;
            let _ = fs::write(path, bytes.get(..keep).unwrap_or(&[]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/scratch/store")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_across_a_reopen() {
        let dir = scratch("reopen");
        let store = DiskStore::open(&dir, 1 << 20, None).expect("open");
        store.insert(7, b"hello world");
        store.insert(9, b"second entry");
        assert_eq!(store.load(7).as_deref(), Some(b"hello world".as_slice()));
        drop(store);

        let store = DiskStore::open(&dir, 1 << 20, None).expect("reopen");
        assert_eq!(store.stats().entries, 2);
        assert_eq!(store.load(7).as_deref(), Some(b"hello world".as_slice()));
        assert_eq!(store.load(9).as_deref(), Some(b"second entry".as_slice()));
        assert_eq!(store.load(8), None, "unknown key is a miss");
    }

    #[test]
    fn corrupted_and_truncated_entries_are_quarantined_as_misses() {
        let dir = scratch("quarantine");
        let store = DiskStore::open(&dir, 1 << 20, Some(StoreFault::CorruptNext)).expect("open");
        store.insert(1, b"will be corrupted");
        store.insert(2, b"stays clean");
        // The corrupted entry fails its checksum on load — a miss, and
        // the file is quarantined so it is never re-read.
        assert_eq!(store.load(1), None);
        assert_eq!(store.stats().quarantined, 1);
        assert_eq!(store.load(1), None, "stays a miss after quarantine");
        assert_eq!(store.load(2).as_deref(), Some(b"stays clean".as_slice()));

        // Truncation is caught at reopen time by the length check.
        let store = DiskStore::open(&dir, 1 << 20, Some(StoreFault::TruncateNext)).expect("open");
        store.insert(3, b"will be truncated to half");
        drop(store);
        let store = DiskStore::open(&dir, 1 << 20, None).expect("reopen");
        assert_eq!(store.load(3), None);
        assert_eq!(store.stats().quarantined, 1, "fresh instance counts its own quarantine");
        assert!(
            dir.read_dir()
                .expect("dir")
                .filter_map(|e| e.ok())
                .any(|e| e.file_name().to_string_lossy().ends_with(".quarantine")),
            "quarantined file is renamed, not deleted"
        );
    }

    #[test]
    fn leftover_tmp_files_are_removed_on_open() {
        let dir = scratch("tmp-cleanup");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("00000000000000aa.vpc.tmp"), b"partial write").expect("tmp");
        let store = DiskStore::open(&dir, 1 << 20, None).expect("open");
        assert_eq!(store.stats().entries, 0);
        assert!(!dir.join("00000000000000aa.vpc.tmp").exists());
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_first() {
        let dir = scratch("evict");
        // Budget fits two ~(40+10)-byte entries but not three.
        let store = DiskStore::open(&dir, 110, None).expect("open");
        store.insert(1, b"aaaaaaaaaa");
        store.insert(2, b"bbbbbbbbbb");
        // Touch 1 so 2 becomes the LRU victim.
        assert!(store.load(1).is_some());
        store.insert(3, b"cccccccccc");
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(store.load(2), None, "LRU entry was evicted");
        assert!(store.load(1).is_some());
        assert!(store.load(3).is_some());
        assert!(stats.bytes <= 110);

        // Oversized bodies are skipped outright, not stored then evicted.
        store.insert(4, &[b'x'; 200]);
        assert_eq!(store.load(4), None);
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn reopen_honors_a_shrunken_budget() {
        let dir = scratch("shrink");
        let store = DiskStore::open(&dir, 1 << 20, None).expect("open");
        store.insert(1, b"aaaaaaaaaa");
        store.insert(2, b"bbbbbbbbbb");
        drop(store);
        let store = DiskStore::open(&dir, 60, None).expect("reopen smaller");
        let stats = store.stats();
        assert_eq!(stats.entries, 1, "oldest entry evicted to fit the new budget");
        assert!(store.load(2).is_some(), "newest entry survives");
    }
}
