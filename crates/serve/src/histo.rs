//! u64 log-bucketed latency histograms for `/metrics` and the loadgen
//! report — integer-only, like every other number the workspace emits.
//!
//! A recorded value `v` (microseconds) lands in bucket
//! `floor(log2(v)) + 1` (bucket 0 holds `v == 0`), so bucket `i >= 1`
//! covers `[2^(i-1), 2^i)` and 64 buckets span the full u64 range.
//! Percentiles are reported as the *upper bound* of the bucket holding
//! the requested rank (`2^i - 1`): a deterministic, allocation-free
//! answer whose error is bounded by the bucket's width — exactly the
//! trade the paper's own log-scaled tables make.
//!
//! # Atomic-ordering contract
//!
//! Every atomic here is **monotonic telemetry**, written with `Relaxed`
//! `fetch_add`/`fetch_max` and read only by `/metrics` scrapes and the
//! end-of-run loadgen report. No control-flow decision is ever made on
//! these values (the R9 concurrency pass enforces that), so cross-
//! thread ordering buys nothing; RMW atomicity alone guarantees no
//! lost increments. A scrape may observe `count` a beat ahead of the
//! bucket sums — [`Histogram::percentile`] tolerates that by falling
//! back to the highest non-empty bucket.

use std::sync::atomic::{AtomicU64, Ordering};

use vpir_jsonlite::JsonObj;

const BUCKETS: usize = 64;

/// A fixed-size, lock-free histogram of u64 samples (microseconds by
/// convention, but the math is unit-agnostic).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index for a value.
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// The inclusive upper bound reported for a bucket.
    fn upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 63 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        if let Some(bucket) = self.buckets.get(Self::bucket_of(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at quantile `num/den` (e.g. `percentile(999, 1000)`
    /// is p99.9), reported as the holding bucket's upper bound.
    /// Integer math throughout; returns 0 for an empty histogram.
    pub fn percentile(&self, num: u64, den: u64) -> u64 {
        let count = self.count();
        if count == 0 || den == 0 {
            return 0;
        }
        // ceil(count * num / den), clamped into [1, count].
        let rank = count
            .saturating_mul(num)
            .saturating_add(den - 1)
            .checked_div(den)
            .unwrap_or(count)
            .clamp(1, count);
        let mut cumulative = 0u64;
        let mut last_nonempty = 0usize;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                last_nonempty = i;
            }
            cumulative = cumulative.saturating_add(n);
            if cumulative >= rank {
                return Self::upper_bound(i);
            }
        }
        // `count` raced ahead of the bucket writes: answer from the
        // highest bucket that has data rather than underreporting.
        Self::upper_bound(last_nonempty)
    }

    /// p50 of the recorded samples.
    pub fn p50(&self) -> u64 {
        self.percentile(50, 100)
    }

    /// p99 of the recorded samples.
    pub fn p99(&self) -> u64 {
        self.percentile(99, 100)
    }

    /// p99.9 of the recorded samples.
    pub fn p999(&self) -> u64 {
        self.percentile(999, 1000)
    }

    /// The histogram summary as a jsonlite object
    /// (`count`/`p50_us`/`p99_us`/`p999_us`/`max_us`, all u64).
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .u("count", self.count())
            .u("p50_us", self.p50())
            .u("p99_us", self.p99())
            .u("p999_us", self.p999())
            .u("max_us", self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_uniform_distribution_has_the_expected_bucket_percentiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        // rank 500 falls in bucket [256, 512) whose upper bound is 511.
        assert_eq!(h.p50(), 511);
        // rank 990 and rank 1000 both fall in bucket [512, 1024).
        assert_eq!(h.p99(), 1023);
        assert_eq!(h.p999(), 1023);
    }

    #[test]
    fn skewed_distribution_separates_the_tail() {
        let h = Histogram::new();
        // 990 fast samples at 100us, 10 slow ones at 1_000_000us.
        for _ in 0..990 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.p50(), 127, "bucket [64,128) holds the fast mass");
        assert_eq!(h.p99(), 127, "rank 990 is still a fast sample");
        assert_eq!(h.p999(), (1u64 << 20) - 1, "the p99.9 rank lands in the slow tail");
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn edge_values_and_empty_histograms_are_total() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0, "empty histogram answers 0");
        h.record(0);
        assert_eq!(h.p50(), 0, "zero lands in bucket 0");
        h.record(u64::MAX);
        assert_eq!(h.percentile(100, 100), u64::MAX);
        assert_eq!(h.percentile(7, 0), 0, "zero denominator is refused, not divided");
        let json = h.to_json();
        assert!(json.contains("\"count\": 2"), "{json}");
        assert!(json.contains("\"p999_us\": "), "{json}");
    }
}
