//! A bounded job queue plus a fixed worker pool.
//!
//! Backpressure is explicit: `try_push` refuses work beyond the
//! configured capacity (the HTTP layer turns that into a 503 with
//! `Retry-After`) and `drain` flips the queue into shutdown mode, after
//! which workers finish what is queued and exit. Each job runs under
//! `catch_unwind` so a panicking simulation takes down one job, not a
//! worker thread — the same fault-isolation stance as the benchmark
//! matrix runner.
//!
//! # Atomic-ordering contract
//!
//! Every atomic in this crate falls into one of two classes, and the
//! R9 concurrency pass enforces the split:
//!
//! * **Control flow — `SeqCst`.** `ServerState::stop` and
//!   `active_connections` (in `lib.rs`) gate accept-loop exit, request
//!   rejection, and shutdown draining. Their loads feed branches, so
//!   they use `SeqCst`: the shutdown `swap(true)` must be globally
//!   ordered before the acceptor observes it, and the connection count
//!   must not be reordered around the limit check. The cost is a few
//!   fences per connection — noise next to a simulation run.
//!
//! * **Monotonic telemetry — `Relaxed`.** Every `Metrics` counter and
//!   gauge (`queue_depth`, `in_flight_jobs`, `runs_panicked`, …) and
//!   every latency-histogram bucket (`crate::histo`, including the
//!   loadgen's client-side histogram) is written with `Relaxed`
//!   `fetch_add`/`fetch_sub`/`fetch_max`/`store` and read only by the
//!   `/metrics` scraper or an end-of-run report. No decision is ever
//!   made on these values, so cross-thread ordering buys nothing; RMW
//!   atomicity alone guarantees no lost increments. A scrape may
//!   observe a counter a beat early or late — that is inherent to
//!   scraping, not ordering. The `shed_state` gauge stays in this class
//!   because the router never *loads* it for the shed decision: it
//!   recomputes the watermark from the queue depth (read under the
//!   queue mutex) and only publishes the result.
//!
//! Queue state itself (`Inner`) is plain data under the `Mutex`; the
//! `Condvar` pairs with that same mutex, so no atomics are involved.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::metrics::Metrics;

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why `try_push` refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue is draining for shutdown; no new work is accepted.
    Draining,
}

#[derive(Default)]
struct Inner {
    queue: VecDeque<Job>,
    draining: bool,
}

/// A bounded MPMC job queue with shutdown support.
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// An empty queue that holds at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue { inner: Mutex::new(Inner::default()), ready: Condvar::new(), capacity }
    }

    /// Enqueues `job`, returning the new queue depth, or refuses it.
    pub fn try_push(&self, job: Job) -> Result<usize, PushError> {
        let mut inner = self.lock();
        if inner.draining {
            return Err(PushError::Draining);
        }
        if inner.queue.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.queue.push_back(job);
        let depth = inner.queue.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks for the next job; `None` once draining and empty.
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.lock();
        loop {
            if let Some(job) = inner.queue.pop_front() {
                return Some(job);
            }
            if inner.draining {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Flips the queue into shutdown mode and wakes every worker.
    pub fn drain(&self) {
        self.lock().draining = true;
        self.ready.notify_all();
    }

    /// Drops any jobs still queued. Used after the workers have exited
    /// (zero-worker pools only): dropping a job hangs up its result
    /// channel, so the connection handler waiting on it unblocks.
    pub fn clear(&self) {
        self.lock().queue.clear();
    }

    /// Whether the queue has entered shutdown mode.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Number of jobs currently waiting.
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Jobs never run under this lock, so panics cannot poison it in
        // practice; recover the guard anyway rather than propagating.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .field("depth", &self.depth())
            .field("draining", &self.is_draining())
            .finish()
    }
}

/// Spawns `n` workers that pop jobs until the queue drains dry.
pub fn spawn_workers(n: usize, queue: Arc<JobQueue>, metrics: Arc<Metrics>) -> Vec<JoinHandle<()>> {
    (0..n)
        .map(|i| {
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name(format!("vpir-serve-worker-{i}"))
                .spawn(move || {
                    while let Some(job) = queue.pop() {
                        metrics.queue_depth.store(queue.depth() as u64, Ordering::Relaxed);
                        metrics.in_flight_jobs.fetch_add(1, Ordering::Relaxed);
                        // Safety net: jobs carry their own catch_unwind
                        // around the simulation so they can report the
                        // panic; this one only protects the worker loop
                        // from a panic in the reporting path itself.
                        if catch_unwind(AssertUnwindSafe(job)).is_err() {
                            metrics.runs_panicked.fetch_add(1, Ordering::Relaxed);
                        }
                        metrics.in_flight_jobs.fetch_sub(1, Ordering::Relaxed);
                    }
                })
                .unwrap_or_else(|e| {
                    // Thread spawn only fails on resource exhaustion; a
                    // smaller pool still serves (requests queue longer).
                    eprintln!("vpir-serve: failed to spawn worker {i}: {e}");
                    std::thread::Builder::new()
                        .name("vpir-serve-worker-noop".to_string())
                        .spawn(|| {})
                        .unwrap_or_else(|_| std::process::exit(1))
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn queue_enforces_capacity_and_drain_semantics() {
        let queue = JobQueue::new(2);
        assert_eq!(queue.try_push(Box::new(|| {})).ok(), Some(1));
        assert_eq!(queue.try_push(Box::new(|| {})).ok(), Some(2));
        assert_eq!(queue.try_push(Box::new(|| {})).err(), Some(PushError::Full));
        queue.drain();
        // Draining: queued jobs still pop, new pushes are refused.
        assert_eq!(queue.try_push(Box::new(|| {})).err(), Some(PushError::Draining));
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_none());
    }

    #[test]
    fn workers_run_jobs_and_exit_on_drain() {
        let queue = Arc::new(JobQueue::new(16));
        let metrics = Arc::new(Metrics::new());
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            let pushed = queue.try_push(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
            assert!(pushed.is_ok());
        }
        let handles = spawn_workers(2, Arc::clone(&queue), Arc::clone(&metrics));
        queue.drain();
        for handle in handles {
            assert!(handle.join().is_ok());
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert_eq!(metrics.in_flight_jobs.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn a_panicking_job_is_contained_and_counted() {
        let queue = Arc::new(JobQueue::new(4));
        let metrics = Arc::new(Metrics::new());
        let counter = Arc::new(AtomicU64::new(0));
        assert!(queue.try_push(Box::new(|| panic!("boom"))).is_ok());
        let counter2 = Arc::clone(&counter);
        assert!(queue
            .try_push(Box::new(move || {
                counter2.fetch_add(1, Ordering::Relaxed);
            }))
            .is_ok());
        let handles = spawn_workers(1, Arc::clone(&queue), Arc::clone(&metrics));
        queue.drain();
        for handle in handles {
            assert!(handle.join().is_ok());
        }
        // The panic was contained: the later job still ran.
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.runs_panicked.load(Ordering::Relaxed), 1);
    }
}
