//! `vpir loadgen`: a std-only load and chaos generator for `vpir
//! serve`.
//!
//! Each of `--conns` worker threads drives its own keep-alive
//! connection in a closed loop until the duration elapses, under one of
//! five traffic mixes:
//!
//! * `hit-heavy` — the same `/v1/run` request repeatedly; after the
//!   first miss every answer is a cache hit, and every hit body is
//!   compared byte-for-byte against the first body observed (an
//!   `identity_violations` count of zero is the load-time proof of the
//!   reuse-buffer contract).
//! * `miss-heavy` — a unique inline-assembly program per request, so
//!   every request simulates and exercises queueing and shedding.
//! * `matrix` — the expensive `/v1/matrix` endpoint, the first traffic
//!   the server sheds under load.
//! * `malformed` — protocol garbage that must come back as clean 4xx
//!   responses, never hangs or resets.
//! * `slowloris` — deliberately stalled request heads; the server must
//!   answer `408` (or close) within its read deadline, proving no
//!   handler thread can be held hostage.
//!
//! The report is a `vpir-bench-serve-v1` jsonlite object (u64-only:
//! counts, log-bucket percentiles, percent ratios) that self-validates
//! against [`REPORT_KEYS`] before it is returned, so the CI chaos step
//! gates on schema validity without external tooling.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vpir_jsonlite::{validate_json, JsonObj};

use crate::histo::Histogram;

/// Required top-level keys of the `vpir-bench-serve-v1` report.
pub const REPORT_KEYS: &[&str] = &[
    "schema",
    "mix",
    "conns",
    "duration_ms",
    "requests_total",
    "responses_2xx",
    "responses_4xx",
    "responses_5xx",
    "shed_503",
    "io_errors",
    "identity_violations",
    "cache_hits_memory",
    "cache_hits_disk",
    "cache_misses",
    "cache_hit_percent",
    "throughput_rps",
    "latency",
];

/// The traffic mix a loadgen run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Repeated identical `/v1/run` requests (cache hits + identity check).
    HitHeavy,
    /// Unique program per request (every request simulates).
    MissHeavy,
    /// `/v1/matrix` requests (the shed-first endpoint).
    Matrix,
    /// Protocol garbage expecting clean 4xx handling.
    Malformed,
    /// Stalled request heads expecting 408 within the read deadline.
    Slowloris,
}

impl Mix {
    /// Parses a `--mix` argument.
    pub fn parse(text: &str) -> Option<Mix> {
        match text {
            "hit-heavy" => Some(Mix::HitHeavy),
            "miss-heavy" => Some(Mix::MissHeavy),
            "matrix" => Some(Mix::Matrix),
            "malformed" => Some(Mix::Malformed),
            "slowloris" => Some(Mix::Slowloris),
            _ => None,
        }
    }

    /// The mix's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Mix::HitHeavy => "hit-heavy",
            Mix::MissHeavy => "miss-heavy",
            Mix::Matrix => "matrix",
            Mix::Malformed => "malformed",
            Mix::Slowloris => "slowloris",
        }
    }

    /// Every mix name, for usage messages.
    pub const ALL_NAMES: &'static str = "hit-heavy, miss-heavy, matrix, malformed, slowloris";
}

/// Tunables for one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// The server to drive, as `host:port`.
    pub addr: String,
    /// Concurrent connections (one worker thread each).
    pub conns: usize,
    /// How long to keep driving load.
    pub duration: Duration,
    /// The traffic mix.
    pub mix: Mix,
}

/// Shared counters all worker threads report into (telemetry-`Relaxed`,
/// like every counter in this crate).
#[derive(Debug, Default)]
struct Totals {
    requests: AtomicU64,
    ok_2xx: AtomicU64,
    client_4xx: AtomicU64,
    server_5xx: AtomicU64,
    shed_503: AtomicU64,
    io_errors: AtomicU64,
    identity_violations: AtomicU64,
    hits_memory: AtomicU64,
    hits_disk: AtomicU64,
    misses: AtomicU64,
}

/// One parsed HTTP response from the server.
struct ClientResp {
    status: u16,
    x_cache: Option<String>,
    keep_alive: bool,
    body: Vec<u8>,
}

/// Reads one full response. Errors on EOF/timeout/overflow so the
/// caller can count an `io_error` and reconnect.
fn read_response(stream: &mut TcpStream) -> std::io::Result<ClientResp> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut buf: Vec<u8> = Vec::with_capacity(2048);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Err(bad("response head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
    };
    let head = std::str::from_utf8(buf.get(..head_end).unwrap_or_default())
        .map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("missing status line"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    let mut content_length = 0usize;
    let mut x_cache = None;
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => content_length = value.parse().unwrap_or(0),
            "x-cache" => x_cache = Some(value.to_string()),
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
    }
    let body = buf.get(body_start..body_start + content_length).unwrap_or_default().to_vec();
    Ok(ClientResp { status, x_cache, keep_alive, body })
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// The request bytes for one iteration of a mix. `seq` makes
/// miss-heavy programs unique without any randomness, so two identical
/// loadgen runs drive identical request streams.
fn request_for(mix: Mix, worker: usize, seq: u64) -> Vec<u8> {
    match mix {
        Mix::HitHeavy => post("/v1/run", "{\"bench\": \"go\", \"max_cycles\": 20000}"),
        Mix::MissHeavy => post(
            "/v1/run",
            &format!(
                "{{\"asm\": \"li r1, {}\\nli r2, {}\\nli r3, {}\\nadd r4, r1, r2\\nhalt\"}}",
                (worker as u64) & 0x7fff,
                seq & 0x7fff,
                (seq >> 15) & 0x7fff
            ),
        ),
        Mix::Matrix => post(
            "/v1/matrix",
            "{\"bench\": \"go\", \"scale\": 2, \"max_cycles\": 100000, \"limit_insts\": 20000}",
        ),
        Mix::Malformed => match seq % 3 {
            0 => b"ZAP\r\n\r\n".to_vec(),
            1 => b"POST /v1/run HTTP/1.1\r\nContent-Length: zap\r\n\r\n".to_vec(),
            _ => b"POST /v1/run HTTP/1.1\r\nContent-Length: 7\r\n\r\n[[[[[[[".to_vec(),
        },
        // A head that never finishes: the stall the server must bound.
        Mix::Slowloris => b"POST /v1/run HTTP/1.1\r\nContent-Le".to_vec(),
    }
}

fn classify(totals: &Totals, resp: &ClientResp) {
    match resp.status {
        200..=299 => totals.ok_2xx.fetch_add(1, Ordering::Relaxed),
        503 => totals.shed_503.fetch_add(1, Ordering::Relaxed),
        400..=499 => totals.client_4xx.fetch_add(1, Ordering::Relaxed),
        _ => totals.server_5xx.fetch_add(1, Ordering::Relaxed),
    };
    match resp.x_cache.as_deref() {
        Some("hit") => totals.hits_memory.fetch_add(1, Ordering::Relaxed),
        Some("hit-disk") => totals.hits_disk.fetch_add(1, Ordering::Relaxed),
        Some("miss") => totals.misses.fetch_add(1, Ordering::Relaxed),
        _ => 0,
    };
}

fn worker_loop(
    cfg: &LoadgenConfig,
    worker: usize,
    deadline: Instant,
    totals: &Totals,
    latency: &Histogram,
    reference: &Mutex<Option<Vec<u8>>>,
) {
    let mut conn: Option<TcpStream> = None;
    let mut seq = 0u64;
    while Instant::now() < deadline {
        let mut stream = match conn.take() {
            Some(stream) => stream,
            None => match TcpStream::connect(&cfg.addr) {
                Ok(stream) => {
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                    let _ = stream.set_nodelay(true);
                    stream
                }
                Err(_) => {
                    totals.io_errors.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            },
        };
        let request = request_for(cfg.mix, worker, seq);
        seq += 1;
        totals.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        if stream.write_all(&request).is_err() {
            totals.io_errors.fetch_add(1, Ordering::Relaxed);
            continue; // dropped conn; reconnect next iteration
        }
        // A slowloris head is *supposed* to hang: the read below blocks
        // until the server's read deadline fires and it answers 408.
        match read_response(&mut stream) {
            Ok(resp) => {
                let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                latency.record(micros);
                classify(totals, &resp);
                if cfg.mix == Mix::HitHeavy && resp.status == 200 {
                    let mut slot = reference.lock().unwrap_or_else(|e| e.into_inner());
                    match slot.as_ref() {
                        None => *slot = Some(resp.body.clone()),
                        Some(first) if *first != resp.body => {
                            totals.identity_violations.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(_) => {}
                    }
                }
                if resp.keep_alive {
                    conn = Some(stream);
                }
            }
            Err(_) => {
                // Slowloris connections may be closed without a response
                // if the server races the deadline; that is a contained
                // outcome, not a protocol failure — still counted.
                totals.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Drives the configured load and returns the `vpir-bench-serve-v1`
/// report, already validated against [`REPORT_KEYS`].
pub fn run(cfg: &LoadgenConfig) -> Result<String, String> {
    let totals = Arc::new(Totals::default());
    let latency = Arc::new(Histogram::new());
    let reference: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let workers: Vec<_> = (0..cfg.conns.max(1))
        .map(|i| {
            let cfg = cfg.clone();
            let totals = Arc::clone(&totals);
            let latency = Arc::clone(&latency);
            let reference = Arc::clone(&reference);
            std::thread::Builder::new()
                .name(format!("vpir-loadgen-{i}"))
                .spawn(move || worker_loop(&cfg, i, deadline, &totals, &latency, &reference))
        })
        .collect();
    let mut spawn_failures = 0u64;
    for handle in workers {
        match handle {
            Ok(h) => {
                let _ = h.join();
            }
            Err(_) => spawn_failures += 1,
        }
    }
    let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX).max(1);
    let requests = totals.requests.load(Ordering::Relaxed);
    let hits = totals.hits_memory.load(Ordering::Relaxed) + totals.hits_disk.load(Ordering::Relaxed);
    let looked_up = hits + totals.misses.load(Ordering::Relaxed);
    let report = JsonObj::new()
        .s("schema", "vpir-bench-serve-v1")
        .s("mix", cfg.mix.name())
        .u("conns", cfg.conns as u64)
        .u("duration_ms", elapsed_ms)
        .u("requests_total", requests)
        .u("responses_2xx", totals.ok_2xx.load(Ordering::Relaxed))
        .u("responses_4xx", totals.client_4xx.load(Ordering::Relaxed))
        .u("responses_5xx", totals.server_5xx.load(Ordering::Relaxed))
        .u("shed_503", totals.shed_503.load(Ordering::Relaxed))
        .u("io_errors", totals.io_errors.load(Ordering::Relaxed) + spawn_failures)
        .u("identity_violations", totals.identity_violations.load(Ordering::Relaxed))
        .u("cache_hits_memory", totals.hits_memory.load(Ordering::Relaxed))
        .u("cache_hits_disk", totals.hits_disk.load(Ordering::Relaxed))
        .u("cache_misses", totals.misses.load(Ordering::Relaxed))
        .u("cache_hit_percent", if looked_up > 0 { hits * 100 / looked_up } else { 0 })
        .u("throughput_rps", requests.saturating_mul(1000) / elapsed_ms)
        .raw("latency", &latency.to_json())
        .finish();
    validate_json(&report, REPORT_KEYS)
        .map_err(|e| format!("loadgen report failed self-validation: {e}"))?;
    Ok(report)
}

/// Gates a fresh loadgen report against a committed baseline document.
///
/// Mirrors the cycle-rate gate in the bench crate: returns a
/// human-readable comparison on success and an error when the current
/// `throughput_rps` has regressed more than `max_regression_pct`
/// percent below the baseline's (improvements and small regressions
/// pass). Both documents must be `vpir-bench-serve-v1` reports over the
/// same traffic mix — comparing a hit-heavy run against a slowloris
/// baseline would gate on noise.
pub fn gate(
    report_json: &str,
    baseline_json: &str,
    max_regression_pct: u64,
) -> Result<String, String> {
    let field = |doc: &str, what: &str| -> Result<(String, u64), String> {
        let v = vpir_jsonlite::parse_json(doc)
            .map_err(|e| format!("{what} is not valid JSON: {e}"))?;
        match v.get("schema").and_then(|s| s.as_str()) {
            Some("vpir-bench-serve-v1") => {}
            other => {
                return Err(format!(
                    "{what} schema is {other:?}, expected \"vpir-bench-serve-v1\""
                ))
            }
        }
        let mix = v
            .get("mix")
            .and_then(|s| s.as_str())
            .ok_or_else(|| format!("{what} has no mix"))?
            .to_string();
        let rps = v
            .get("throughput_rps")
            .and_then(|s| s.as_u64())
            .ok_or_else(|| format!("{what} has no integer throughput_rps"))?;
        Ok((mix, rps))
    };
    let (mix, current) = field(report_json, "report")?;
    let (base_mix, baseline) = field(baseline_json, "baseline")?;
    if mix != base_mix {
        return Err(format!(
            "mix mismatch: report is `{mix}`, baseline is `{base_mix}`"
        ));
    }
    if baseline == 0 {
        return Err("baseline throughput_rps is zero".into());
    }
    let floor = baseline.saturating_mul(100 - max_regression_pct.min(100)) / 100;
    let ratio = current as f64 / baseline as f64;
    if current < floor {
        return Err(format!(
            "throughput regression ({mix}): {current} rps is {:.1}% of the {baseline} rps \
             baseline (gate allows {max_regression_pct}% regression, floor {floor})",
            ratio * 100.0
        ));
    }
    Ok(format!(
        "throughput gate ({mix}): {current} rps vs baseline {baseline} ({:+.1}%), within {}%",
        (ratio - 1.0) * 100.0,
        max_regression_pct
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parsing_round_trips_every_name() {
        for name in ["hit-heavy", "miss-heavy", "matrix", "malformed", "slowloris"] {
            let mix = Mix::parse(name).expect(name);
            assert_eq!(mix.name(), name);
        }
        assert_eq!(Mix::parse("zap"), None);
        assert!(Mix::ALL_NAMES.contains("slowloris"));
    }

    #[test]
    fn miss_heavy_requests_are_unique_and_deterministic() {
        let a = request_for(Mix::MissHeavy, 0, 0);
        let b = request_for(Mix::MissHeavy, 0, 1);
        let c = request_for(Mix::MissHeavy, 1, 0);
        assert_ne!(a, b, "sequence varies the program");
        assert_ne!(a, c, "worker varies the program");
        assert_eq!(a, request_for(Mix::MissHeavy, 0, 0), "same inputs, same request");
        let text = String::from_utf8(a).expect("utf8");
        assert!(text.starts_with("POST /v1/run HTTP/1.1\r\n"), "{text}");
    }

    #[test]
    fn responses_parse_and_classify() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                     Content-Length: 2\r\nConnection: keep-alive\r\nX-Cache: hit\r\n\r\n{}";
        let mut listener_side = std::io::Cursor::new(wire.to_vec());
        // read_response takes a TcpStream; exercise the parse path via a
        // local loopback pair instead.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            read_response(&mut stream).expect("response")
        });
        let (mut server_side, _) = listener.accept().expect("accept");
        let mut bytes = Vec::new();
        listener_side.read_to_end(&mut bytes).expect("cursor");
        server_side.write_all(&bytes).expect("write");
        drop(server_side);
        let resp = client.join().expect("join");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.x_cache.as_deref(), Some("hit"));
        assert!(resp.keep_alive);
        assert_eq!(resp.body, b"{}");

        let totals = Totals::default();
        classify(&totals, &resp);
        assert_eq!(totals.ok_2xx.load(Ordering::Relaxed), 1);
        assert_eq!(totals.hits_memory.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn report_keys_match_the_rendered_schema() {
        // An empty run against a dead port still renders a valid report
        // (all zeros, io_errors counting the refused connects).
        let cfg = LoadgenConfig {
            addr: "127.0.0.1:1".to_string(),
            conns: 1,
            duration: Duration::from_millis(30),
            mix: Mix::HitHeavy,
        };
        let report = run(&cfg).expect("report");
        assert!(report.contains("\"schema\": \"vpir-bench-serve-v1\""), "{report}");
        assert!(validate_json(&report, REPORT_KEYS).is_ok(), "{report}");
    }

    fn serve_report(mix: &str, rps: u64) -> String {
        JsonObj::new()
            .s("schema", "vpir-bench-serve-v1")
            .s("mix", mix)
            .u("throughput_rps", rps)
            .finish()
    }

    #[test]
    fn throughput_gate_passes_and_fails_on_the_floor() {
        let baseline = serve_report("hit-heavy", 1000);
        // 10% allowed: 900 rps is exactly the floor, 899 regresses.
        let ok = gate(&serve_report("hit-heavy", 900), &baseline, 10).expect("at floor");
        assert!(ok.contains("within 10%"), "{ok}");
        let err = gate(&serve_report("hit-heavy", 899), &baseline, 10).expect_err("regression");
        assert!(err.contains("throughput regression"), "{err}");
        // Improvements always pass.
        assert!(gate(&serve_report("hit-heavy", 5000), &baseline, 0).is_ok());
    }

    #[test]
    fn throughput_gate_rejects_mismatched_documents() {
        let baseline = serve_report("hit-heavy", 1000);
        let err = gate(&serve_report("matrix", 1000), &baseline, 10).expect_err("mix");
        assert!(err.contains("mix mismatch"), "{err}");
        assert!(gate("{not json", &baseline, 10).is_err());
        assert!(gate(&serve_report("hit-heavy", 1), "{\"schema\": \"zap\"}", 10).is_err());
        let zero = serve_report("hit-heavy", 0);
        assert!(gate(&serve_report("hit-heavy", 1), &zero, 10).is_err());
    }
}
