//! `vpir serve`: a dependency-free HTTP/1.1 simulation service.
//!
//! The service wraps the simulator behind a small JSON API with a
//! content-addressed result cache — the service-level analogue of the
//! paper's reuse buffer. A request names a program (a workloads
//! benchmark or inline assembly) and a configuration label; the FNV-1a
//! hash of the serialized program image plus the canonical parameters
//! addresses a cache of fully rendered response bodies, so a repeated
//! request is answered without re-simulating and the hit body is
//! byte-identical to the miss that populated it. Like the paper's reuse
//! buffer, the cache is *managed*: a bounded in-memory LRU tier in
//! front of an optional crash-safe disk tier (`--cache-dir`), so a
//! restart answers prior hits byte-identically with `X-Cache:
//! hit-disk` and a corrupted entry degrades to a quarantined miss.
//!
//! Work the cache cannot answer goes through a bounded job queue served
//! by a fixed worker pool, with graduated load shedding on queue-depth
//! watermarks: healthy → shedding (expensive `/v1/matrix` misses are
//! refused with `503 + Retry-After` while cached hits and `/healthz`
//! still answer) → saturated (every miss is refused). Connections are
//! keep-alive with an idle timeout, a per-connection request cap, and
//! per-read deadlines — a stalled client gets `408` and its worker
//! back; a simulation that outruns `--request-deadline-ms` degrades to
//! a structured `504` whose job still completes and populates the
//! cache. Shutdown (via `POST /v1/shutdown`; the workspace forbids
//! `unsafe`, so there is no signal handler) drains queued work before
//! the process exits.
//!
//! Endpoints:
//!
//! - `POST /v1/run` — simulate one program under one configuration.
//! - `POST /v1/matrix` — run the fault-isolated benchmark matrix for
//!   one benchmark (wedged or panicking cells degrade to failure rows).
//! - `POST /v1/analyze` — static analysis of inline assembly (CFG,
//!   loops, constant propagation, lints L1–L4), content-addressed by
//!   the source text.
//! - `GET /healthz` — liveness, draining state, shed state.
//! - `GET /metrics` — Prometheus text exposition with latency
//!   histograms per endpoint.
//! - `POST /v1/shutdown` — graceful drain-and-exit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod histo;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod pool;
pub mod store;

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vpir_bench::matrix::{
    build_programs, config_for_label, config_labels, run_matrix_outcome, InjectFault,
    MatrixConfig, MatrixOutcome, RunOptions,
};
use vpir_bench::state::stats_to_json;
use vpir_core::{RunLimits, SimError, Simulator, TraceOutcome};
use vpir_isa::{asm::assemble, image, Program};
use vpir_isa_analyze::analyze_program;
use vpir_jsonlite::{parse_json, JsonObj, JsonValue};
use vpir_workloads::{Bench, Scale};

pub use cache::{fnv1a64, HitTier, ResultCache};
pub use histo::Histogram;
pub use http::{ConnReader, HttpError, Request};
pub use metrics::{Metrics, ShedState};
pub use pool::{JobQueue, PushError};
pub use store::{DiskStore, StoreFault};

use http::write_response;
use pool::spawn_workers;

/// Concurrent connection cap; connections beyond it get an immediate
/// 503 without occupying a handler thread.
const MAX_CONNECTIONS: usize = 64;
/// Upper bound on the workload scale parameter.
const MAX_SCALE: u64 = 1024;
/// Upper bound on per-request cycle and instruction caps.
const MAX_CYCLES_CAP: u64 = 1_000_000_000;
/// Per-connection write timeout (a client that stops reading its
/// response is dropped, not waited on).
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

const JSON: &str = "application/json";
const METRICS_TEXT: &str = "text/plain; version=0.0.4";

// ----------------------------------------------------------------
// Configuration and server lifecycle.
// ----------------------------------------------------------------

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` asks the OS for an ephemeral port.
    pub addr: String,
    /// Worker pool size. The CLI enforces at least one; the API accepts
    /// zero so tests can freeze the queue and exercise backpressure
    /// deterministically.
    pub workers: usize,
    /// Bounded job queue capacity; a full queue answers 503 and the
    /// shed watermarks are fractions of this value.
    pub queue_capacity: usize,
    /// In-memory cache tier bound, in entries.
    pub cache_capacity: usize,
    /// In-memory cache tier bound, in body bytes.
    pub cache_mem_bytes: u64,
    /// Directory for the durable disk cache tier; `None` disables it.
    pub cache_dir: Option<PathBuf>,
    /// Disk cache tier bound, in file bytes (headers included).
    pub cache_disk_bytes: u64,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Cycle cap applied when a request omits `max_cycles`.
    pub default_max_cycles: u64,
    /// Largest accepted `trace` record count.
    pub max_trace: u64,
    /// How long a handler waits for its simulation before degrading to
    /// a structured 504 (the job still completes and fills the cache).
    pub request_deadline: Duration,
    /// How long an idle keep-alive connection is held open.
    pub idle_timeout: Duration,
    /// Per-read deadline once a request has started arriving; a client
    /// that stalls longer mid-request gets 408.
    pub read_deadline: Duration,
    /// Requests served per connection before it is closed.
    pub max_requests_per_conn: usize,
    /// Deterministic disk-store fault injection for tests and the CI
    /// chaos step.
    pub inject_fault: Option<StoreFault>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_capacity: 32,
            cache_capacity: 1024,
            cache_mem_bytes: 64 << 20,
            cache_dir: None,
            cache_disk_bytes: 256 << 20,
            max_body_bytes: 1 << 20,
            default_max_cycles: 2_000_000,
            max_trace: 4096,
            request_deadline: Duration::from_secs(120),
            idle_timeout: Duration::from_secs(5),
            read_deadline: Duration::from_secs(2),
            max_requests_per_conn: 100,
            inject_fault: None,
        }
    }
}

/// A benchmark program prepared once and shared across requests: the
/// assembled [`Program`] plus its serialized image (the bytes the
/// cache key is computed over).
struct Prepared {
    program: Program,
    image: Vec<u8>,
}

/// Shared service state: configuration, metrics, the result cache, the
/// job queue, and the memoized benchmark programs.
struct State {
    cfg: ServeConfig,
    addr: SocketAddr,
    metrics: Arc<Metrics>,
    cache: Arc<ResultCache>,
    queue: Arc<JobQueue>,
    programs: Mutex<BTreeMap<(String, u32), Arc<Prepared>>>,
    stop: AtomicBool,
    active_connections: AtomicUsize,
}

impl State {
    fn new(cfg: ServeConfig, addr: SocketAddr) -> io::Result<State> {
        let store = match &cfg.cache_dir {
            None => None,
            Some(dir) => Some(DiskStore::open(dir, cfg.cache_disk_bytes, cfg.inject_fault)?),
        };
        let cache = Arc::new(ResultCache::new(cfg.cache_capacity, cfg.cache_mem_bytes, store));
        let queue = Arc::new(JobQueue::new(cfg.queue_capacity));
        Ok(State {
            cfg,
            addr,
            metrics: Arc::new(Metrics::new()),
            cache,
            queue,
            programs: Mutex::new(BTreeMap::new()),
            stop: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
        })
    }

    /// Returns the memoized (program, image) pair for a benchmark at a
    /// scale, building it on first use.
    fn prepared(&self, bench: Bench, scale: u32) -> Result<Arc<Prepared>, HttpError> {
        let key = (bench.name().to_string(), scale);
        let mut map = self.programs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = map.get(&key) {
            return Ok(Arc::clone(p));
        }
        let program = bench.program(Scale::of(scale));
        let image = image::write(&program)
            .map_err(|e| HttpError::new(500, format!("image encode failed: {e}")))?;
        let prepared = Arc::new(Prepared { program, image });
        map.insert(key, Arc::clone(&prepared));
        Ok(prepared)
    }

    /// Computes the current shed state from the queue depth and
    /// refreshes the exported gauge.
    fn shed(&self) -> ShedState {
        let shed = ShedState::for_depth(self.queue.depth(), self.cfg.queue_capacity.max(1));
        self.metrics.shed_state.store(shed as u64, Ordering::Relaxed);
        shed
    }

    /// Copies the cache tiers' internal counters into the exported
    /// metrics gauges.
    fn sync_cache_metrics(&self) {
        sync_cache_metrics(&self.metrics, &self.cache);
    }
}

fn sync_cache_metrics(metrics: &Metrics, cache: &ResultCache) {
    metrics.cache_entries.store(cache.len() as u64, Ordering::Relaxed);
    metrics.cache_mem_bytes.store(cache.mem_bytes(), Ordering::Relaxed);
    metrics.cache_entries_evicted.store(cache.mem_evicted(), Ordering::Relaxed);
    if let Some(stats) = cache.store_stats() {
        metrics.store_entries.store(stats.entries, Ordering::Relaxed);
        metrics.store_bytes.store(stats.bytes, Ordering::Relaxed);
        metrics.store_evictions.store(stats.evictions, Ordering::Relaxed);
        metrics.store_quarantined.store(stats.quarantined, Ordering::Relaxed);
    }
}

/// A running service instance.
pub struct Server {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<State>,
}

impl Server {
    /// Binds, opens the disk cache tier (if configured), spawns the
    /// worker pool and the accept thread, and returns immediately. The
    /// service runs until `POST /v1/shutdown` (or [`Server::shutdown`])
    /// is observed.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State::new(cfg, addr)?);
        state.sync_cache_metrics();
        let workers = spawn_workers(
            state.cfg.workers,
            Arc::clone(&state.queue),
            Arc::clone(&state.metrics),
        );
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("vpir-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        Ok(Server { addr, accept: Some(accept), workers, state })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown, exactly as `POST /v1/shutdown` does:
    /// the queue stops accepting work and the accept loop is woken.
    pub fn shutdown(&self) {
        begin_shutdown(&self.state);
    }

    /// Blocks until the service has fully shut down: accept thread
    /// exited, queued jobs drained, workers joined, and in-flight
    /// connections finished.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.state.queue.drain();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // With the workers gone, any job still queued (possible only
        // with a zero-worker pool) will never run; dropping it hangs up
        // its handler's result channel so the connection can finish.
        self.state.queue.clear();
        let mut waited = 0u32;
        while self.state.active_connections.load(Ordering::SeqCst) > 0 && waited < 500 {
            std::thread::sleep(Duration::from_millis(10));
            waited += 1;
        }
    }
}

fn begin_shutdown(state: &State) {
    state.queue.drain();
    if !state.stop.swap(true, Ordering::SeqCst) {
        // The accept loop is blocked in `accept`; a throwaway
        // connection wakes it so it can observe `stop`.
        let _ = TcpStream::connect(state.addr);
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        state.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
        if state.active_connections.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
            let mut stream = stream;
            state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            state.metrics.observe_status(503);
            let body = error_body(503, "connection limit reached");
            let _ = write_response(
                &mut stream,
                503,
                JSON,
                &[("Retry-After", "1".to_string())],
                body.as_bytes(),
                true,
            );
            continue;
        }
        state.active_connections.fetch_add(1, Ordering::SeqCst);
        let conn_state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("vpir-serve-conn".to_string())
            .spawn(move || {
                handle_connection(&stream, &conn_state);
                conn_state.active_connections.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            state.active_connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

// ----------------------------------------------------------------
// Connection handling and routing.
// ----------------------------------------------------------------

/// A fully rendered response, ready for the wire.
#[derive(Debug)]
struct Response {
    status: u16,
    content_type: &'static str,
    extra: Vec<(&'static str, String)>,
    body: Arc<String>,
    /// When set, the handler initiates graceful shutdown after the
    /// response has been written (so the client sees an answer).
    shutdown: bool,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: JSON,
            extra: Vec::new(),
            body: Arc::new(body),
            shutdown: false,
        }
    }

    fn from_error(err: &HttpError) -> Response {
        let mut resp = Response::json(err.status, error_body(err.status, &err.message));
        if err.status == 503 {
            resp.extra.push(("Retry-After", "1".to_string()));
        }
        resp
    }
}

fn error_body(status: u16, message: &str) -> String {
    JsonObj::new().u("status", u64::from(status)).s("error", message).finish()
}

fn elapsed_micros(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Serves one keep-alive connection: requests are read and answered in
/// order until the client closes, stalls, errs, or exhausts the
/// per-connection request cap.
///
/// Two timers govern the read side. While the connection is *idle*
/// (nothing buffered, nothing mid-flight) the socket waits up to
/// `idle_timeout` for the first byte of the next request and a timeout
/// is a quiet close. Once bytes start flowing, every subsequent read
/// must land within `read_deadline`; a longer stall is a slowloris and
/// is answered `408` before closing — the handler thread is never
/// parked on a slow client beyond one deadline.
fn handle_connection(stream: &TcpStream, state: &Arc<State>) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut reader = ConnReader::new(stream);
    let mut out = stream;
    let mut served = 0usize;
    loop {
        if !reader.has_buffered() {
            // Idle phase: wait (bounded) for the next request to begin.
            let _ = stream.set_read_timeout(Some(state.cfg.idle_timeout));
            let mut probe = [0u8; 1];
            match stream.peek(&mut probe) {
                Ok(0) => return,  // clean EOF between requests
                Ok(_) => {}
                Err(_) => return, // idle timeout or socket error
            }
        }
        // Read phase: the request has started; every read is deadlined.
        let _ = stream.set_read_timeout(Some(state.cfg.read_deadline));
        let started = Instant::now();
        let request = match reader.next_request(state.cfg.max_body_bytes) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(err) => {
                state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                if err.status == 408 {
                    state.metrics.slow_client_timeouts.fetch_add(1, Ordering::Relaxed);
                }
                state.metrics.observe_status(err.status);
                let resp = Response::from_error(&err);
                let _ = write_response(
                    &mut out,
                    resp.status,
                    resp.content_type,
                    &resp.extra,
                    resp.body.as_bytes(),
                    true,
                );
                state.metrics.latency_other.record(elapsed_micros(started));
                return; // a protocol error always closes
            }
        };
        state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        served += 1;
        let response = match route(state, &request) {
            Ok(response) => response,
            Err(err) => Response::from_error(&err),
        };
        let close = !request.keep_alive
            || served >= state.cfg.max_requests_per_conn
            || response.status >= 400
            || response.shutdown;
        state.metrics.observe_status(response.status);
        let wrote = write_response(
            &mut out,
            response.status,
            response.content_type,
            &response.extra,
            response.body.as_bytes(),
            close,
        );
        state.metrics.latency_for(&request.path).record(elapsed_micros(started));
        if response.shutdown {
            begin_shutdown(state);
        }
        if close || wrote.is_err() {
            return;
        }
    }
}

fn route(state: &Arc<State>, request: &Request) -> Result<Response, HttpError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Ok(Response::json(
            200,
            JsonObj::new()
                .b("ok", true)
                .b("draining", state.queue.is_draining())
                .s("state", state.shed().name())
                .finish(),
        )),
        ("GET", "/metrics") => {
            state.shed();
            state.sync_cache_metrics();
            Ok(Response {
                status: 200,
                content_type: METRICS_TEXT,
                extra: Vec::new(),
                body: Arc::new(state.metrics.render()),
                shutdown: false,
            })
        }
        ("POST", "/v1/run") => handle_run(state, &request.body),
        ("POST", "/v1/matrix") => handle_matrix(state, &request.body),
        ("POST", "/v1/analyze") => handle_analyze(state, &request.body),
        ("POST", "/v1/shutdown") => Ok(Response {
            status: 200,
            content_type: JSON,
            extra: Vec::new(),
            body: Arc::new(JsonObj::new().b("ok", true).b("draining", true).finish()),
            shutdown: true,
        }),
        (_, "/healthz" | "/metrics") => Ok(method_not_allowed("GET", &request.method)),
        (_, "/v1/run" | "/v1/matrix" | "/v1/analyze" | "/v1/shutdown") => {
            Ok(method_not_allowed("POST", &request.method))
        }
        _ => Err(HttpError::new(404, format!("no route for `{}`", request.path))),
    }
}

fn method_not_allowed(allow: &'static str, method: &str) -> Response {
    let mut resp = Response::json(
        405,
        error_body(405, &format!("method {method} not allowed (use {allow})")),
    );
    resp.extra.push(("Allow", allow.to_string()));
    resp
}

// ----------------------------------------------------------------
// Request body parsing helpers.
// ----------------------------------------------------------------

fn parse_body(body: &[u8]) -> Result<JsonValue, HttpError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| HttpError::new(400, "request body is not UTF-8"))?;
    parse_json(text).map_err(|e| HttpError::new(400, format!("bad JSON: {e}")))
}

fn check_keys(value: &JsonValue, allowed: &[&str]) -> Result<(), HttpError> {
    let JsonValue::Obj(pairs) = value else {
        return Err(HttpError::new(400, "request body must be a JSON object"));
    };
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(HttpError::new(
                400,
                format!("unknown key `{key}` (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn get_u64(value: &JsonValue, key: &str, default: u64) -> Result<u64, HttpError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| HttpError::new(400, format!("`{key}` must be an unsigned integer"))),
    }
}

fn get_str<'a>(value: &'a JsonValue, key: &str) -> Result<Option<&'a str>, HttpError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| HttpError::new(400, format!("`{key}` must be a string"))),
    }
}

fn bounded(name: &str, value: u64, max: u64) -> Result<u64, HttpError> {
    if value == 0 || value > max {
        return Err(HttpError::new(400, format!("`{name}` must be in 1..={max}, got {value}")));
    }
    Ok(value)
}

/// The configuration labels `/v1/run` accepts: every matrix label that
/// maps to a single machine configuration (`limit` is a study over
/// instruction windows, not a machine, so it is excluded).
fn runnable_labels() -> Vec<String> {
    config_labels().into_iter().filter(|l| config_for_label(l).is_some()).collect()
}

fn parse_bench(name: &str) -> Result<Bench, HttpError> {
    Bench::parse(name).ok_or_else(|| {
        let names: Vec<&str> = Bench::ALL.iter().map(|b| b.name()).collect();
        HttpError::new(400, format!("unknown bench `{name}` (valid: {})", names.join(", ")))
    })
}

// ----------------------------------------------------------------
// POST /v1/run
// ----------------------------------------------------------------

fn handle_run(state: &Arc<State>, body: &[u8]) -> Result<Response, HttpError> {
    let value = parse_body(body)?;
    check_keys(&value, &["bench", "asm", "config", "scale", "max_cycles", "trace"])?;

    let label = get_str(&value, "config")?.unwrap_or("base").to_string();
    let Some(base_config) = config_for_label(&label) else {
        return Err(HttpError::new(
            400,
            format!("unknown config `{label}` (valid: {})", runnable_labels().join(", ")),
        ));
    };
    let scale = bounded("scale", get_u64(&value, "scale", 2)?, MAX_SCALE)?;
    let max_cycles = bounded(
        "max_cycles",
        get_u64(&value, "max_cycles", state.cfg.default_max_cycles)?,
        MAX_CYCLES_CAP,
    )?;
    let trace = get_u64(&value, "trace", 0)?;
    if trace > state.cfg.max_trace {
        return Err(HttpError::new(
            400,
            format!("`trace` must be at most {}, got {trace}", state.cfg.max_trace),
        ));
    }

    let (program_name, prepared) = match (get_str(&value, "bench")?, get_str(&value, "asm")?) {
        (Some(_), Some(_)) | (None, None) => {
            return Err(HttpError::new(400, "specify exactly one of `bench` and `asm`"))
        }
        (Some(name), None) => {
            let bench = parse_bench(name)?;
            (bench.name().to_string(), state.prepared(bench, scale as u32)?)
        }
        (None, Some(source)) => {
            let program =
                assemble(source).map_err(|e| HttpError::new(400, format!("asm error: {e}")))?;
            let image = image::write(&program)
                .map_err(|e| HttpError::new(500, format!("image encode failed: {e}")))?;
            ("inline".to_string(), Arc::new(Prepared { program, image }))
        }
    };

    let key = fnv1a64(&[
        b"run-v1",
        &prepared.image,
        label.as_bytes(),
        scale.to_string().as_bytes(),
        max_cycles.to_string().as_bytes(),
        trace.to_string().as_bytes(),
    ]);

    let metrics = Arc::clone(&state.metrics);
    let job = Box::new(move || -> String {
        let rendered = catch_unwind(AssertUnwindSafe(|| {
            let mut config = base_config.clone();
            config.trace_capacity = trace as usize;
            let mut sim = Simulator::new(&prepared.program, config);
            let err = sim.run_checked(RunLimits::cycles(max_cycles)).map(|_| ()).err();
            metrics.sim_cycles_total.fetch_add(sim.stats().cycles, Ordering::Relaxed);
            match &err {
                None => metrics.runs_completed.fetch_add(1, Ordering::Relaxed),
                Some(_) => metrics.runs_sim_error.fetch_add(1, Ordering::Relaxed),
            };
            render_run_body(&program_name, &label, scale, max_cycles, &sim, err.as_ref())
        }));
        match rendered {
            Ok(body) => body,
            Err(panic) => {
                metrics.runs_panicked.fetch_add(1, Ordering::Relaxed);
                run_panic_body(&panic_message(panic.as_ref()))
            }
        }
    });
    respond_cached_or_enqueue(state, key, false, job)
}

fn render_run_body(
    program_name: &str,
    label: &str,
    scale: u64,
    max_cycles: u64,
    sim: &Simulator,
    err: Option<&SimError>,
) -> String {
    let stats_json = match err {
        None => stats_to_json(sim.stats()),
        Some(_) => "null".to_string(),
    };
    let error_json = match err {
        None => "null".to_string(),
        Some(e) => JsonObj::new().s("kind", e.kind()).s("message", &e.to_string()).finish(),
    };
    let trace_json = match sim.trace() {
        None => "[]".to_string(),
        Some(log) => {
            let parts: Vec<String> = log
                .records()
                .iter()
                .map(|r| {
                    JsonObj::new()
                        .u("seq", r.seq)
                        .u("pc", r.pc)
                        .s("outcome", outcome_name(r.outcome))
                        .u("dispatch", r.dispatch)
                        .raw("commit", &opt_u64(r.commit))
                        .raw("squash", &opt_u64(r.squash))
                        .finish()
                })
                .collect();
            format!("[{}]", parts.join(", "))
        }
    };
    JsonObj::new()
        .s("schema", "vpir-serve-run-v1")
        .s("program", program_name)
        .s("config", label)
        .u("scale", scale)
        .u("max_cycles", max_cycles)
        .b("halted", sim.halted())
        .raw("stats", &stats_json)
        .raw("error", &error_json)
        .raw("trace", &trace_json)
        .finish()
}

fn run_panic_body(message: &str) -> String {
    let error_json = JsonObj::new().s("kind", "panic").s("message", message).finish();
    JsonObj::new()
        .s("schema", "vpir-serve-run-v1")
        .b("halted", false)
        .raw("stats", "null")
        .raw("error", &error_json)
        .raw("trace", "[]")
        .finish()
}

fn outcome_name(outcome: TraceOutcome) -> &'static str {
    match outcome {
        TraceOutcome::Executed => "executed",
        TraceOutcome::Predicted => "predicted",
        TraceOutcome::Reused => "reused",
        TraceOutcome::AddrReused => "addr_reused",
        TraceOutcome::Squashed => "squashed",
    }
}

fn opt_u64(value: Option<u64>) -> String {
    match value {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

// ----------------------------------------------------------------
// POST /v1/matrix
// ----------------------------------------------------------------

fn handle_matrix(state: &Arc<State>, body: &[u8]) -> Result<Response, HttpError> {
    let value = parse_body(body)?;
    check_keys(&value, &["bench", "scale", "max_cycles", "limit_insts", "inject_fault"])?;

    let name = get_str(&value, "bench")?
        .ok_or_else(|| HttpError::new(400, "missing required key `bench`"))?;
    let bench = parse_bench(name)?;
    let scale = bounded("scale", get_u64(&value, "scale", 2)?, MAX_SCALE)?;
    let max_cycles = bounded(
        "max_cycles",
        get_u64(&value, "max_cycles", state.cfg.default_max_cycles)?,
        MAX_CYCLES_CAP,
    )?;
    let limit_insts =
        bounded("limit_insts", get_u64(&value, "limit_insts", 200_000)?, MAX_CYCLES_CAP)?;
    let fault_spec = get_str(&value, "inject_fault")?.map(str::to_string);
    let inject_fault = match &fault_spec {
        None => None,
        Some(spec) => {
            let fault = InjectFault::parse(spec).map_err(|e| HttpError::new(400, e))?;
            // Same vocabulary check as `vpir bench --inject-fault`: a
            // typo must be an error, not a silently ignored fault.
            parse_bench(&fault.bench)?;
            if !config_labels().iter().any(|l| l == &fault.config) {
                return Err(HttpError::new(
                    400,
                    format!(
                        "unknown inject_fault config `{}` (valid: {})",
                        fault.config,
                        config_labels().join(", ")
                    ),
                ));
            }
            Some(fault)
        }
    };

    let prepared = state.prepared(bench, scale as u32)?;
    let key = fnv1a64(&[
        b"matrix-v1",
        &prepared.image,
        scale.to_string().as_bytes(),
        max_cycles.to_string().as_bytes(),
        limit_insts.to_string().as_bytes(),
        fault_spec.as_deref().unwrap_or("-").as_bytes(),
    ]);

    let metrics = Arc::clone(&state.metrics);
    let bench_name = bench.name().to_string();
    let job = Box::new(move || -> String {
        let rendered = catch_unwind(AssertUnwindSafe(|| {
            let matrix_cfg = MatrixConfig {
                scale: Scale::of(scale as u32),
                max_cycles,
                limit_insts,
            };
            let opts = RunOptions {
                dump_dir: None,
                resume: false,
                inject_fault: inject_fault.clone(),
            };
            let programs = build_programs(&[bench], matrix_cfg.scale);
            let outcome = run_matrix_outcome(&[bench], &programs, matrix_cfg, 1, &opts);
            render_matrix_body(&bench_name, scale, max_cycles, limit_insts, &outcome, &metrics)
        }));
        match rendered {
            Ok(body) => body,
            Err(panic) => {
                metrics.runs_panicked.fetch_add(1, Ordering::Relaxed);
                let error_json = JsonObj::new()
                    .s("kind", "panic")
                    .s("message", &panic_message(panic.as_ref()))
                    .finish();
                JsonObj::new()
                    .s("schema", "vpir-serve-matrix-v1")
                    .raw("error", &error_json)
                    .finish()
            }
        }
    });
    // The matrix is the expensive endpoint: it is the first work
    // refused when the queue crosses the shed watermark.
    respond_cached_or_enqueue(state, key, true, job)
}

fn render_matrix_body(
    bench_name: &str,
    scale: u64,
    max_cycles: u64,
    limit_insts: u64,
    outcome: &MatrixOutcome,
    metrics: &Metrics,
) -> String {
    metrics.matrix_cells_failed.fetch_add(outcome.failures.len() as u64, Ordering::Relaxed);
    metrics.runs_completed.fetch_add(outcome.completed_jobs as u64, Ordering::Relaxed);
    let total_cycles = outcome.matrix.as_ref().map(|m| m.total_sim_cycles()).unwrap_or(0);
    metrics.sim_cycles_total.fetch_add(total_cycles, Ordering::Relaxed);
    let failures: Vec<String> = outcome
        .failures
        .iter()
        .map(|f| {
            JsonObj::new()
                .u("job_index", f.job_index as u64)
                .s("bench", &f.bench)
                .s("config", &f.config)
                .s("kind", &f.kind)
                .s("error", &f.error)
                .finish()
        })
        .collect();
    JsonObj::new()
        .s("schema", "vpir-serve-matrix-v1")
        .s("bench", bench_name)
        .u("scale", scale)
        .u("max_cycles", max_cycles)
        .u("limit_insts", limit_insts)
        .u("total_jobs", outcome.total_jobs as u64)
        .u("completed_jobs", outcome.completed_jobs as u64)
        .raw("failures", &format!("[{}]", failures.join(", ")))
        .u("total_sim_cycles", total_cycles)
        .finish()
}

// ----------------------------------------------------------------
// POST /v1/analyze
// ----------------------------------------------------------------

/// Static analysis of inline assembly. The cache key is the FNV-1a
/// hash of the source text itself — the analysis is a pure function of
/// the program, so identical sources share one cached body.
fn handle_analyze(state: &Arc<State>, body: &[u8]) -> Result<Response, HttpError> {
    let value = parse_body(body)?;
    check_keys(&value, &["asm"])?;
    let source = get_str(&value, "asm")?
        .ok_or_else(|| HttpError::new(400, "missing required key `asm`"))?
        .to_string();
    let program = assemble(&source)
        .map_err(|e| HttpError::new(400, format!("asm error: {}", e.at_file("inline"))))?;

    let key = fnv1a64(&[b"analyze-v1", source.as_bytes()]);
    let metrics = Arc::clone(&state.metrics);
    let job = Box::new(move || -> String {
        let rendered = catch_unwind(AssertUnwindSafe(|| {
            let analysis = analyze_program(&program, "inline");
            metrics.runs_completed.fetch_add(1, Ordering::Relaxed);
            JsonObj::new()
                .s("schema", "vpir-serve-analyze-v1")
                .u("live", analysis.findings.len() as u64)
                .raw("analysis", &analysis.to_json())
                .finish()
        }));
        match rendered {
            Ok(body) => body,
            Err(panic) => {
                metrics.runs_panicked.fetch_add(1, Ordering::Relaxed);
                let error_json = JsonObj::new()
                    .s("kind", "panic")
                    .s("message", &panic_message(panic.as_ref()))
                    .finish();
                JsonObj::new()
                    .s("schema", "vpir-serve-analyze-v1")
                    .raw("analysis", "null")
                    .raw("error", &error_json)
                    .finish()
            }
        }
    });
    respond_cached_or_enqueue(state, key, false, job)
}

// ----------------------------------------------------------------
// The cache-or-enqueue core.
// ----------------------------------------------------------------

/// The structured 504 body a request degrades to when its simulation
/// outruns the deadline. Reuses the `SimError` row vocabulary
/// (`kind`/`message`) so clients parse it like any other failure; the
/// job itself keeps running and will populate the cache.
fn deadline_response(deadline: Duration) -> Response {
    let millis = u64::try_from(deadline.as_millis()).unwrap_or(u64::MAX);
    let error_json = JsonObj::new()
        .s("kind", "deadline")
        .s(
            "message",
            &format!(
                "simulation exceeded the {millis}ms request deadline; \
                 the job continues and its result will populate the cache"
            ),
        )
        .finish();
    let body = JsonObj::new()
        .s("schema", "vpir-serve-error-v1")
        .u("status", 504)
        .raw("error", &error_json)
        .finish();
    Response::json(504, body)
}

/// Answers from the cache when possible; otherwise enqueues `job_fn`
/// on the worker pool (propagating backpressure and load shedding as
/// 503) and waits for its rendered body. The cached body is the
/// complete response, so a hit is byte-identical to the miss that
/// populated it — whichever tier answers.
fn respond_cached_or_enqueue(
    state: &Arc<State>,
    key: u64,
    expensive: bool,
    job_fn: Box<dyn FnOnce() -> String + Send + 'static>,
) -> Result<Response, HttpError> {
    if let Some((body, tier)) = state.cache.get(key) {
        let tag = match tier {
            HitTier::Memory => {
                state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                "hit"
            }
            HitTier::Disk => {
                state.metrics.cache_hits_disk.fetch_add(1, Ordering::Relaxed);
                "hit-disk"
            }
        };
        state.sync_cache_metrics();
        return Ok(Response {
            status: 200,
            content_type: JSON,
            extra: vec![("X-Cache", tag.to_string())],
            body,
            shutdown: false,
        });
    }
    state.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

    if state.queue.is_draining() {
        return Err(HttpError::new(503, "server is draining for shutdown"));
    }
    // Graduated shedding: cached hits were already answered above, so
    // only misses are subject to the watermarks.
    match state.shed() {
        ShedState::Healthy => {}
        ShedState::Shedding if !expensive => {}
        ShedState::Shedding => {
            state.metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
            return Err(HttpError::new(
                503,
                "server is shedding load (queue past watermark) — retry shortly",
            ));
        }
        ShedState::Saturated => {
            state.metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
            return Err(HttpError::new(503, "server is saturated — retry shortly"));
        }
    }

    let (tx, rx) = mpsc::channel::<Arc<String>>();
    let cache = Arc::clone(&state.cache);
    let metrics = Arc::clone(&state.metrics);
    let job = Box::new(move || {
        let body = Arc::new(job_fn());
        cache.insert(key, Arc::clone(&body));
        sync_cache_metrics(&metrics, &cache);
        let _ = tx.send(body);
    });
    match state.queue.try_push(job) {
        Ok(depth) => {
            state.metrics.queue_depth.store(depth as u64, Ordering::Relaxed);
        }
        Err(PushError::Full) => {
            return Err(HttpError::new(503, "job queue is full — retry shortly"))
        }
        Err(PushError::Draining) => {
            return Err(HttpError::new(503, "server is draining for shutdown"))
        }
    }
    match rx.recv_timeout(state.cfg.request_deadline) {
        Ok(body) => Ok(Response {
            status: 200,
            content_type: JSON,
            extra: vec![("X-Cache", "miss".to_string())],
            body,
            shutdown: false,
        }),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            state.metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            Ok(deadline_response(state.cfg.request_deadline))
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Err(HttpError::new(500, "job was abandoned (shutdown)"))
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(workers: usize) -> (Arc<State>, Vec<JoinHandle<()>>) {
        let cfg = ServeConfig {
            workers,
            request_deadline: Duration::from_secs(30),
            ..ServeConfig::default()
        };
        test_state_with(cfg)
    }

    fn test_state_with(cfg: ServeConfig) -> (Arc<State>, Vec<JoinHandle<()>>) {
        let workers = cfg.workers;
        let addr: SocketAddr = "127.0.0.1:0".parse().expect("addr");
        let state = Arc::new(State::new(cfg, addr).expect("state"));
        let handles = spawn_workers(workers, Arc::clone(&state.queue), Arc::clone(&state.metrics));
        (state, handles)
    }

    fn finish(state: &Arc<State>, handles: Vec<JoinHandle<()>>) {
        state.queue.drain();
        for h in handles {
            h.join().expect("worker join");
        }
    }

    fn request(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    #[test]
    fn routing_covers_unknown_paths_and_methods() {
        let (state, handles) = test_state(0);
        let err = route(&state, &request("GET", "/nope", b"")).expect_err("404");
        assert_eq!(err.status, 404);
        let resp = route(&state, &request("DELETE", "/v1/run", b"")).expect("405 response");
        assert_eq!(resp.status, 405);
        assert!(resp.extra.iter().any(|(n, v)| *n == "Allow" && v == "POST"));
        let resp = route(&state, &request("POST", "/metrics", b"")).expect("405 response");
        assert_eq!(resp.status, 405);
        let health = route(&state, &request("GET", "/healthz", b"")).expect("healthz");
        assert_eq!(
            health.body.as_str(),
            "{\"ok\": true, \"draining\": false, \"state\": \"healthy\"}"
        );
        finish(&state, handles);
    }

    #[test]
    fn run_requests_are_validated_before_any_work_is_queued() {
        let (state, handles) = test_state(0);
        // (body, expected fragment, case)
        let table: &[(&str, &str, &str)] = &[
            ("[]", "must be a JSON object", "non-object body"),
            ("{\"zap\": 1}", "unknown key `zap`", "unknown key"),
            ("{\"bench\": \"go\", \"asm\": \"halt\"}", "exactly one", "both program forms"),
            ("{}", "exactly one", "no program"),
            ("{\"bench\": \"nope\"}", "unknown bench", "bad bench"),
            ("{\"bench\": \"go\", \"config\": \"warp\"}", "unknown config", "bad config"),
            ("{\"bench\": \"go\", \"scale\": 0}", "`scale` must be", "zero scale"),
            ("{\"bench\": \"go\", \"trace\": 999999}", "`trace` must be", "trace too big"),
            ("{\"asm\": \"not an opcode\"}", "asm error", "bad assembly"),
        ];
        for (body, fragment, case) in table {
            let err = handle_run(&state, body.as_bytes()).expect_err(case);
            assert_eq!(err.status, 400, "{case}");
            assert!(err.message.contains(fragment), "{case}: {}", err.message);
        }
        // Validation failures must not have queued anything.
        assert_eq!(state.queue.depth(), 0);
        finish(&state, handles);
    }

    #[test]
    fn a_run_miss_then_hit_returns_byte_identical_bodies() {
        let (state, handles) = test_state(1);
        let body = b"{\"bench\": \"go\", \"max_cycles\": 20000}";
        let miss = handle_run(&state, body).expect("miss");
        assert_eq!(miss.status, 200);
        assert!(miss.extra.iter().any(|(n, v)| *n == "X-Cache" && v == "miss"));
        let hit = handle_run(&state, body).expect("hit");
        assert!(hit.extra.iter().any(|(n, v)| *n == "X-Cache" && v == "hit"));
        assert_eq!(miss.body.as_str(), hit.body.as_str(), "hit must be byte-identical");
        assert!(miss.body.contains("\"schema\": \"vpir-serve-run-v1\""), "{}", miss.body);
        assert!(miss.body.contains("\"stats\": {"), "{}", miss.body);
        assert_eq!(state.metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(state.metrics.cache_misses.load(Ordering::Relaxed), 1);
        finish(&state, handles);
    }

    #[test]
    fn an_inline_asm_run_returns_trace_records() {
        let (state, handles) = test_state(1);
        let body = b"{\"asm\": \"li r1, 7\\naddi r1, r1, 1\\nhalt\", \"trace\": 8}";
        let resp = handle_run(&state, body).expect("inline run");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"program\": \"inline\""), "{}", resp.body);
        assert!(resp.body.contains("\"halted\": true"), "{}", resp.body);
        assert!(resp.body.contains("\"outcome\": \"executed\""), "{}", resp.body);
        finish(&state, handles);
    }

    #[test]
    fn analyze_requests_are_validated_before_any_work_is_queued() {
        let (state, handles) = test_state(0);
        let table: &[(&str, &str, &str)] = &[
            ("[]", "must be a JSON object", "non-object body"),
            ("{\"zap\": 1}", "unknown key `zap`", "unknown key"),
            ("{}", "missing required key `asm`", "no program"),
            ("{\"asm\": \"not an opcode\"}", "asm error: inline:1:", "bad assembly"),
        ];
        for (body, fragment, case) in table {
            let err = handle_analyze(&state, body.as_bytes()).expect_err(case);
            assert_eq!(err.status, 400, "{case}");
            assert!(err.message.contains(fragment), "{case}: {}", err.message);
        }
        assert_eq!(state.queue.depth(), 0);
        finish(&state, handles);
    }

    #[test]
    fn an_analyze_miss_then_hit_returns_byte_identical_findings() {
        let (state, handles) = test_state(1);
        // `add r1, r2, r0` reads r2 before any write: one live L2.
        let body = b"{\"asm\": \"main: add r1, r2, r0\\nhalt\"}";
        let miss = handle_analyze(&state, body).expect("miss");
        assert_eq!(miss.status, 200);
        assert!(miss.extra.iter().any(|(n, v)| *n == "X-Cache" && v == "miss"));
        assert!(miss.body.contains("\"schema\": \"vpir-serve-analyze-v1\""), "{}", miss.body);
        assert!(miss.body.contains("\"live\": 1"), "{}", miss.body);
        assert!(miss.body.contains("\"rule\":\"L2\""), "{}", miss.body);
        let hit = handle_analyze(&state, body).expect("hit");
        assert!(hit.extra.iter().any(|(n, v)| *n == "X-Cache" && v == "hit"));
        assert_eq!(miss.body.as_str(), hit.body.as_str(), "hit must be byte-identical");

        // A clean program reports zero live findings and its loop.
        let clean = b"{\"asm\": \"li r1, 3\\nloop: addi r1, r1, -1\\nbne r1, r0, loop\\nhalt\"}";
        let resp = handle_analyze(&state, clean).expect("clean");
        assert!(resp.body.contains("\"live\": 0"), "{}", resp.body);
        assert!(resp.body.contains("\"loops\":1"), "{}", resp.body);
        finish(&state, handles);
    }

    #[test]
    fn a_full_queue_surfaces_backpressure_as_503() {
        // Zero workers: pushed jobs never drain, so the queue depth is
        // fully deterministic.
        let cfg = ServeConfig { workers: 0, queue_capacity: 1, ..ServeConfig::default() };
        let addr: SocketAddr = "127.0.0.1:0".parse().expect("addr");
        let state = Arc::new(State::new(cfg, addr).expect("state"));
        // Occupy the single queue slot directly; pushing via handle_run
        // would block the test on the job's result channel.
        assert!(state.queue.try_push(Box::new(|| {})).is_ok());
        let err = handle_run(&state, b"{\"bench\": \"go\"}").expect_err("503");
        assert_eq!(err.status, 503);
        let resp = Response::from_error(&err);
        assert!(resp.extra.iter().any(|(n, v)| *n == "Retry-After" && v == "1"));
        // Draining takes precedence once shutdown begins.
        state.queue.drain();
        let err = handle_run(&state, b"{\"bench\": \"perl\"}").expect_err("draining");
        assert_eq!(err.status, 503);
        assert!(err.message.contains("draining"), "{}", err.message);
    }

    #[test]
    fn shedding_refuses_matrix_misses_but_serves_cached_hits() {
        // Capacity 4 with 2 queued jobs: exactly at the shed watermark.
        let cfg = ServeConfig { workers: 0, queue_capacity: 4, ..ServeConfig::default() };
        let addr: SocketAddr = "127.0.0.1:0".parse().expect("addr");
        let state = Arc::new(State::new(cfg, addr).expect("state"));
        assert!(state.queue.try_push(Box::new(|| {})).is_ok());
        assert!(state.queue.try_push(Box::new(|| {})).is_ok());
        assert_eq!(state.shed(), ShedState::Shedding);

        // The expensive endpoint is refused while shedding...
        let err = handle_matrix(&state, b"{\"bench\": \"go\"}").expect_err("shed 503");
        assert_eq!(err.status, 503);
        assert!(err.message.contains("shedding"), "{}", err.message);
        assert_eq!(state.metrics.requests_shed.load(Ordering::Relaxed), 1);

        // ...but a cached hit on any endpoint is still answered, even
        // saturated. The analyze key is a pure function of the source,
        // so the test can seed the cache directly.
        let source = "halt";
        let key = fnv1a64(&[b"analyze-v1", source.as_bytes()]);
        state.cache.insert(key, Arc::new("{\"canned\": true}".to_string()));
        assert!(state.queue.try_push(Box::new(|| {})).is_ok());
        assert!(state.queue.try_push(Box::new(|| {})).is_ok());
        assert_eq!(state.shed(), ShedState::Saturated);
        let hit = handle_analyze(&state, b"{\"asm\": \"halt\"}").expect("hit during saturation");
        assert_eq!(hit.status, 200);
        assert!(hit.extra.iter().any(|(n, v)| *n == "X-Cache" && v == "hit"));

        // A saturated miss is refused on every endpoint.
        let err = handle_run(&state, b"{\"bench\": \"go\"}").expect_err("saturated 503");
        assert_eq!(err.status, 503);
        assert!(err.message.contains("saturated"), "{}", err.message);

        // /healthz reports the state by name.
        let health = route(&state, &request("GET", "/healthz", b"")).expect("healthz");
        assert!(health.body.contains("\"state\": \"saturated\""), "{}", health.body);
    }

    #[test]
    fn a_request_past_the_deadline_degrades_to_a_structured_504() {
        // Zero workers: the enqueued job never runs, so the handler's
        // wait deterministically outlives a short deadline.
        let cfg = ServeConfig {
            workers: 0,
            request_deadline: Duration::from_millis(25),
            ..ServeConfig::default()
        };
        let addr: SocketAddr = "127.0.0.1:0".parse().expect("addr");
        let state = Arc::new(State::new(cfg, addr).expect("state"));
        let resp = handle_run(&state, b"{\"bench\": \"go\"}").expect("504 response");
        assert_eq!(resp.status, 504);
        assert!(resp.body.contains("\"schema\": \"vpir-serve-error-v1\""), "{}", resp.body);
        assert!(resp.body.contains("\"kind\": \"deadline\""), "{}", resp.body);
        assert_eq!(state.metrics.deadline_exceeded.load(Ordering::Relaxed), 1);
        state.queue.clear();
    }

    #[test]
    fn a_matrix_request_with_an_injected_panic_degrades_to_failure_rows() {
        let (state, handles) = test_state(1);
        let body = b"{\"bench\": \"go\", \"scale\": 2, \"max_cycles\": 100000, \
                      \"limit_insts\": 20000, \"inject_fault\": \"go/base:panic\"}";
        let resp = handle_matrix(&state, body).expect("matrix");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"schema\": \"vpir-serve-matrix-v1\""), "{}", resp.body);
        assert!(resp.body.contains("\"kind\": \"panic\""), "{}", resp.body);
        assert!(resp.body.contains("\"config\": \"base\""), "{}", resp.body);
        assert!(state.metrics.matrix_cells_failed.load(Ordering::Relaxed) >= 1);
        finish(&state, handles);
    }

    #[test]
    fn matrix_requests_validate_inject_fault_against_the_vocabulary() {
        let (state, handles) = test_state(0);
        let err = handle_matrix(&state, b"{\"bench\": \"go\", \"inject_fault\": \"go/warp\"}")
            .expect_err("bad fault config");
        assert_eq!(err.status, 400);
        assert!(err.message.contains("unknown inject_fault config"), "{}", err.message);
        let err = handle_matrix(&state, b"{\"bench\": \"go\", \"inject_fault\": \"nope/base\"}")
            .expect_err("bad fault bench");
        assert_eq!(err.status, 400);
        assert!(err.message.contains("unknown bench"), "{}", err.message);
        finish(&state, handles);
    }

    #[test]
    fn a_cache_dir_state_round_trips_bodies_across_instances() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/scratch/serve-lib/state-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            workers: 1,
            cache_dir: Some(dir.clone()),
            request_deadline: Duration::from_secs(30),
            ..ServeConfig::default()
        };
        let (state, handles) = test_state_with(cfg.clone());
        let body = b"{\"asm\": \"halt\"}";
        let miss = handle_analyze(&state, body).expect("miss");
        assert_eq!(miss.status, 200);
        finish(&state, handles);
        drop(state);

        // A fresh State over the same directory answers from disk.
        let (state, handles) = test_state_with(cfg);
        let hit = handle_analyze(&state, body).expect("disk hit");
        assert_eq!(hit.status, 200);
        assert!(
            hit.extra.iter().any(|(n, v)| *n == "X-Cache" && v == "hit-disk"),
            "{:?}",
            hit.extra
        );
        assert_eq!(hit.body.as_str(), miss.body.as_str(), "byte-identical across restart");
        assert_eq!(state.metrics.cache_hits_disk.load(Ordering::Relaxed), 1);
        finish(&state, handles);
    }
}
