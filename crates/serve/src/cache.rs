//! The content-addressed result cache.
//!
//! The key is an FNV-1a hash over the serialized program image plus the
//! canonical configuration parameters; the value is the complete
//! rendered response body. Because the simulator is deterministic, a
//! hit and the miss that populated it return byte-identical bodies —
//! the service-level analogue of the paper's reuse buffer, where a
//! recognized (program, config) pair short-circuits re-execution.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a sequence of byte chunks, hashing a separator byte
/// between chunks so `["ab", "c"]` and `["a", "bc"]` differ.
pub fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    let mut step = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    };
    for (i, chunk) in chunks.iter().enumerate() {
        if i > 0 {
            step(0xff);
        }
        for &byte in *chunk {
            step(byte);
        }
    }
    hash
}

/// A bounded map from request hash to rendered response body.
#[derive(Debug)]
pub struct ResultCache {
    map: Mutex<BTreeMap<u64, Arc<String>>>,
    capacity: usize,
}

impl ResultCache {
    /// An empty cache that holds at most `capacity` entries.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache { map: Mutex::new(BTreeMap::new()), capacity }
    }

    /// Looks up the cached body for `key`, if any.
    pub fn get(&self, key: u64) -> Option<Arc<String>> {
        self.lock().get(&key).cloned()
    }

    /// Inserts `body` under `key`. Returns `false` when the cache is at
    /// capacity and `key` is not already present — the entry is simply
    /// not retained (bounded memory beats eviction cleverness here; the
    /// benchmark vocabulary is small enough that the cap is generous).
    pub fn insert(&self, key: u64, body: Arc<String>) -> bool {
        let mut map = self.lock();
        if map.len() >= self.capacity && !map.contains_key(&key) {
            return false;
        }
        map.insert(key, body);
        true
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, Arc<String>>> {
        // A panicking job cannot hold this lock (jobs touch the cache
        // only after simulation finishes), but stay poison-safe anyway.
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_chunk_boundaries() {
        assert_ne!(fnv1a64(&[b"ab", b"c"]), fnv1a64(&[b"a", b"bc"]));
        assert_ne!(fnv1a64(&[b"ab"]), fnv1a64(&[b"ab", b""]));
        assert_eq!(fnv1a64(&[b"ab", b"c"]), fnv1a64(&[b"ab", b"c"]));
        // Reference vector: FNV-1a 64 of "a" is 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(&[b"a"]), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn cache_bounds_its_size_and_round_trips() {
        let cache = ResultCache::new(2);
        assert!(cache.is_empty());
        assert!(cache.insert(1, Arc::new("one".to_string())));
        assert!(cache.insert(2, Arc::new("two".to_string())));
        // At capacity: a new key is refused, an existing key updates.
        assert!(!cache.insert(3, Arc::new("three".to_string())));
        assert!(cache.insert(2, Arc::new("two'".to_string())));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(1).as_deref().map(String::as_str), Some("one"));
        assert_eq!(cache.get(2).as_deref().map(String::as_str), Some("two'"));
        assert_eq!(cache.get(3), None);
    }
}
