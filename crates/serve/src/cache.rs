//! The content-addressed result cache: a bounded in-memory LRU tier in
//! front of an optional crash-safe disk tier.
//!
//! The key is an FNV-1a hash over the serialized program image plus the
//! canonical configuration parameters; the value is the complete
//! rendered response body. Because the simulator is deterministic, a
//! hit and the miss that populated it return byte-identical bodies —
//! the service-level analogue of the paper's reuse buffer, where a
//! recognized (program, config) pair short-circuits re-execution. And
//! like the paper's RB, the buffer is *managed*: both tiers are
//! bounded (entries and bytes in memory, bytes on disk) with LRU
//! eviction, so a hostile or merely long-lived workload cannot grow
//! the cache without bound.
//!
//! A memory hit answers `X-Cache: hit`; a disk hit (after a restart,
//! or after memory eviction) re-verifies the stored frame, promotes
//! the body back into memory, and answers `X-Cache: hit-disk`. A
//! corrupted disk entry is quarantined by the store and surfaces here
//! as a plain miss — never wrong bytes, never a panic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::store::{DiskStore, StoreStats};

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a sequence of byte chunks, hashing a separator byte
/// between chunks so `["ab", "c"]` and `["a", "bc"]` differ.
pub fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    let mut step = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    };
    for (i, chunk) in chunks.iter().enumerate() {
        if i > 0 {
            step(0xff);
        }
        for &byte in *chunk {
            step(byte);
        }
    }
    hash
}

/// Which tier answered a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitTier {
    /// Answered from the in-memory LRU (`X-Cache: hit`).
    Memory,
    /// Answered from the disk store (`X-Cache: hit-disk`).
    Disk,
}

struct MemEntry {
    body: Arc<String>,
    seq: u64,
}

struct MemInner {
    /// key → body + recency sequence.
    map: BTreeMap<u64, MemEntry>,
    /// recency sequence → key (ascending = least recently used first).
    recency: BTreeMap<u64, u64>,
    next_seq: u64,
    bytes: u64,
    evicted: u64,
}

impl MemInner {
    fn touch(&mut self, key: u64) {
        let Some(entry) = self.map.get_mut(&key) else { return };
        self.recency.remove(&entry.seq);
        entry.seq = self.next_seq;
        self.recency.insert(self.next_seq, key);
        self.next_seq += 1;
    }

    fn insert(&mut self, key: u64, body: Arc<String>, max_entries: usize, max_bytes: u64) {
        let body_bytes = body.len() as u64;
        if body_bytes > max_bytes || max_entries == 0 {
            return; // never cacheable in memory; the disk tier may still hold it
        }
        if let Some(old) = self.map.remove(&key) {
            self.recency.remove(&old.seq);
            self.bytes = self.bytes.saturating_sub(old.body.len() as u64);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.map.insert(key, MemEntry { body, seq });
        self.recency.insert(seq, key);
        self.bytes += body_bytes;
        while self.map.len() > max_entries || self.bytes > max_bytes {
            let Some((&victim_seq, &victim_key)) = self.recency.iter().next() else { break };
            if victim_key == key {
                break; // never evict the entry just inserted
            }
            self.recency.remove(&victim_seq);
            if let Some(old) = self.map.remove(&victim_key) {
                self.bytes = self.bytes.saturating_sub(old.body.len() as u64);
            }
            self.evicted += 1;
        }
    }
}

/// The two-tier bounded result cache.
pub struct ResultCache {
    mem: Mutex<MemInner>,
    max_entries: usize,
    max_bytes: u64,
    store: Option<DiskStore>,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("entries", &self.len())
            .field("max_entries", &self.max_entries)
            .field("max_bytes", &self.max_bytes)
            .field("store", &self.store)
            .finish()
    }
}

impl ResultCache {
    /// An empty cache holding at most `max_entries` bodies totalling at
    /// most `max_bytes` in memory, with `store` as the durable tier.
    pub fn new(max_entries: usize, max_bytes: u64, store: Option<DiskStore>) -> ResultCache {
        ResultCache {
            mem: Mutex::new(MemInner {
                map: BTreeMap::new(),
                recency: BTreeMap::new(),
                next_seq: 0,
                bytes: 0,
                evicted: 0,
            }),
            max_entries,
            max_bytes,
            store,
        }
    }

    /// Looks up `key`: memory first, then the disk tier (promoting a
    /// verified disk body back into memory).
    pub fn get(&self, key: u64) -> Option<(Arc<String>, HitTier)> {
        {
            let mut mem = self.lock();
            if let Some(entry) = mem.map.get(&key) {
                let body = Arc::clone(&entry.body);
                mem.touch(key);
                return Some((body, HitTier::Memory));
            }
        }
        let store = self.store.as_ref()?;
        let bytes = store.load(key)?;
        // The frame checksum already vouched for these bytes; they were
        // written from a `String`, so this conversion cannot fail in
        // practice — but a failure must still read as a miss.
        let body = Arc::new(String::from_utf8(bytes).ok()?);
        self.lock().insert(key, Arc::clone(&body), self.max_entries, self.max_bytes);
        Some((body, HitTier::Disk))
    }

    /// Inserts `body` under `key` into both tiers.
    pub fn insert(&self, key: u64, body: Arc<String>) {
        if let Some(store) = &self.store {
            store.insert(key, body.as_bytes());
        }
        self.lock().insert(key, body, self.max_entries, self.max_bytes);
    }

    /// Number of entries currently held in memory.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the memory tier holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total body bytes currently held in memory.
    pub fn mem_bytes(&self) -> u64 {
        self.lock().bytes
    }

    /// Entries evicted from the memory tier since startup.
    pub fn mem_evicted(&self) -> u64 {
        self.lock().evicted
    }

    /// Disk-tier statistics, when a disk tier is configured.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(DiskStore::stats)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemInner> {
        // A panicking job cannot hold this lock (jobs touch the cache
        // only after simulation finishes), but stay poison-safe anyway.
        self.mem.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::{Path, PathBuf};

    fn body(text: &str) -> Arc<String> {
        Arc::new(text.to_string())
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/scratch/cache")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv_distinguishes_chunk_boundaries() {
        assert_ne!(fnv1a64(&[b"ab", b"c"]), fnv1a64(&[b"a", b"bc"]));
        assert_ne!(fnv1a64(&[b"ab"]), fnv1a64(&[b"ab", b""]));
        assert_eq!(fnv1a64(&[b"ab", b"c"]), fnv1a64(&[b"ab", b"c"]));
        // Reference vector: FNV-1a 64 of "a" is 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(&[b"a"]), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn lru_evicts_the_coldest_entry_at_the_entry_bound() {
        let cache = ResultCache::new(2, 1 << 20, None);
        assert!(cache.is_empty());
        cache.insert(1, body("one"));
        cache.insert(2, body("two"));
        // Touch 1 so 2 is the LRU victim when 3 arrives.
        assert!(cache.get(1).is_some());
        cache.insert(3, body("three"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.mem_evicted(), 1);
        assert!(cache.get(2).is_none(), "LRU entry evicted");
        assert_eq!(cache.get(1).map(|(b, _)| b.to_string()), Some("one".to_string()));
        assert_eq!(cache.get(3).map(|(b, _)| b.to_string()), Some("three".to_string()));
    }

    #[test]
    fn byte_bound_holds_even_for_few_entries() {
        let cache = ResultCache::new(1024, 10, None);
        cache.insert(1, body("aaaa"));
        cache.insert(2, body("bbbb"));
        cache.insert(3, body("cccc"));
        assert!(cache.mem_bytes() <= 10, "bytes: {}", cache.mem_bytes());
        assert_eq!(cache.mem_evicted(), 1);
        // A body over the byte budget is simply not retained.
        cache.insert(4, body("xxxxxxxxxxxxxxxx"));
        assert!(cache.get(4).is_none());
        // Re-inserting an existing key replaces, not duplicates.
        cache.insert(3, body("c'"));
        assert_eq!(cache.get(3).map(|(b, _)| b.to_string()), Some("c'".to_string()));
    }

    #[test]
    fn disk_tier_answers_after_memory_eviction_and_promotes() {
        let dir = scratch("promote");
        let store = DiskStore::open(&dir, 1 << 20, None).expect("open");
        let cache = ResultCache::new(1, 1 << 20, Some(store));
        cache.insert(1, body("first"));
        cache.insert(2, body("second")); // evicts 1 from memory; disk keeps both
        let (b, tier) = cache.get(1).expect("disk hit");
        assert_eq!(tier, HitTier::Disk);
        assert_eq!(b.as_str(), "first");
        // Promoted back into memory: the next hit is a memory hit.
        let (_, tier) = cache.get(1).expect("mem hit");
        assert_eq!(tier, HitTier::Memory);
    }
}
