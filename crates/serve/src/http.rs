//! A minimal, defensive HTTP/1.1 layer over `std::io`.
//!
//! The parser accepts the small slice of HTTP that `vpir serve` speaks
//! (one request per connection, `Connection: close` responses) and maps
//! every malformed input to a structured [`HttpError`] instead of a
//! panic — this module is inside the workspace's R2 panic-freedom gate,
//! so a hostile byte stream must never take a worker down.

use std::io::{Read, Write};

/// Upper bound on the request line + headers (16 KiB is far beyond any
/// legitimate request this service sees).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target path (query strings are not used by this API).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }
}

/// A request that could not be served, with the HTTP status to answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code (400, 404, 405, 411, 413, 500, 503).
    pub status: u16,
    /// Human-readable detail, emitted in the JSON error body.
    pub message: String,
}

impl HttpError {
    /// Builds an error with the given status and detail message.
    pub fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError { status, message: message.into() }
    }
}

/// The standard reason phrase for the statuses this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Parses the head (request line + headers) of a request.
///
/// Split out from the socket reader so the malformed-request table
/// tests can drive it directly on byte strings.
pub fn parse_head(text: &str) -> Result<(String, String, Vec<(String, String)>), HttpError> {
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or_else(|| HttpError::new(400, "empty request line"))?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::new(
                400,
                format!("malformed request line `{request_line}`"),
            ))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::new(400, format!("unsupported version `{version}`")));
    }
    if !path.starts_with('/') {
        return Err(HttpError::new(400, format!("bad request target `{path}`")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header line `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), path.to_string(), headers))
}

/// Reads one full request from `stream`.
///
/// Bodies are accepted only with an explicit `Content-Length`; a POST
/// without one is `411`, and a declared length over `max_body` is `413`
/// (rejected before any body byte is read, so an oversized upload
/// cannot occupy memory).
pub fn read_request<R: Read>(stream: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(400, "request head too large"));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::new(400, format!("read error: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "truncated request (connection closed mid-head)"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head_text = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "request head is not UTF-8"))?;
    let (method, path, headers) = parse_head(head_text)?;

    let declared_len = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::new(400, format!("bad Content-Length `{v}`")))
        })
        .transpose()?;

    let body_len = match (method.as_str(), declared_len) {
        ("POST", None) => return Err(HttpError::new(411, "POST requires Content-Length")),
        ("POST", Some(n)) => n,
        (_, Some(n)) if n > 0 => {
            return Err(HttpError::new(400, format!("unexpected body on {method}")))
        }
        _ => 0,
    };
    if body_len > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {body_len} bytes exceeds the {max_body}-byte limit"),
        ));
    }

    let mut body: Vec<u8> = buf.split_off(head_end + 4);
    while body.len() < body_len {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::new(400, format!("read error: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "truncated request (connection closed mid-body)"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(body_len);
    Ok(Request { method, path, headers, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a full response (status line, headers, body) and flushes.
///
/// Every response carries `Connection: close`; the service speaks one
/// request per connection by design.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        status_reason(status),
        content_type,
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(bytes: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let mut cursor = std::io::Cursor::new(bytes.to_vec());
        read_request(&mut cursor, max_body)
    }

    #[test]
    fn parses_a_full_post() {
        let r = req(
            b"POST /v1/run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .expect("parses");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/run");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("Content-Length"), Some("4"));
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn malformed_requests_map_to_the_right_status() {
        // (raw bytes, expected status, case)
        let table: &[(&[u8], u16, &str)] = &[
            (b"GET\r\n\r\n", 400, "truncated request line"),
            (b"GET /x\r\n\r\n", 400, "missing version"),
            (b"GET /x HTTP/2.0\r\n\r\n", 400, "unsupported version"),
            (b"GET x HTTP/1.1\r\n\r\n", 400, "target without leading slash"),
            (b"POST /v1/run HTTP/1.1\r\n\r\n", 411, "POST without Content-Length"),
            (
                b"POST /v1/run HTTP/1.1\r\nContent-Length: zap\r\n\r\n",
                400,
                "unparseable Content-Length",
            ),
            (
                b"POST /v1/run HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
                413,
                "declared body over the limit",
            ),
            (
                b"GET /healthz HTTP/1.1\r\nNoColonHere\r\n\r\n",
                400,
                "malformed header line",
            ),
            (b"POST /v1/run HTTP/1.1\r\nContent-Length: 9\r\n\r\nabc", 400, "body cut short"),
        ];
        for (bytes, want, case) in table {
            let got = req(bytes, 1024);
            assert_eq!(
                got.as_ref().err().map(|e| e.status),
                Some(*want),
                "{case}: {got:?}"
            );
        }
    }

    #[test]
    fn head_larger_than_the_cap_is_rejected() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_HEAD_BYTES + 8));
        assert_eq!(req(&raw, 1024).err().map(|e| e.status), Some(400));
    }

    #[test]
    fn response_wire_format_is_exact() {
        let mut out = Vec::new();
        write_response(&mut out, 503, "application/json", &[("Retry-After", "1".to_string())], b"{}")
            .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(
            text,
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
             Content-Length: 2\r\nConnection: close\r\nRetry-After: 1\r\n\r\n{}"
        );
    }
}
