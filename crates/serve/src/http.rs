//! A minimal, defensive HTTP/1.1 layer over `std::io`.
//!
//! The parser accepts the small slice of HTTP that `vpir serve` speaks
//! — keep-alive connections with optional pipelining, explicit
//! `Content-Length` bodies — and maps every malformed input to a
//! structured [`HttpError`] instead of a panic. This module is inside
//! the workspace's R2 panic-freedom gate, so a hostile byte stream must
//! never take a worker down.
//!
//! Timeout semantics are split by *where* the stall happens. The
//! connection handler arms the socket's read timeout; when a read then
//! fails with `WouldBlock`/`TimedOut`, [`ConnReader::next_request`]
//! answers by buffer state: an **empty** buffer is an idle keep-alive
//! connection going away quietly (`Ok(None)`), while **partial** bytes
//! mean a slowloris-style stall mid-request and become a `408` the
//! handler sends before closing. A worker is therefore never wedged on
//! a slow client for longer than one read timeout.

use std::io::{Read, Write};

/// Upper bound on the request line + headers (16 KiB is far beyond any
/// legitimate request this service sees).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target path (query strings are not used by this API).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }
}

/// A request that could not be served, with the HTTP status to answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code (400, 404, 405, 408, 411, 413, 500, 503, 504).
    pub status: u16,
    /// Human-readable detail, emitted in the JSON error body.
    pub message: String,
}

impl HttpError {
    /// Builds an error with the given status and detail message.
    pub fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError { status, message: message.into() }
    }
}

/// The standard reason phrase for the statuses this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A parsed request head: method, path, headers, and the keep-alive
/// decision derived from the version and `Connection` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// Request method, as sent.
    pub method: String,
    /// Request target path.
    pub path: String,
    /// Header pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Whether the connection should stay open after this exchange.
    pub keep_alive: bool,
}

/// Parses the head (request line + headers) of a request.
///
/// Split out from the socket reader so the malformed-request table
/// tests can drive it directly on byte strings.
pub fn parse_head(text: &str) -> Result<Head, HttpError> {
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or_else(|| HttpError::new(400, "empty request line"))?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::new(
                400,
                format!("malformed request line `{request_line}`"),
            ))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::new(400, format!("unsupported version `{version}`")));
    }
    if !path.starts_with('/') {
        return Err(HttpError::new(400, format!("bad request target `{path}`")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header line `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match version {
        "HTTP/1.1" => connection.as_deref() != Some("close"),
        _ => connection.as_deref() == Some("keep-alive"),
    };
    Ok(Head {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        keep_alive,
    })
}

/// A buffered request reader that persists across the requests of one
/// keep-alive connection, so pipelined requests queued in a single TCP
/// segment are each served in order.
#[derive(Debug)]
pub struct ConnReader<R> {
    stream: R,
    buf: Vec<u8>,
}

impl<R: Read> ConnReader<R> {
    /// Wraps a stream with an empty carry-over buffer.
    pub fn new(stream: R) -> ConnReader<R> {
        ConnReader { stream, buf: Vec::with_capacity(1024) }
    }

    /// Whether bytes from a previous read are waiting to be parsed
    /// (i.e. a pipelined request is already in flight).
    pub fn has_buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Pulls one chunk from the stream into the buffer. `Ok(true)` if
    /// bytes arrived, `Ok(false)` on EOF; timeouts surface as `Err`.
    fn fill(&mut self) -> Result<bool, std::io::Error> {
        let mut chunk = [0u8; 1024];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
        Ok(n > 0)
    }

    /// Maps a failed or empty read to the protocol outcome: quiet close
    /// when the connection is idle, `408`/`400` when a request was cut
    /// off mid-flight.
    fn stall(&self, err: Option<std::io::Error>) -> Result<Option<Request>, HttpError> {
        let idle = self.buf.is_empty();
        match err {
            Some(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if idle {
                    Ok(None)
                } else {
                    Err(HttpError::new(408, "client stalled mid-request"))
                }
            }
            Some(e) => Err(HttpError::new(400, format!("read error: {e}"))),
            None if idle => Ok(None),
            None => Err(HttpError::new(400, "truncated request (connection closed mid-head)")),
        }
    }

    /// Reads the next full request.
    ///
    /// `Ok(None)` means the connection ended cleanly between requests
    /// (EOF or idle timeout with nothing buffered) — close it without a
    /// response. Bodies are accepted only with an explicit
    /// `Content-Length`; a POST without one is `411`, and a declared
    /// length over `max_body` is `413`, rejected before any body byte
    /// is read so an oversized upload cannot occupy memory.
    pub fn next_request(&mut self, max_body: usize) -> Result<Option<Request>, HttpError> {
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::new(400, "request head too large"));
            }
            match self.fill() {
                Ok(true) => {}
                Ok(false) => return self.stall(None),
                Err(e) => return self.stall(Some(e)),
            }
        };

        let head_text = std::str::from_utf8(self.buf.get(..head_end).unwrap_or_default())
            .map_err(|_| HttpError::new(400, "request head is not UTF-8"))?;
        let head = parse_head(head_text)?;

        let declared_len = head
            .headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map(|(_, v)| {
                v.parse::<usize>()
                    .map_err(|_| HttpError::new(400, format!("bad Content-Length `{v}`")))
            })
            .transpose()?;

        let body_len = match (head.method.as_str(), declared_len) {
            ("POST", None) => return Err(HttpError::new(411, "POST requires Content-Length")),
            ("POST", Some(n)) => n,
            (_, Some(n)) if n > 0 => {
                return Err(HttpError::new(
                    400,
                    format!("unexpected body on {}", head.method),
                ))
            }
            _ => 0,
        };
        if body_len > max_body {
            return Err(HttpError::new(
                413,
                format!("body of {body_len} bytes exceeds the {max_body}-byte limit"),
            ));
        }

        let body_start = head_end + 4;
        while self.buf.len() < body_start + body_len {
            match self.fill() {
                Ok(true) => {}
                Ok(false) => {
                    return Err(HttpError::new(
                        400,
                        "truncated request (connection closed mid-body)",
                    ))
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(HttpError::new(408, "client stalled mid-body"))
                }
                Err(e) => return Err(HttpError::new(400, format!("read error: {e}"))),
            }
        }
        // Consume exactly this request; later pipelined bytes stay
        // buffered for the next call.
        let mut frame: Vec<u8> = self.buf.drain(..body_start + body_len).collect();
        let body = frame.split_off(body_start);
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            headers: head.headers,
            body,
            keep_alive: head.keep_alive,
        }))
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a full response (status line, headers, body) and flushes.
///
/// `close` selects the `Connection:` header; the handler sets it from
/// the request's keep-alive bit, the per-connection request cap, and
/// the error class (every 4xx/5xx closes).
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        status_reason(status),
        content_type,
        body.len(),
        connection,
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(bytes: &[u8], max_body: usize) -> Result<Option<Request>, HttpError> {
        let mut reader = ConnReader::new(std::io::Cursor::new(bytes.to_vec()));
        reader.next_request(max_body)
    }

    #[test]
    fn parses_a_full_post() {
        let r = req(
            b"POST /v1/run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .expect("parses")
        .expect("present");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/run");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("Content-Length"), Some("4"));
        assert_eq!(r.body, b"abcd");
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        // (raw head, expected keep_alive, case)
        let table: &[(&str, bool, &str)] = &[
            ("GET /healthz HTTP/1.1\r\n", true, "1.1 default"),
            ("GET /healthz HTTP/1.1\r\nConnection: close\r\n", false, "1.1 close"),
            ("GET /healthz HTTP/1.1\r\nConnection: Close\r\n", false, "1.1 close, mixed case"),
            ("GET /healthz HTTP/1.0\r\n", false, "1.0 default"),
            ("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n", true, "1.0 opt-in"),
        ];
        for (raw, want, case) in table {
            let head = parse_head(raw).expect(case);
            assert_eq!(head.keep_alive, *want, "{case}");
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n\
                    POST /v1/run HTTP/1.1\r\nContent-Length: 2\r\n\r\nok\
                    GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = ConnReader::new(std::io::Cursor::new(raw.to_vec()));
        let first = reader.next_request(1024).expect("first").expect("present");
        assert_eq!(first.path, "/healthz");
        assert!(reader.has_buffered(), "second request already buffered");
        let second = reader.next_request(1024).expect("second").expect("present");
        assert_eq!(second.path, "/v1/run");
        assert_eq!(second.body, b"ok");
        let third = reader.next_request(1024).expect("third").expect("present");
        assert_eq!(third.path, "/metrics");
        assert!(!third.keep_alive);
        assert!(reader.next_request(1024).expect("eof").is_none(), "clean end of stream");
    }

    #[test]
    fn malformed_requests_map_to_the_right_status() {
        // (raw bytes, expected status, case)
        let table: &[(&[u8], u16, &str)] = &[
            (b"GET\r\n\r\n", 400, "truncated request line"),
            (b"GET /x\r\n\r\n", 400, "missing version"),
            (b"GET /x HTTP/2.0\r\n\r\n", 400, "unsupported version"),
            (b"GET x HTTP/1.1\r\n\r\n", 400, "target without leading slash"),
            (b"POST /v1/run HTTP/1.1\r\n\r\n", 411, "POST without Content-Length"),
            (
                b"POST /v1/run HTTP/1.1\r\nContent-Length: zap\r\n\r\n",
                400,
                "unparseable Content-Length",
            ),
            (
                b"POST /v1/run HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
                413,
                "declared body over the limit",
            ),
            (
                b"GET /healthz HTTP/1.1\r\nNoColonHere\r\n\r\n",
                400,
                "malformed header line",
            ),
            (b"POST /v1/run HTTP/1.1\r\nContent-Length: 9\r\n\r\nabc", 400, "body cut short"),
            (b"GET /healthz HTT", 400, "EOF mid-head"),
        ];
        for (bytes, want, case) in table {
            let got = req(bytes, 1024);
            assert_eq!(
                got.as_ref().err().map(|e| e.status),
                Some(*want),
                "{case}: {got:?}"
            );
        }
    }

    #[test]
    fn eof_on_an_idle_connection_is_a_quiet_close() {
        assert_eq!(req(b"", 1024), Ok(None));
    }

    /// A stream that yields its script, then times out forever — the
    /// shape of a slowloris client as seen through a socket read
    /// timeout.
    struct Stalling {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for Stalling {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "stalled"));
            }
            let n = out.len().min(self.data.len() - self.pos);
            let Some(src) = self.data.get(self.pos..self.pos + n) else {
                return Ok(0);
            };
            let Some(dst) = out.get_mut(..n) else {
                return Ok(0);
            };
            dst.copy_from_slice(src);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn a_stalled_partial_request_is_408_but_an_idle_stall_is_quiet() {
        // Partial head, then silence: 408.
        let mut reader = ConnReader::new(Stalling {
            data: b"GET /healthz HT".to_vec(),
            pos: 0,
        });
        assert_eq!(reader.next_request(1024).err().map(|e| e.status), Some(408));

        // Head complete, body stalled: 408.
        let mut reader = ConnReader::new(Stalling {
            data: b"POST /v1/run HTTP/1.1\r\nContent-Length: 8\r\n\r\nab".to_vec(),
            pos: 0,
        });
        assert_eq!(reader.next_request(1024).err().map(|e| e.status), Some(408));

        // Nothing buffered at all: an idle keep-alive timeout, not an error.
        let mut reader = ConnReader::new(Stalling { data: Vec::new(), pos: 0 });
        assert_eq!(reader.next_request(1024), Ok(None));
    }

    #[test]
    fn head_larger_than_the_cap_is_rejected() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_HEAD_BYTES + 8));
        assert_eq!(req(&raw, 1024).err().map(|e| e.status), Some(400));
    }

    #[test]
    fn response_wire_format_is_exact() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "application/json",
            &[("Retry-After", "1".to_string())],
            b"{}",
            true,
        )
        .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(
            text,
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
             Content-Length: 2\r\nConnection: close\r\nRetry-After: 1\r\n\r\n{}"
        );
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", &[], b"ok", false).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("\r\nConnection: keep-alive\r\n"), "{text}");
    }
}
