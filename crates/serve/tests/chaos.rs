//! Chaos tests: crash-and-restart durability, corruption quarantine,
//! and a short in-process loadgen run against a live server.
//!
//! The disk store fsyncs every entry at insert time, so "crash" here is
//! dropping one [`Server`] (gracefully or not) and opening a second one
//! over the same cache directory — the same recovery path `kill -9`
//! exercises in the CI chaos smoke step.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use vpir_serve::loadgen::{self, LoadgenConfig, Mix};
use vpir_serve::{ServeConfig, Server, StoreFault};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("serve-chaos").join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn durable_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        workers: 1,
        cache_dir: Some(dir.to_path_buf()),
        default_max_cycles: 100_000,
        ..ServeConfig::default()
    }
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("write");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8(response).expect("utf8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("write");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8(response).expect("utf8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

fn shutdown(server: Server) {
    let addr = server.addr();
    let (status, _, _) = post(addr, "/v1/shutdown", "{}");
    assert_eq!(status, 200, "shutdown must be acknowledged");
    server.join();
}

const RUN_REQUEST: &str = "{\"bench\": \"compress\", \"max_cycles\": 60000}";

#[test]
fn a_restarted_server_serves_prior_results_from_disk_byte_identically() {
    let dir = scratch_dir("restart");

    // First life: populate the cache with a miss, then confirm the
    // in-memory hit, then go down.
    let first = Server::start(durable_config(&dir)).expect("start first");
    let (status, head, miss_body) = post(first.addr(), "/v1/run", RUN_REQUEST);
    assert_eq!(status, 200, "{miss_body}");
    assert!(head.contains("X-Cache: miss"), "{head}");
    let (status, head, hit_body) = post(first.addr(), "/v1/run", RUN_REQUEST);
    assert_eq!(status, 200);
    assert!(head.ends_with("X-Cache: hit"), "{head}");
    assert_eq!(miss_body, hit_body);
    shutdown(first);

    // Second life: a fresh process image over the same directory. The
    // memory tier starts empty, so the answer must come from disk —
    // byte-identical to the original miss.
    let second = Server::start(durable_config(&dir)).expect("start second");
    let (status, head, disk_body) = post(second.addr(), "/v1/run", RUN_REQUEST);
    assert_eq!(status, 200, "{disk_body}");
    assert!(head.contains("X-Cache: hit-disk"), "{head}");
    assert_eq!(miss_body, disk_body, "disk tier must replay the exact bytes");

    // The disk hit promoted the entry into memory: the next request is
    // a plain memory hit.
    let (status, head, mem_body) = post(second.addr(), "/v1/run", RUN_REQUEST);
    assert_eq!(status, 200);
    assert!(head.ends_with("X-Cache: hit"), "{head}");
    assert_eq!(miss_body, mem_body);

    let (_, _, metrics) = get(second.addr(), "/metrics");
    assert!(metrics.contains("vpir_cache_hits_disk_total 1"), "{metrics}");
    shutdown(second);
}

#[test]
fn a_corrupted_disk_entry_is_quarantined_not_served() {
    let dir = scratch_dir("quarantine");

    // Populate through a server whose next disk write is corrupted
    // after the fsync — the frame exists but its checksum is wrong.
    let cfg = ServeConfig {
        inject_fault: Some(StoreFault::CorruptNext),
        ..durable_config(&dir)
    };
    let faulty = Server::start(cfg).expect("start faulty");
    let (status, _, original_body) = post(faulty.addr(), "/v1/run", RUN_REQUEST);
    assert_eq!(status, 200, "{original_body}");
    shutdown(faulty);

    // On restart the corrupted frame is detected during the index
    // rebuild, moved aside, and counted — never served as a hit.
    let clean = Server::start(durable_config(&dir)).expect("start clean");
    let (status, head, body) = post(clean.addr(), "/v1/run", RUN_REQUEST);
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("X-Cache: miss"), "corruption must degrade to a miss: {head}");
    assert_eq!(body, original_body, "the recomputed answer is still deterministic");

    let (_, _, metrics) = get(clean.addr(), "/metrics");
    assert!(metrics.contains("vpir_store_quarantined_total 1"), "{metrics}");
    shutdown(clean);

    // The quarantined frame is preserved on disk for postmortems.
    let quarantined = std::fs::read_dir(&dir)
        .expect("read cache dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "quarantine"))
        .count();
    assert_eq!(quarantined, 1, "exactly one frame moved aside");
}

#[test]
fn a_truncated_disk_entry_is_also_a_miss() {
    let dir = scratch_dir("truncate");

    let cfg = ServeConfig {
        inject_fault: Some(StoreFault::TruncateNext),
        ..durable_config(&dir)
    };
    let faulty = Server::start(cfg).expect("start faulty");
    let (status, _, _) = post(faulty.addr(), "/v1/run", RUN_REQUEST);
    assert_eq!(status, 200);
    shutdown(faulty);

    let clean = Server::start(durable_config(&dir)).expect("start clean");
    let (status, head, _) = post(clean.addr(), "/v1/run", RUN_REQUEST);
    assert_eq!(status, 200);
    assert!(head.contains("X-Cache: miss"), "{head}");
    shutdown(clean);
}

#[test]
fn loadgen_drives_a_live_server_and_reports_zero_identity_violations() {
    let dir = scratch_dir("loadgen");
    let server = Server::start(durable_config(&dir)).expect("start");

    let cfg = LoadgenConfig {
        addr: server.addr().to_string(),
        conns: 4,
        duration: Duration::from_millis(800),
        mix: Mix::HitHeavy,
    };
    let report = loadgen::run(&cfg).expect("loadgen run");
    assert!(report.contains("\"schema\": \"vpir-bench-serve-v1\""), "{report}");
    assert!(report.contains("\"identity_violations\": 0"), "{report}");
    assert!(report.contains("\"io_errors\": 0"), "{report}");
    assert!(report.contains("\"mix\": \"hit-heavy\""), "{report}");
    // Hit-heavy repeats one request. The very first request per
    // connection can race the others before the cache is populated
    // (there is no coalescing), but after that every answer is a hit.
    let misses: u64 = report
        .split("\"cache_misses\": ")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .expect("cache_misses in report");
    assert!((1..=4).contains(&misses), "at most one racing miss per connection: {report}");
    assert!(!report.contains("\"cache_hits_memory\": 0"), "{report}");

    // The malformed mix must not wedge the server either.
    let cfg = LoadgenConfig {
        addr: server.addr().to_string(),
        conns: 2,
        duration: Duration::from_millis(400),
        mix: Mix::Malformed,
    };
    let report = loadgen::run(&cfg).expect("malformed run");
    assert!(report.contains("\"responses_2xx\": 0"), "{report}");

    // After both storms the server still answers cleanly.
    let (status, _, body) = get(server.addr(), "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\": true"), "{body}");
    shutdown(server);
}
