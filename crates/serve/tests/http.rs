//! End-to-end socket tests for `vpir serve`: real TCP connections
//! against a live [`Server`] on an ephemeral port.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use vpir_serve::{ServeConfig, Server};

/// One HTTP exchange over a fresh connection that the server closes
/// afterwards (the request carries `Connection: close`): returns the
/// status code, the raw header block, and the body.
fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    stream.write_all(raw).expect("write");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8(response).expect("utf8 response");
    split_response(&text)
}

fn split_response(text: &str) -> (u16, String, String) {
    let (head, body) = text.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

/// Reads exactly one response (by its `Content-Length`) from an open
/// keep-alive connection. `buf` carries any bytes of the *next*
/// pipelined response that arrived in the same read.
fn read_one_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (u16, String, String) {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "connection closed before a full response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("utf8 head");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length header");
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec())
        .expect("utf8 body");
    buf.drain(..body_start + content_length);
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head, body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    exchange(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn shutdown(addr: SocketAddr) {
    let (status, _, _) = post(addr, "/v1/shutdown", "{}");
    assert_eq!(status, 200, "shutdown must be acknowledged");
}

fn small_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        default_max_cycles: 100_000,
        ..ServeConfig::default()
    }
}

#[test]
fn run_roundtrip_cache_hit_metrics_and_graceful_shutdown() {
    let server = Server::start(small_config(2)).expect("start");
    let addr = server.addr();

    let (status, _, health) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(health, "{\"ok\": true, \"draining\": false, \"state\": \"healthy\"}");

    let request = "{\"bench\": \"compress\", \"max_cycles\": 50000}";
    let (status, miss_head, miss_body) = post(addr, "/v1/run", request);
    assert_eq!(status, 200, "miss body: {miss_body}");
    assert!(miss_head.contains("X-Cache: miss"), "{miss_head}");
    assert!(miss_body.contains("\"schema\": \"vpir-serve-run-v1\""), "{miss_body}");

    let (status, hit_head, hit_body) = post(addr, "/v1/run", request);
    assert_eq!(status, 200);
    assert!(hit_head.contains("X-Cache: hit"), "{hit_head}");
    assert_eq!(miss_body, hit_body, "cache hit must be byte-identical to the miss");

    let (status, head, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: text/plain; version=0.0.4"), "{head}");
    assert!(metrics.contains("vpir_cache_hits_total 1"), "{metrics}");
    assert!(metrics.contains("vpir_cache_misses_total 1"), "{metrics}");
    assert!(metrics.contains("vpir_runs_completed_total 1"), "{metrics}");
    assert!(metrics.contains("# TYPE vpir_sim_cycles_total counter"), "{metrics}");
    assert!(metrics.contains("vpir_shed_state 0"), "{metrics}");
    assert!(metrics.contains("vpir_latency_run_count 2"), "{metrics}");

    shutdown(addr);
    server.join();
    // After shutdown the listener is gone: connecting must fail (or be
    // reset before a response arrives).
    assert!(TcpStream::connect(addr).is_err() || get_refused(addr));
}

fn get_refused(addr: SocketAddr) -> bool {
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return true,
    };
    let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::new();
    match stream.read_to_end(&mut buf) {
        Ok(0) => true,
        Ok(_) => false,
        Err(_) => true,
    }
}

#[test]
fn a_keep_alive_connection_serves_sequential_and_pipelined_requests() {
    let server = Server::start(small_config(1)).expect("start");
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut carry: Vec<u8> = Vec::new();

    // Sequential reuse: three requests, one connection.
    for _ in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write");
        let (status, head, body) = read_one_response(&mut stream, &mut carry);
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("Connection: keep-alive"), "{head}");
    }

    // Pipelining: two requests in a single write, answered in order.
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n",
        )
        .expect("write pipelined");
    let (status, _, body) = read_one_response(&mut stream, &mut carry);
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\": true"), "first answer is healthz: {body}");
    let (status, _, body) = read_one_response(&mut stream, &mut carry);
    assert_eq!(status, 200);
    assert!(body.contains("vpir_requests_total"), "second answer is metrics: {body}");

    // One connection, five requests.
    assert!(body.contains("vpir_connections_total 1"), "{body}");

    // `Connection: close` is honored mid-stream.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("write close");
    let (status, head, _) = read_one_response(&mut stream, &mut carry);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("drained");
    assert!(rest.is_empty(), "server closed cleanly after Connection: close");

    shutdown(addr);
    server.join();
}

#[test]
fn a_slowloris_client_gets_408_not_a_wedged_worker() {
    let cfg = ServeConfig {
        workers: 1,
        read_deadline: Duration::from_millis(100),
        idle_timeout: Duration::from_millis(2000),
        ..small_config(1)
    };
    let server = Server::start(cfg).expect("start");
    let addr = server.addr();

    // Send a partial request head and stall. The server must answer
    // 408 within the read deadline and close — and stay fully
    // responsive to other clients afterwards.
    let mut slow = TcpStream::connect(addr).expect("connect");
    slow.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    slow.write_all(b"POST /v1/run HTTP/1.1\r\nContent-Le").expect("partial write");
    let mut response = Vec::new();
    slow.read_to_end(&mut response).expect("read");
    let text = String::from_utf8(response).expect("utf8");
    let (status, head, _) = split_response(&text);
    assert_eq!(status, 408, "{head}");
    assert!(head.contains("Connection: close"), "{head}");

    // A stall mid-body is also bounded.
    let mut slow = TcpStream::connect(addr).expect("connect");
    slow.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    slow.write_all(b"POST /v1/run HTTP/1.1\r\nContent-Length: 400\r\n\r\n{\"bench\"")
        .expect("partial body");
    let mut response = Vec::new();
    slow.read_to_end(&mut response).expect("read");
    let (status, _, _) = split_response(&String::from_utf8(response).expect("utf8"));
    assert_eq!(status, 408);

    // The worker pool was never involved; the server still answers.
    let (status, _, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("vpir_slow_client_timeouts_total 2"), "{metrics}");

    // An idle connection that never sends anything is closed quietly
    // after the idle timeout, with no 408 and no error response.
    let mut idle = TcpStream::connect(addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut buf = Vec::new();
    idle.read_to_end(&mut buf).expect("idle close");
    assert!(buf.is_empty(), "idle close carries no response bytes");

    shutdown(addr);
    server.join();
}

#[test]
fn worker_count_does_not_change_a_single_byte() {
    let server1 = Server::start(small_config(1)).expect("start workers=1");
    let server4 = Server::start(small_config(4)).expect("start workers=4");

    // A mixed bag: different configs, programs, and a trace request.
    let requests = [
        "{\"bench\": \"compress\", \"max_cycles\": 40000}".to_string(),
        "{\"bench\": \"compress\", \"config\": \"ir_early\", \"max_cycles\": 40000}".to_string(),
        "{\"bench\": \"compress\", \"config\": \"magic:ME-SB:vl1\", \"max_cycles\": 40000}"
            .to_string(),
        "{\"bench\": \"compress\", \"config\": \"rtb:t8\", \"max_cycles\": 40000}".to_string(),
        "{\"asm\": \"li r1, 3\\naddi r1, r1, 4\\nhalt\", \"trace\": 16}".to_string(),
    ];
    for request in &requests {
        let (s1, _, body1) = post(server1.addr(), "/v1/run", request);
        let (s4, _, body4) = post(server4.addr(), "/v1/run", request);
        assert_eq!(s1, 200, "{request}: {body1}");
        assert_eq!(s4, 200, "{request}: {body4}");
        assert_eq!(body1, body4, "workers=1 and workers=4 must agree on {request}");
    }

    shutdown(server1.addr());
    shutdown(server4.addr());
    server1.join();
    server4.join();
}

#[test]
fn malformed_requests_get_structured_errors_over_the_wire() {
    let server = Server::start(small_config(1)).expect("start");
    let addr = server.addr();

    let (status, _, body) = get(addr, "/nope");
    assert_eq!(status, 404, "{body}");

    let (status, head, _) = exchange(addr, b"DELETE /v1/run HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: POST"), "{head}");

    let (status, _, body) = post(addr, "/v1/run", "{not json");
    assert_eq!(status, 400);
    assert!(body.contains("bad JSON"), "{body}");

    let (status, _, _) = exchange(addr, b"POST /v1/run HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 411);

    let (status, _, body) = exchange(
        addr,
        b"POST /v1/run HTTP/1.1\r\nHost: t\r\nContent-Length: 99999999\r\n\r\n",
    );
    assert_eq!(status, 413, "{body}");

    shutdown(addr);
    server.join();
}

#[test]
fn a_full_queue_answers_503_with_retry_after() {
    // Zero workers (API-only configuration): nothing drains the queue,
    // so backpressure is deterministic.
    let cfg = ServeConfig {
        workers: 0,
        queue_capacity: 1,
        request_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("start");
    let addr = server.addr();

    // The first miss occupies the single queue slot; its connection
    // blocks waiting for a worker that never comes, so issue it from a
    // helper thread.
    let blocked = std::thread::spawn(move || {
        post(addr, "/v1/run", "{\"bench\": \"go\", \"max_cycles\": 30000}")
    });
    // Wait until the job is actually queued.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, metrics) = get(addr, "/metrics");
        if metrics.contains("vpir_queue_depth 1") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job never queued:\n{metrics}");
        std::thread::sleep(Duration::from_millis(20));
    }

    let (status, head, body) =
        post(addr, "/v1/run", "{\"bench\": \"perl\", \"max_cycles\": 30000}");
    assert_eq!(status, 503, "{body}");
    assert!(head.contains("Retry-After: 1"), "{head}");
    // With the queue at capacity the exported state is saturated.
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("vpir_shed_state 2"), "{metrics}");
    assert!(metrics.contains("vpir_requests_shed_total 1"), "{metrics}");

    shutdown(addr);
    server.join();
    // join() dropped the never-run job, hanging up the blocked
    // handler's channel: the first request resolves as a 500.
    let (status, _, body) = blocked.join().expect("blocked client");
    assert_eq!(status, 500, "{body}");
}
