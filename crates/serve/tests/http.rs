//! End-to-end socket tests for `vpir serve`: real TCP connections
//! against a live [`Server`] on an ephemeral port.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use vpir_serve::{ServeConfig, Server};

/// One HTTP exchange over a fresh connection: returns the status code,
/// the raw header block, and the body.
fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    stream.write_all(raw).expect("write");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8(response).expect("utf8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    exchange(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    exchange(addr, format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
}

fn shutdown(addr: SocketAddr) {
    let (status, _, _) = post(addr, "/v1/shutdown", "{}");
    assert_eq!(status, 200, "shutdown must be acknowledged");
}

fn small_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        default_max_cycles: 100_000,
        ..ServeConfig::default()
    }
}

#[test]
fn run_roundtrip_cache_hit_metrics_and_graceful_shutdown() {
    let server = Server::start(small_config(2)).expect("start");
    let addr = server.addr();

    let (status, _, health) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(health, "{\"ok\": true, \"draining\": false}");

    let request = "{\"bench\": \"compress\", \"max_cycles\": 50000}";
    let (status, miss_head, miss_body) = post(addr, "/v1/run", request);
    assert_eq!(status, 200, "miss body: {miss_body}");
    assert!(miss_head.contains("X-Cache: miss"), "{miss_head}");
    assert!(miss_body.contains("\"schema\": \"vpir-serve-run-v1\""), "{miss_body}");

    let (status, hit_head, hit_body) = post(addr, "/v1/run", request);
    assert_eq!(status, 200);
    assert!(hit_head.contains("X-Cache: hit"), "{hit_head}");
    assert_eq!(miss_body, hit_body, "cache hit must be byte-identical to the miss");

    let (status, head, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: text/plain; version=0.0.4"), "{head}");
    assert!(metrics.contains("vpir_cache_hits_total 1"), "{metrics}");
    assert!(metrics.contains("vpir_cache_misses_total 1"), "{metrics}");
    assert!(metrics.contains("vpir_runs_completed_total 1"), "{metrics}");
    assert!(metrics.contains("# TYPE vpir_sim_cycles_total counter"), "{metrics}");

    shutdown(addr);
    server.join();
    // After shutdown the listener is gone: connecting must fail (or be
    // reset before a response arrives).
    assert!(TcpStream::connect(addr).is_err() || get_refused(addr));
}

fn get_refused(addr: SocketAddr) -> bool {
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return true,
    };
    let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::new();
    match stream.read_to_end(&mut buf) {
        Ok(0) => true,
        Ok(_) => false,
        Err(_) => true,
    }
}

#[test]
fn worker_count_does_not_change_a_single_byte() {
    let server1 = Server::start(small_config(1)).expect("start workers=1");
    let server4 = Server::start(small_config(4)).expect("start workers=4");

    // A mixed bag: different configs, programs, and a trace request.
    let requests = [
        "{\"bench\": \"compress\", \"max_cycles\": 40000}".to_string(),
        "{\"bench\": \"compress\", \"config\": \"ir_early\", \"max_cycles\": 40000}".to_string(),
        "{\"bench\": \"compress\", \"config\": \"magic:ME-SB:vl1\", \"max_cycles\": 40000}"
            .to_string(),
        "{\"asm\": \"li r1, 3\\naddi r1, r1, 4\\nhalt\", \"trace\": 16}".to_string(),
    ];
    for request in &requests {
        let (s1, _, body1) = post(server1.addr(), "/v1/run", request);
        let (s4, _, body4) = post(server4.addr(), "/v1/run", request);
        assert_eq!(s1, 200, "{request}: {body1}");
        assert_eq!(s4, 200, "{request}: {body4}");
        assert_eq!(body1, body4, "workers=1 and workers=4 must agree on {request}");
    }

    shutdown(server1.addr());
    shutdown(server4.addr());
    server1.join();
    server4.join();
}

#[test]
fn malformed_requests_get_structured_errors_over_the_wire() {
    let server = Server::start(small_config(1)).expect("start");
    let addr = server.addr();

    let (status, _, body) = get(addr, "/nope");
    assert_eq!(status, 404, "{body}");

    let (status, head, _) = exchange(addr, b"DELETE /v1/run HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: POST"), "{head}");

    let (status, _, body) = post(addr, "/v1/run", "{not json");
    assert_eq!(status, 400);
    assert!(body.contains("bad JSON"), "{body}");

    let (status, _, _) = exchange(addr, b"POST /v1/run HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 411);

    let (status, _, body) = exchange(
        addr,
        b"POST /v1/run HTTP/1.1\r\nHost: t\r\nContent-Length: 99999999\r\n\r\n",
    );
    assert_eq!(status, 413, "{body}");

    shutdown(addr);
    server.join();
}

#[test]
fn a_full_queue_answers_503_with_retry_after() {
    // Zero workers (API-only configuration): nothing drains the queue,
    // so backpressure is deterministic.
    let cfg = ServeConfig {
        workers: 0,
        queue_capacity: 1,
        job_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("start");
    let addr = server.addr();

    // The first miss occupies the single queue slot; its connection
    // blocks waiting for a worker that never comes, so issue it from a
    // helper thread.
    let blocked = std::thread::spawn(move || {
        post(addr, "/v1/run", "{\"bench\": \"go\", \"max_cycles\": 30000}")
    });
    // Wait until the job is actually queued.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, metrics) = get(addr, "/metrics");
        if metrics.contains("vpir_queue_depth 1") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job never queued:\n{metrics}");
        std::thread::sleep(Duration::from_millis(20));
    }

    let (status, head, body) =
        post(addr, "/v1/run", "{\"bench\": \"perl\", \"max_cycles\": 30000}");
    assert_eq!(status, 503, "{body}");
    assert!(head.contains("Retry-After: 1"), "{head}");

    shutdown(addr);
    server.join();
    // join() dropped the never-run job, hanging up the blocked
    // handler's channel: the first request resolves as a 500.
    let (status, _, body) = blocked.join().expect("blocked client");
    assert_eq!(status, 500, "{body}");
}
