//! Deterministic randomness and a tiny property-test harness.
//!
//! The workspace must stay offline-buildable, so it cannot depend on
//! `rand` or `proptest`. This crate provides the narrow slice of both
//! that the simulator actually needs:
//!
//! * [`Rng`] — a SplitMix64 generator with `gen_range`/`gen_bool`
//!   conveniences mirroring the `rand` call sites it replaced. Seeded
//!   explicitly, never from the OS, so every workload and test is
//!   replayable from its seed alone.
//! * [`check`] — a property runner that drives a closure with many
//!   independently-seeded generators and, on failure, reports the case
//!   index and exact seed needed to reproduce it.
//!
//! Determinism is not a nicety here: the paper's tables are produced by
//! differential runs of the same instruction stream through different
//! machine configurations, and any hidden entropy (hash seeds, OS
//! randomness) would make those comparisons unrepeatable.
//!
//! The crate also hosts [`CountingAlloc`], the test-only allocator the
//! zero-allocation steady-state tests install to prove the hot loop
//! stays off the heap. It is the single place the workspace touches
//! `unsafe` (implementing [`std::alloc::GlobalAlloc`] requires it), so
//! the crate-level lint is `deny` with one scoped, justified allow
//! rather than `forbid`.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// SplitMix64: tiny, fast, and passes BigCrush — more than enough for
/// workload synthesis and test-case generation.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from an explicit seed. Equal seeds yield
    /// identical streams on every platform.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from a half-open or inclusive integer range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.gen_f64() < p
    }

    /// Full-range `i32` draw (replacement for `rng.gen::<i32>()`).
    pub fn gen_i32(&mut self) -> i32 {
        self.next_u64() as i32
    }

    /// Full-range `u64` draw (replacement for `rng.gen::<u64>()`).
    pub fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Uniform draw in `[0, 1)` (replacement for `rng.gen::<f64>()`).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types [`Rng::gen_range`] can draw.
///
/// The blanket [`SampleRange`] impls below are generic over this trait
/// so that type inference flows from the call site into the range
/// literal (`arr[rng.gen_range(0..3)]` infers `usize`), exactly as the
/// `rand` call sites this replaced relied on.
pub trait SampleUniform: Copy {
    fn sample_half_open(rng: &mut Rng, lo: Self, hi: Self) -> Self;
    fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut Rng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                let off = rng.next_u64() % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_inclusive(rng: &mut Rng, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                if span == u64::MAX {
                    // Full 64-bit domain: every output is in range.
                    return rng.next_u64() as $t;
                }
                let off = rng.next_u64() % (span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for Range<T> {
    type Output = T;
    fn sample(self, rng: &mut Rng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample(self, rng: &mut Rng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Runs `cases` independently-seeded executions of a property.
///
/// Each case gets a fresh [`Rng`]; the closure draws whatever inputs it
/// needs and asserts its property. On panic, the harness prints the
/// case index and seed (rerun with [`check_seed`] to reproduce) and
/// re-raises so the test still fails loudly.
pub fn check<F>(name: &str, cases: u64, f: F)
where
    F: Fn(&mut Rng),
{
    for case in 0..cases {
        let seed = derive_seed(name, case);
        run_case(name, case, seed, &f);
    }
}

/// Re-runs a single property case from a seed printed by [`check`].
pub fn check_seed<F>(name: &str, seed: u64, f: F)
where
    F: Fn(&mut Rng),
{
    run_case(name, u64::MAX, seed, &f);
}

fn run_case<F>(name: &str, case: u64, seed: u64, f: &F)
where
    F: Fn(&mut Rng),
{
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = Rng::new(seed);
        f(&mut rng);
    }));
    if let Err(payload) = result {
        eprintln!("property `{name}` failed at case {case} (seed {seed:#018x})");
        eprintln!("reproduce with: vpir_testkit::check_seed(\"{name}\", {seed:#018x}, ..)");
        resume_unwind(payload);
    }
}

/// A counting wrapper around the system allocator for zero-allocation
/// assertions.
///
/// Install it as the test binary's `#[global_allocator]`, snapshot
/// [`CountingAlloc::allocations`] around the region under test, and
/// assert the delta. Counters are monotonic (snapshot-and-subtract, no
/// reset) so concurrent tests in one binary can't clobber each other's
/// zero point.
///
/// # Examples
///
/// ```
/// use vpir_testkit::CountingAlloc;
///
/// #[global_allocator]
/// static ALLOC: CountingAlloc = CountingAlloc::new();
///
/// let before = ALLOC.allocations();
/// let sum: u64 = (0u64..64).sum(); // pure arithmetic: no heap traffic
/// assert_eq!(sum, 2016);
/// assert_eq!(ALLOC.allocations() - before, 0);
/// ```
#[derive(Debug)]
pub struct CountingAlloc {
    allocations: core::sync::atomic::AtomicU64,
    deallocations: core::sync::atomic::AtomicU64,
    allocated_bytes: core::sync::atomic::AtomicU64,
}

impl CountingAlloc {
    /// Creates a zeroed counter (const, so it can be a `static`).
    pub const fn new() -> CountingAlloc {
        CountingAlloc {
            allocations: core::sync::atomic::AtomicU64::new(0),
            deallocations: core::sync::atomic::AtomicU64::new(0),
            allocated_bytes: core::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Heap allocations observed so far (`alloc`, `alloc_zeroed`, and
    /// growing `realloc` calls each count once).
    pub fn allocations(&self) -> u64 {
        self.allocations.load(core::sync::atomic::Ordering::Relaxed)
    }

    /// Deallocations observed so far.
    pub fn deallocations(&self) -> u64 {
        self.deallocations.load(core::sync::atomic::Ordering::Relaxed)
    }

    /// Total bytes requested across all counted allocations.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes.load(core::sync::atomic::Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// The one unsafe impl in the workspace: `GlobalAlloc` is an unsafe
// trait by definition. The implementation adds only relaxed atomic
// increments around direct calls to `std::alloc::System`, upholding
// the trait contract by pure delegation.
#[allow(unsafe_code)]
mod counting_alloc_impl {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::Ordering;

    use super::CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            self.allocations.fetch_add(1, Ordering::Relaxed);
            self.allocated_bytes
                .fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            self.deallocations.fetch_add(1, Ordering::Relaxed);
            System.dealloc(ptr, layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            self.allocations.fetch_add(1, Ordering::Relaxed);
            self.allocated_bytes
                .fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A realloc moves or resizes an existing block: count it as
            // fresh heap traffic (one allocation, the new size in
            // bytes) — for a zero-allocation assertion any realloc is
            // just as disqualifying as a malloc.
            self.allocations.fetch_add(1, Ordering::Relaxed);
            self.allocated_bytes
                .fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }
}

/// Stable per-property seed derivation (FNV-1a over the name, mixed
/// with the case index). Independent of HashMap seeding and platform.
fn derive_seed(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&w));
            let x = rng.gen_range(b'a'..=b'c');
            assert!((b'a'..=b'c').contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = Rng::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::new(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "p=0.5 near half: {heads}");
    }

    #[test]
    fn full_inclusive_range_is_total() {
        let mut rng = Rng::new(5);
        // Must not divide by zero on the span.
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn check_runs_every_case() {
        use std::cell::Cell;
        let count = Cell::new(0u64);
        check("counting", 25, |_rng| count.set(count.get() + 1));
        assert_eq!(count.get(), 25);
    }

    #[test]
    fn check_reports_failures() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("always-fails", 3, |_rng| panic!("boom"));
        }));
        assert!(result.is_err());
    }
}
