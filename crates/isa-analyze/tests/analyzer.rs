//! Integration tests: CFG edge cases, dataflow classification, lints,
//! and the characterization test cross-validating the static analysis
//! against the dynamic limit study on every built-in workload.

use vpir_isa::{asm, Inst, Op, Program, Reg, TEXT_BASE};
use vpir_isa_analyze::{analyze_program, cfg, cross_validate, EdgeRole, StaticClass};
use vpir_redundancy::{analyze_per_pc, LimitConfig};
use vpir_workloads::{Bench, Scale};

fn assemble(src: &str) -> Program {
    asm::assemble(src).expect("test program assembles")
}

fn lint_ids(analysis: &vpir_isa_analyze::Analysis) -> Vec<&'static str> {
    analysis.findings.iter().map(|f| f.rule.id()).collect()
}

// ---- CFG edge cases ----

#[test]
fn empty_program_analyzes_to_nothing() {
    let prog = Program::from_insts(Vec::new());
    let analysis = analyze_program(&prog, "empty.s");
    assert!(analysis.cfg.blocks.is_empty());
    assert!(analysis.insts.is_empty());
    assert!(analysis.findings.is_empty());
    assert!(analysis.loops.loops.is_empty());
    assert!(analysis.to_json().starts_with('{'));
}

#[test]
fn self_loop_block_is_its_own_loop() {
    let prog = assemble(
        "loop:  addi r1, r1, 1
                j    loop",
    );
    let analysis = analyze_program(&prog, "selfloop.s");
    assert_eq!(analysis.cfg.blocks.len(), 1);
    assert_eq!(analysis.cfg.blocks[0].succs, vec![0]);
    assert_eq!(analysis.cfg.blocks[0].preds, vec![0]);
    let lp = analysis.loops.loops.get(&0).expect("self-loop detected");
    assert_eq!(lp.tails, vec![0]);
    assert!(lp.body.contains(&0));
    assert_eq!(analysis.loops.depth[0], 1);
}

#[test]
fn branch_to_fallthrough_keeps_one_successor_two_roles() {
    let prog = assemble(
        "       beq  r0, r0, next
         next:  halt",
    );
    let analysis = analyze_program(&prog, "bfall.s");
    // Target and fallthrough collapse to one successor...
    assert_eq!(analysis.cfg.blocks[0].succs, vec![1]);
    // ...but both edge roles survive for the dataflow passes.
    let roles: Vec<EdgeRole> = analysis.cfg.blocks[0]
        .out_edges
        .iter()
        .map(|&(_, r)| r)
        .collect();
    assert_eq!(roles, vec![EdgeRole::Fallthrough, EdgeRole::Target]);
    // beq r0, r0 is constant-taken, so the halt stays executable.
    assert!(analysis.sccp.facts[1].executable);
}

#[test]
fn unreachable_tail_after_unconditional_jump_is_flagged() {
    let prog = assemble(
        "       j    end
                addi r1, r0, 1
         end:   halt",
    );
    let analysis = analyze_program(&prog, "tail.s");
    assert_eq!(analysis.cfg.unreachable_blocks(), vec![1]);
    assert_eq!(lint_ids(&analysis), vec!["L1"]);
    assert!(analysis.findings[0].message.contains("unreachable"));
    // The lint carries the source position of the dead instruction.
    assert_eq!(analysis.findings[0].line, 2);
}

#[test]
fn analysis_json_is_deterministic_across_runs() {
    let src = "
        .entry main
main:   li   r1, 6
        li   r2, 0
        li   r3, 0
loop:   addi r2, r2, 3
        add  r3, r3, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        jal  helper
        halt
helper: addi r4, r0, 9
        jr   r31
";
    // Assemble twice: `Program::labels` is a HashMap, so any ordering
    // leak would show up between two independent instances.
    let a = analyze_program(&assemble(src), "det.s");
    let b = analyze_program(&assemble(src), "det.s");
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_text(), b.to_text());
    assert_eq!(cfg::to_json(&a.cfg), cfg::to_json(&b.cfg));
}

// ---- Dataflow and classification ----

#[test]
fn constant_chain_is_invariant_and_loop_counter_is_stride() {
    let prog = assemble(
        "       li   r1, 5
                li   r2, 0
                li   r7, 0
        loop:   addi r2, r2, 4
                addi r7, r7, 1
                add  r3, r2, r7
                li   r9, 1234
                addi r1, r1, -1
                bne  r1, r0, loop
                halt",
    );
    let analysis = analyze_program(&prog, "cls.s");
    assert!(analysis.findings.is_empty(), "{}", analysis.to_text());
    let by_text = |needle: &str| {
        analysis
            .insts
            .iter()
            .find(|i| i.text.contains(needle))
            .expect("inst present")
    };
    // Re-materialized constant inside the loop: same value every time.
    let li9 = by_text("1234");
    assert_eq!(li9.class, Some(StaticClass::Invariant));
    assert_eq!(li9.const_value, Some(1234));
    assert_eq!(li9.loop_depth, 1);
    // Self-incremented counters advance on a stride.
    assert_eq!(by_text("addi r2, r2, 4").class, Some(StaticClass::StrideDerivable));
    assert_eq!(by_text("addi r7, r7, 1").class, Some(StaticClass::StrideDerivable));
    // Sum of two varying values: no claim.
    assert_eq!(by_text("add r3").class, Some(StaticClass::InputDependent));
}

#[test]
fn calls_clobber_registers_but_initialize_them() {
    let prog = assemble(
        "main:   jal  helper
                 add  r3, r1, r0
                 halt
         helper: li   r1, 7
                 jr   r31",
    );
    let analysis = analyze_program(&prog, "call.s");
    // No L2: the call-return edge conservatively initializes everything.
    assert!(analysis.findings.is_empty(), "{}", analysis.to_text());
    // And no constant claim across the call, even though the callee
    // happens to always write 7.
    let add = analysis
        .insts
        .iter()
        .find(|i| i.text.contains("add r3"))
        .expect("add present");
    assert_eq!(add.class, Some(StaticClass::InputDependent));
}

#[test]
fn loads_from_never_stored_data_are_invariant() {
    let prog = assemble(
        "        .data
         tbl:    .word 11, 22, 33
                 .text
         main:   li   r5, 2
         loop:   la   r6, tbl
                 lw   r7, 4(r6)
                 addi r5, r5, -1
                 bne  r5, r0, loop
                 halt",
    );
    let analysis = analyze_program(&prog, "load.s");
    assert!(analysis.sccp.resolved_loads);
    let lw = analysis
        .insts
        .iter()
        .find(|i| i.text.starts_with("lw"))
        .expect("load present");
    assert_eq!(lw.class, Some(StaticClass::Invariant));
    assert_eq!(lw.const_value, Some(22));
}

#[test]
fn stored_memory_is_not_constant_for_loads() {
    let prog = assemble(
        "        .data
         cell:   .word 5
                 .text
         main:   la   r6, cell
                 li   r7, 9
                 sw   r7, 0(r6)
                 lw   r8, 0(r6)
                 halt",
    );
    let analysis = analyze_program(&prog, "store.s");
    let lw = analysis
        .insts
        .iter()
        .find(|i| i.text.starts_with("lw"))
        .expect("load present");
    // The load aliases the store's footprint, so no invariance claim
    // (the propagation does not model the store's value).
    assert_eq!(lw.class, Some(StaticClass::InputDependent));
    assert!(analysis.findings.is_empty(), "{}", analysis.to_text());
}

// ---- Lints ----

#[test]
fn uninit_read_fires_with_source_position() {
    let prog = assemble(
        "main:   add  r1, r2, r0
                 halt",
    );
    let analysis = analyze_program(&prog, "uninit.s");
    assert_eq!(lint_ids(&analysis), vec!["L2"]);
    let f = &analysis.findings[0];
    assert!(f.message.contains("r2"), "{}", f.message);
    assert_eq!(f.line, 1);
    assert!(f.col > 0);
    assert!(f.location().starts_with("uninit.s:1:"));
}

#[test]
fn bad_branch_target_fires() {
    // Hand-built: the assembler itself rejects undefined labels, but a
    // program image can still carry a wild target.
    let prog = Program::from_insts(vec![
        Inst::branch2(Op::Beq, Reg::ZERO, Reg::ZERO, TEXT_BASE + 2),
        Inst::HALT,
    ]);
    let analysis = analyze_program(&prog, "bad.s");
    assert_eq!(lint_ids(&analysis), vec!["L3"]);
    assert!(analysis.findings[0].message.contains("0x1002"));
    // Unknown source positions render as file:0.
    assert_eq!(analysis.findings[0].line, 0);
}

#[test]
fn store_only_memory_fires_dead_store() {
    let prog = assemble(
        "        .data
         out:    .word 0
                 .text
         main:   li   r7, 42
                 la   r6, out
                 sw   r7, 0(r6)
                 halt",
    );
    let analysis = analyze_program(&prog, "dead.s");
    assert_eq!(lint_ids(&analysis), vec!["L4"]);
    assert!(analysis.findings[0].message.contains("no load ever reads"));
}

// ---- Cross-validation against the dynamic limit study ----

#[test]
fn invariant_prediction_is_confirmed_dynamically() {
    let src = "
        li   r1, 50
        li   r2, 0
loop:   li   r9, 77
        add  r2, r2, r9
        addi r1, r1, -1
        bne  r1, r0, loop
        halt";
    let prog = assemble(src);
    let analysis = analyze_program(&prog, "xv.s");
    let (_, per_pc) = analyze_per_pc(&prog, 100_000, LimitConfig::default());
    let xv = cross_validate(&analysis.insts, &per_pc);
    assert!(xv.universe > 0);
    assert!(xv.static_invariant > 0);
    assert!(xv.false_positive_pcs.is_empty(), "{:?}", xv.false_positive_pcs);
    assert!((xv.precision() - 1.0).abs() < 1e-12);
    assert!(xv.recall() > 0.0);
}

/// Characterization test (the PR's acceptance bar): on every built-in
/// workload, each statically invariant instruction that executes at
/// least twice produces a repeated result in the dynamic limit study —
/// zero false positives — and the workloads themselves are lint-clean.
#[test]
fn workloads_are_lint_clean_and_invariance_has_zero_false_positives() {
    for bench in Bench::ALL {
        let prog = bench.program(Scale::test());
        let analysis = analyze_program(&prog, bench.name());
        assert!(
            analysis.findings.is_empty(),
            "{} has lint findings:\n{}",
            bench.name(),
            analysis.to_text()
        );
        let (_, per_pc) = analyze_per_pc(&prog, 200_000, LimitConfig::default());
        let xv = cross_validate(&analysis.insts, &per_pc);
        assert!(
            xv.false_positive_pcs.is_empty(),
            "{}: statically invariant PCs never repeated dynamically: {:x?}",
            bench.name(),
            xv.false_positive_pcs
        );
        assert!((xv.precision() - 1.0).abs() < 1e-12, "{}", bench.name());
        assert!(xv.universe > 0, "{}", bench.name());
    }
}
