//! Sparse conditional constant propagation over guest registers.
//!
//! The transfer function is not hand-rolled: every instruction is folded
//! with [`vpir_isa::execute`], the same semantics the interpreter, the
//! pipeline, and the limit study use. That is what makes the headline
//! guarantee hold — an instruction this pass proves `Const` produces that
//! exact value on *every* dynamic execution, so "statically invariant"
//! can never be contradicted by the dynamic redundancy study.
//!
//! Soundness notes:
//!
//! * The entry state is machine reality ([`vpir_isa::Machine::new`]):
//!   every register is 0 except `sp` = [`STACK_TOP`]. There is no
//!   optimistic Top state to converge from — values start `Const` and
//!   only fall to `Bottom` — so the lattice is two-level and the
//!   fixpoint is trivially sound.
//! * A call's return point is reached through a [`EdgeRole::CallReturn`]
//!   edge, along which every register except `r0` is clobbered to
//!   `Bottom` (the callee may write anything).
//! * Loads resolve in two rounds. Round A treats every load as `Bottom`
//!   and collects the store-address footprint of the feasible program.
//!   If *every* feasible store has a constant address, round B re-runs
//!   the propagation letting a constant-address load whose bytes are
//!   disjoint from that footprint read the program's initial data image
//!   (never-stored memory keeps its load-time value forever). Round B
//!   only gains constants, so its feasible-edge set — and hence its
//!   store footprint — is a subset of round A's, keeping the footprint
//!   sound.
//! * Conditional branches with constant operands prune the untaken
//!   edge, again by asking `execute` for the outcome.

use std::collections::BTreeSet;

use vpir_isa::{execute, Inst, MemImage, OpClass, Program, Reg, NUM_REGS, STACK_TOP};

use crate::cfg::{Cfg, EdgeRole};

/// A register's abstract value: known the same on every execution, or
/// varying/unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// The register holds exactly this value whenever the program point
    /// is reached.
    Const(u64),
    /// The value may vary between executions.
    Bottom,
}

impl Value {
    fn join(self, other: Value) -> Value {
        match (self, other) {
            (Value::Const(a), Value::Const(b)) if a == b => self,
            _ => Value::Bottom,
        }
    }
}

/// Abstract register file at a program point.
#[derive(Clone, PartialEq, Eq)]
struct RegState {
    vals: [Value; NUM_REGS],
}

impl RegState {
    /// The machine's initial state: all zeros, `sp` = [`STACK_TOP`].
    fn entry() -> RegState {
        let mut s = RegState {
            vals: [Value::Const(0); NUM_REGS],
        };
        s.vals[Reg::SP.index()] = Value::Const(STACK_TOP);
        s
    }

    /// Everything clobbered except the hardwired zero register.
    fn havoc() -> RegState {
        let mut s = RegState {
            vals: [Value::Bottom; NUM_REGS],
        };
        s.vals[Reg::ZERO.index()] = Value::Const(0);
        s
    }

    fn get(&self, r: Reg) -> Value {
        self.vals[r.index()]
    }

    fn set(&mut self, r: Reg, v: Value) {
        if !r.is_zero() {
            self.vals[r.index()] = v;
        }
    }

    /// Joins `other` into `self`; true if anything changed.
    fn join_from(&mut self, other: &RegState) -> bool {
        let mut changed = false;
        for (slot, &o) in self.vals.iter_mut().zip(other.vals.iter()) {
            let j = slot.join(o);
            if j != *slot {
                *slot = j;
                changed = true;
            }
        }
        changed
    }
}

/// How loads are folded.
enum LoadPolicy<'a> {
    /// Round A: every load is `Bottom`.
    Unknown,
    /// Round B: a constant-address load disjoint from `stored` reads the
    /// initial data image.
    Initial {
        /// Byte addresses written by any feasible store (round A).
        stored: &'a BTreeSet<u64>,
    },
}

/// What the pass concluded about a load/store effective address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrFact {
    /// Not a memory operation.
    NotMem,
    /// Address could not be proven constant.
    Unknown,
    /// Constant effective address.
    Const(u64),
}

/// Per-instruction conclusions of the propagation.
#[derive(Debug, Clone)]
pub struct InstFacts {
    /// Whether the instruction can execute (its block is reachable along
    /// feasible edges).
    pub executable: bool,
    /// The constant value this instruction's register result takes on
    /// every execution, when proven.
    pub const_result: Option<u64>,
    /// The effective-address conclusion for loads and stores.
    pub addr: AddrFact,
}

/// Result of the constant propagation over a program.
#[derive(Debug)]
pub struct Sccp {
    /// Per instruction index, parallel to `Program::insts`.
    pub facts: Vec<InstFacts>,
    /// Per block: reachable along feasible edges from the entry.
    pub executable_block: Vec<bool>,
    /// Whether round B (initial-memory load resolution) ran.
    pub resolved_loads: bool,
}

struct Fixpoint {
    state_in: Vec<Option<RegState>>,
    executable: Vec<bool>,
}

/// Folds one instruction: updates `state`, returns
/// `(result value, address fact)`.
fn transfer(
    inst: &Inst,
    pc: u64,
    state: &mut RegState,
    policy: &LoadPolicy<'_>,
    mem: &MemImage,
) -> (Value, AddrFact) {
    let all_const = inst.sources().all(|r| matches!(state.get(r), Value::Const(_)));
    let class = inst.op.class();
    let is_mem = matches!(class, OpClass::Load | OpClass::Store);
    let mut result = Value::Bottom;
    let mut addr = if is_mem { AddrFact::Unknown } else { AddrFact::NotMem };

    if all_const {
        let read = |r: Reg| match state.get(r) {
            Value::Const(v) => v,
            Value::Bottom => 0, // unreachable: guarded by all_const
        };
        let out = execute(inst, pc, read, mem);
        if is_mem {
            if let Some(a) = out.addr {
                addr = AddrFact::Const(a);
            }
        }
        let load_ok = match (class, policy, addr) {
            (OpClass::Load, LoadPolicy::Initial { stored }, AddrFact::Const(a)) => {
                let width = inst.op.mem_width().map(|w| w.bytes()).unwrap_or(0);
                (0..width).all(|i| !stored.contains(&a.wrapping_add(i)))
            }
            (OpClass::Load, _, _) => false,
            _ => true,
        };
        if load_ok {
            if let Some(v) = out.result {
                result = Value::Const(v);
            }
        }
    }

    if let Some(dst) = inst.dst {
        state.set(dst, result);
    }
    (result, addr)
}

/// Feasible out edges of block `b` given its end-of-block state: the
/// CFG's role-tagged edges, pruned where the terminator's operands are
/// constant enough to decide the transfer.
fn feasible_edges(
    prog: &Program,
    cfg: &Cfg,
    b: usize,
    state: &RegState,
) -> Vec<(usize, EdgeRole)> {
    let blk = &cfg.blocks[b];
    let inst = &prog.insts[blk.end - 1];
    let class = inst.op.class();
    let all_const = inst.sources().all(|r| matches!(state.get(r), Value::Const(_)));

    if class == OpClass::Branch && all_const {
        let read = |r: Reg| match state.get(r) {
            Value::Const(v) => v,
            Value::Bottom => 0,
        };
        let out = execute(inst, prog.addr_of(blk.end - 1), read, &MemImage::new());
        let taken = out.control.map(|c| c.taken).unwrap_or(false);
        let want = if taken {
            EdgeRole::Target
        } else {
            EdgeRole::Fallthrough
        };
        return blk
            .out_edges
            .iter()
            .copied()
            .filter(|&(_, role)| role == want)
            .collect();
    }
    if class == OpClass::JumpReg && all_const {
        // Constant indirect target: keep only the matching computed
        // edge (plus the return point for `jalr`).
        let target = inst.src1.map(|r| match state.get(r) {
            Value::Const(v) => v,
            Value::Bottom => 0,
        });
        return blk
            .out_edges
            .iter()
            .copied()
            .filter(|&(s, role)| match role {
                EdgeRole::Computed => {
                    Some(prog.addr_of(cfg.blocks[s].start)) == target
                }
                EdgeRole::CallReturn => true,
                _ => false,
            })
            .collect();
    }
    blk.out_edges.clone()
}

/// Runs the edge-worklist propagation to fixpoint under `policy`.
fn solve(prog: &Program, cfg: &Cfg, policy: &LoadPolicy<'_>, mem: &MemImage) -> Fixpoint {
    let n = cfg.blocks.len();
    let mut fp = Fixpoint {
        state_in: vec![None; n],
        executable: vec![false; n],
    };
    if n == 0 {
        return fp;
    }
    fp.state_in[cfg.entry] = Some(RegState::entry());
    fp.executable[cfg.entry] = true;
    let mut worklist: Vec<usize> = vec![cfg.entry];

    while let Some(b) = worklist.pop() {
        let Some(mut state) = fp.state_in[b].clone() else {
            continue;
        };
        let blk = &cfg.blocks[b];
        for i in blk.insts() {
            transfer(&prog.insts[i], prog.addr_of(i), &mut state, policy, mem);
        }
        for (s, role) in feasible_edges(prog, cfg, b, &state) {
            let edge_state = match role {
                EdgeRole::CallReturn => RegState::havoc(),
                _ => state.clone(),
            };
            let changed = match &mut fp.state_in[s] {
                Some(existing) => existing.join_from(&edge_state),
                slot @ None => {
                    *slot = Some(edge_state);
                    true
                }
            };
            let newly_executable = !fp.executable[s];
            fp.executable[s] = true;
            if (changed || newly_executable) && !worklist.contains(&s) {
                worklist.push(s);
            }
        }
    }
    fp
}

/// Walks the fixpoint once, recording per-instruction facts.
fn collect(
    prog: &Program,
    cfg: &Cfg,
    fp: &Fixpoint,
    policy: &LoadPolicy<'_>,
    mem: &MemImage,
) -> Vec<InstFacts> {
    let mut facts: Vec<InstFacts> = prog
        .insts
        .iter()
        .map(|inst| InstFacts {
            executable: false,
            const_result: None,
            addr: if matches!(inst.op.class(), OpClass::Load | OpClass::Store) {
                AddrFact::Unknown
            } else {
                AddrFact::NotMem
            },
        })
        .collect();
    for (b, blk) in cfg.blocks.iter().enumerate() {
        let Some(state_in) = &fp.state_in[b] else {
            continue;
        };
        if !fp.executable[b] {
            continue;
        }
        let mut state = state_in.clone();
        for i in blk.insts() {
            let (result, addr) = transfer(&prog.insts[i], prog.addr_of(i), &mut state, policy, mem);
            facts[i] = InstFacts {
                executable: true,
                const_result: match result {
                    Value::Const(v) => Some(v),
                    Value::Bottom => None,
                },
                addr,
            };
        }
    }
    facts
}

/// Byte footprint of all feasible stores, or `None` if any feasible
/// store has a non-constant address.
fn store_footprint(prog: &Program, facts: &[InstFacts]) -> Option<BTreeSet<u64>> {
    let mut stored = BTreeSet::new();
    for (i, inst) in prog.insts.iter().enumerate() {
        if inst.op.class() != OpClass::Store || !facts[i].executable {
            continue;
        }
        match facts[i].addr {
            AddrFact::Const(a) => {
                let width = inst.op.mem_width().map(|w| w.bytes()).unwrap_or(0);
                for off in 0..width {
                    stored.insert(a.wrapping_add(off));
                }
            }
            _ => return None,
        }
    }
    Some(stored)
}

/// Runs the full two-round propagation over `prog`.
pub fn run(prog: &Program, cfg: &Cfg) -> Sccp {
    let mut mem = MemImage::new();
    prog.load_data(&mut mem);

    let round_a = solve(prog, cfg, &LoadPolicy::Unknown, &mem);
    let facts_a = collect(prog, cfg, &round_a, &LoadPolicy::Unknown, &mem);

    let has_loads = prog
        .insts
        .iter()
        .enumerate()
        .any(|(i, inst)| inst.op.class() == OpClass::Load && facts_a[i].executable);
    if has_loads {
        if let Some(stored) = store_footprint(prog, &facts_a) {
            let policy = LoadPolicy::Initial { stored: &stored };
            let round_b = solve(prog, cfg, &policy, &mem);
            let facts = collect(prog, cfg, &round_b, &policy, &mem);
            return Sccp {
                facts,
                executable_block: round_b.executable,
                resolved_loads: true,
            };
        }
    }
    Sccp {
        facts: facts_a,
        executable_block: round_a.executable,
        resolved_loads: false,
    }
}
