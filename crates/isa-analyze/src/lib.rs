//! # vpir-isa-analyze — static analysis of guest programs
//!
//! A std-only static analyzer for [`vpir_isa::Program`]s, the guest-side
//! counterpart of the host-source linter in `vpir-analyze`:
//!
//! * control-flow graph construction with unreachable-block detection
//!   ([`cfg`]),
//! * dominators and natural loops ([`dom`]),
//! * dataflow: reaching definitions and must-initialized registers
//!   ([`dataflow`]), and sparse conditional constant propagation driven
//!   by the real architectural semantics ([`sccp`]),
//! * a static redundancy classification — *invariant* /
//!   *stride-derivable* / *input-dependent* — mirroring the dynamic
//!   Figure 8 taxonomy of the Sodani & Sohi limit study ([`classify`]),
//! * structural lints L1–L4 sharing `vpir-analyze`'s finding and report
//!   machinery, and
//! * cross-validation of the static classification against the dynamic
//!   per-PC limit-study counts ([`xval`]), with the one-sided guarantee
//!   that statically invariant instructions are dynamically repeated.
//!
//! # Examples
//!
//! ```
//! use vpir_isa::asm;
//! let prog = asm::assemble(
//!     "       li   r1, 3
//!             li   r2, 0
//!      loop:  addi r2, r2, 5
//!             addi r1, r1, -1
//!             bne  r1, r0, loop
//!             halt",
//! )?;
//! let analysis = vpir_isa_analyze::analyze_program(&prog, "demo.s");
//! assert!(analysis.findings.is_empty());
//! assert_eq!(analysis.loops.loops.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod classify;
pub mod dataflow;
pub mod dom;
pub mod sccp;
pub mod xval;

use std::fmt::Write as _;

use vpir_analyze::Finding;
use vpir_isa::Program;

pub use cfg::{Cfg, EdgeRole};
pub use classify::StaticClass;
pub use dom::LoopInfo;
pub use sccp::{AddrFact, Sccp};
pub use xval::{cross_validate, Xval};

/// Top-level keys every [`Analysis::to_json`] object carries; consumers
/// (the CLI, the HTTP service, CI) validate emitted JSON against this.
pub const REQUIRED_KEYS: &[&str] = &[
    "file",
    "insts",
    "blocks",
    "unreachable_blocks",
    "loops",
    "producers",
    "classes",
    "live",
    "findings",
];

/// Everything the analyzer concluded about one static instruction.
#[derive(Debug, Clone)]
pub struct InstSummary {
    /// Instruction index in the text segment.
    pub index: usize,
    /// Byte address.
    pub addr: u64,
    /// Disassembled form.
    pub text: String,
    /// Whether constant propagation found the instruction executable.
    pub executable: bool,
    /// Static redundancy class; `None` for non-result-producers.
    pub class: Option<StaticClass>,
    /// The proven-constant result value, when invariant.
    pub const_value: Option<u64>,
    /// Loop-nesting depth of the containing block.
    pub loop_depth: u32,
    /// Byte address of the innermost containing loop's header block.
    pub loop_header: Option<u64>,
}

/// Full analysis of one program.
#[derive(Debug)]
pub struct Analysis {
    /// The (display) file name the program came from.
    pub file: String,
    /// The control-flow graph.
    pub cfg: Cfg,
    /// Dominators and natural loops.
    pub loops: LoopInfo,
    /// Constant-propagation facts.
    pub sccp: Sccp,
    /// Per-instruction summaries, in address order.
    pub insts: Vec<InstSummary>,
    /// Structural lint findings (L1–L4).
    pub findings: Vec<Finding>,
}

impl Analysis {
    /// `(invariant, stride-derivable, input-dependent, producers)`
    /// counts over the static instructions.
    pub fn class_counts(&self) -> (u64, u64, u64, u64) {
        let mut c = (0, 0, 0, 0);
        for inst in &self.insts {
            match inst.class {
                Some(StaticClass::Invariant) => c.0 += 1,
                Some(StaticClass::StrideDerivable) => c.1 += 1,
                Some(StaticClass::InputDependent) => c.2 += 1,
                None => continue,
            }
            c.3 += 1;
        }
        c
    }

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let unreachable = self.cfg.unreachable_blocks().len();
        let (inv, stride, dep, producers) = self.class_counts();
        let _ = writeln!(
            out,
            "{}: {} inst(s), {} block(s) ({} unreachable), {} loop(s)",
            self.file,
            self.insts.len(),
            self.cfg.blocks.len(),
            unreachable,
            self.loops.loops.len()
        );
        let _ = writeln!(
            out,
            "  classes: {inv} invariant, {stride} stride-derivable, {dep} input-dependent (of {producers} producers)"
        );
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}: {}({}): {}",
                f.location(),
                f.rule.id(),
                f.rule.name(),
                f.message
            );
        }
        out
    }

    /// Machine-readable report (single JSON object).
    pub fn to_json(&self) -> String {
        let (inv, stride, dep, producers) = self.class_counts();
        let mut out = String::from("{");
        let _ = write!(out, "\"file\":\"{}\",", escape(&self.file));
        let _ = write!(out, "\"insts\":{},", self.insts.len());
        let _ = write!(out, "\"blocks\":{},", self.cfg.blocks.len());
        let _ = write!(
            out,
            "\"unreachable_blocks\":{},",
            self.cfg.unreachable_blocks().len()
        );
        let _ = write!(out, "\"loops\":{},", self.loops.loops.len());
        let _ = write!(out, "\"producers\":{producers},");
        let _ = write!(
            out,
            "\"classes\":{{\"invariant\":{inv},\"stride_derivable\":{stride},\"input_dependent\":{dep}}},"
        );
        let _ = write!(out, "\"live\":{},", self.findings.len());
        out.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"name\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                f.rule.id(),
                f.rule.name(),
                escape(&f.file),
                f.line,
                f.col,
                escape(&f.message)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Runs the full analysis pipeline over `prog`. `file` is the display
/// name used in findings (e.g. the `.s` path or a workload name).
pub fn analyze_program(prog: &Program, file: &str) -> Analysis {
    let cfg = cfg::build(prog);
    let loops = dom::analyze(&cfg);
    let sccp = sccp::run(prog, &cfg);
    let rd = dataflow::reaching_defs(prog, &cfg);
    let classes = classify::classify(prog, &cfg, &loops, &sccp, &rd);
    let findings = classify::lints(prog, &cfg, &sccp, file);

    let insts = prog
        .insts
        .iter()
        .enumerate()
        .map(|(i, inst)| {
            let b = cfg.block_of.get(i).copied().unwrap_or(0);
            InstSummary {
                index: i,
                addr: prog.addr_of(i),
                text: inst.to_string(),
                executable: sccp.facts[i].executable,
                class: classes[i],
                const_value: sccp.facts[i].const_result,
                loop_depth: loops.depth.get(b).copied().unwrap_or(0),
                loop_header: loops
                    .innermost
                    .get(b)
                    .copied()
                    .flatten()
                    .map(|h| prog.addr_of(cfg.blocks[h].start)),
            }
        })
        .collect();

    Analysis {
        file: file.to_string(),
        cfg,
        loops,
        sccp,
        insts,
        findings,
    }
}

/// Escapes a string for inclusion in a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
