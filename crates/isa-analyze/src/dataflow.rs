//! Classic bit-vector dataflow over the CFG: reaching definitions
//! (forward, union) and must-initialized registers (forward,
//! intersection — lint L2).

use vpir_isa::{Program, Reg, NUM_REGS};

use crate::cfg::{Cfg, EdgeRole};

/// One definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// Instruction index of the definition.
    pub inst: usize,
    /// Defined register; `None` for a call's wildcard clobber (the
    /// callee may write any register).
    pub reg: Option<Reg>,
}

/// A dense bitset sized to the definition-site universe.
type BitVec = Vec<u64>;

fn bit_set(v: &mut BitVec, i: usize) {
    v[i / 64] |= 1 << (i % 64);
}

fn bit_get(v: &[u64], i: usize) -> bool {
    v[i / 64] & (1 << (i % 64)) != 0
}

/// Reaching definitions: which definition sites may reach each block
/// entry.
pub struct ReachingDefs {
    /// The definition-site universe, in instruction order.
    pub sites: Vec<DefSite>,
    in_by_block: Vec<BitVec>,
}

impl ReachingDefs {
    /// Definite definition sites of `reg` that may reach `inst_idx`
    /// (instruction indexes), plus whether a call's wildcard clobber
    /// also reaches it.
    pub fn defs_reaching(
        &self,
        prog: &Program,
        cfg: &Cfg,
        inst_idx: usize,
        reg: Reg,
    ) -> (Vec<usize>, bool) {
        let b = cfg.block_of[inst_idx];
        let mut live = self.in_by_block[b].clone();
        for i in cfg.blocks[b].start..inst_idx {
            self.apply_inst(prog, i, &mut live);
        }
        let mut defs = Vec::new();
        let mut wildcard = false;
        for (s, site) in self.sites.iter().enumerate() {
            if !bit_get(&live, s) {
                continue;
            }
            match site.reg {
                Some(r) if r == reg => defs.push(site.inst),
                None => wildcard = true,
                _ => {}
            }
        }
        (defs, wildcard)
    }

    /// Applies instruction `i`'s gen/kill to `live`.
    fn apply_inst(&self, prog: &Program, i: usize, live: &mut BitVec) {
        let inst = &prog.insts[i];
        if let Some(dst) = inst.dst.filter(|d| !d.is_zero()) {
            // A definite def kills every other definite def of the same
            // register (wildcards are may-defs and survive).
            for (s, site) in self.sites.iter().enumerate() {
                if site.reg == Some(dst) && site.inst != i && bit_get(live, s) {
                    live[s / 64] &= !(1 << (s % 64));
                }
            }
        }
        for (s, site) in self.sites.iter().enumerate() {
            if site.inst == i {
                bit_set(live, s);
            }
        }
    }
}

/// Computes reaching definitions over the reachable CFG.
pub fn reaching_defs(prog: &Program, cfg: &Cfg) -> ReachingDefs {
    let mut sites = Vec::new();
    for (i, inst) in prog.insts.iter().enumerate() {
        if let Some(dst) = inst.dst.filter(|d| !d.is_zero()) {
            sites.push(DefSite {
                inst: i,
                reg: Some(dst),
            });
        }
        if inst.is_call() {
            sites.push(DefSite { inst: i, reg: None });
        }
    }
    let words = sites.len().div_ceil(64).max(1);
    let n = cfg.blocks.len();
    let mut rd = ReachingDefs {
        sites,
        in_by_block: vec![vec![0; words]; n],
    };

    // Iterate to fixpoint: union join, so sets only grow.
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            if !cfg.reachable[b] {
                continue;
            }
            let mut out = rd.in_by_block[b].clone();
            for i in cfg.blocks[b].insts() {
                rd.apply_inst(prog, i, &mut out);
            }
            for &(s, _) in &cfg.blocks[b].out_edges {
                let mut grew = false;
                for w in 0..words {
                    let nv = rd.in_by_block[s][w] | out[w];
                    if nv != rd.in_by_block[s][w] {
                        rd.in_by_block[s][w] = nv;
                        grew = true;
                    }
                }
                changed |= grew;
            }
        }
    }
    rd
}

/// A register read whose register has no write on some path from the
/// program entry (lint L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UninitRead {
    /// Instruction index of the read.
    pub inst: usize,
    /// The register read before being written.
    pub reg: Reg,
}

const ALL_REGS: u128 = (1u128 << NUM_REGS) - 1;

fn reg_bit(r: Reg) -> u128 {
    1u128 << r.index()
}

/// Must-initialized register analysis: finds reads of registers that
/// some entry path never writes. The machine zeroes every register at
/// startup, so these are well-defined executions — but depending on an
/// implicit zero is almost always an authoring mistake, which is why it
/// is a lint rather than an error.
///
/// Conservative choices to stay quiet: the entry state initializes `r0`
/// and `sp` (hardware reality), and a call-return edge initializes
/// everything (the callee may have written any register).
pub fn uninit_reads(prog: &Program, cfg: &Cfg) -> Vec<UninitRead> {
    let n = cfg.blocks.len();
    if n == 0 {
        return Vec::new();
    }
    let init = reg_bit(Reg::ZERO) | reg_bit(Reg::SP);
    let mut in_set = vec![ALL_REGS; n];
    in_set[cfg.entry] = init;

    let block_out = |in_val: u128, b: usize| -> u128 {
        let mut out = in_val;
        for i in cfg.blocks[b].insts() {
            if let Some(dst) = prog.insts[i].dst {
                out |= reg_bit(dst);
            }
        }
        out
    };

    // Intersection join: sets only shrink, so iterate to fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            if !cfg.reachable[b] {
                continue;
            }
            let out = block_out(in_set[b], b);
            for &(s, role) in &cfg.blocks[b].out_edges {
                let v = if role == EdgeRole::CallReturn {
                    ALL_REGS
                } else {
                    out
                };
                let nv = in_set[s] & v;
                if nv != in_set[s] {
                    in_set[s] = nv;
                    changed = true;
                }
            }
        }
    }

    let mut reads = Vec::new();
    for b in 0..n {
        if !cfg.reachable[b] {
            continue;
        }
        let mut live = in_set[b];
        for i in cfg.blocks[b].insts() {
            let inst = &prog.insts[i];
            for src in inst.sources() {
                if live & reg_bit(src) == 0 {
                    reads.push(UninitRead { inst: i, reg: src });
                }
            }
            if let Some(dst) = inst.dst {
                live |= reg_bit(dst);
            }
        }
    }
    reads.sort_by_key(|r| (r.inst, r.reg.index()));
    reads.dedup();
    reads
}
