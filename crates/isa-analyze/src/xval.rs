//! Cross-validation of the static classification against the dynamic
//! limit study (`vpir_redundancy::analyze_per_pc`).
//!
//! The join is per static instruction address: the static side predicts
//! *invariant* / *stride-derivable* / *input-dependent*; the dynamic
//! side reports the dominant Figure 8 class actually observed. The
//! headline claim is one-sided — **statically invariant instructions
//! must be dynamically repeated** (zero false positives) — because the
//! constant propagation only calls a result `Const` when it holds on
//! every execution. Recall is necessarily partial: plenty of dynamic
//! repetition comes from program *inputs* repeating, which no static
//! analysis can see.

use std::collections::BTreeMap;

use vpir_redundancy::PcClassCounts;

use crate::classify::StaticClass;
use crate::InstSummary;

/// Result of joining static and dynamic classifications.
#[derive(Debug, Clone, Default)]
pub struct Xval {
    /// Static instructions in the comparison universe (result producers
    /// executed at least twice).
    pub universe: u64,
    /// Universe members predicted invariant.
    pub static_invariant: u64,
    /// Universe members whose dominant dynamic class is `repeated`.
    pub dynamic_repeated: u64,
    /// Predicted invariant and dominantly repeated.
    pub true_positives: u64,
    /// Addresses predicted invariant that never produced a repeated
    /// result — each one disproves the constant-propagation proof, so
    /// this must stay empty.
    pub false_positive_pcs: Vec<u64>,
    /// `static class name × dominant dynamic class name → count` over
    /// the universe.
    pub matrix: BTreeMap<(&'static str, &'static str), u64>,
}

impl Xval {
    /// Precision of "statically invariant" against "dominantly
    /// repeated" (1.0 when nothing was predicted).
    pub fn precision(&self) -> f64 {
        if self.static_invariant == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.static_invariant as f64
        }
    }

    /// Recall of "statically invariant" against "dominantly repeated".
    pub fn recall(&self) -> f64 {
        if self.dynamic_repeated == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.dynamic_repeated as f64
        }
    }

    /// Single JSON object with the join counts, rates, and matrix.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(out, "\"universe\":{},", self.universe);
        let _ = write!(out, "\"static_invariant\":{},", self.static_invariant);
        let _ = write!(out, "\"dynamic_repeated\":{},", self.dynamic_repeated);
        let _ = write!(out, "\"true_positives\":{},", self.true_positives);
        let _ = write!(
            out,
            "\"false_positives\":{},",
            self.false_positive_pcs.len()
        );
        let _ = write!(out, "\"precision\":{:.6},", self.precision());
        let _ = write!(out, "\"recall\":{:.6},", self.recall());
        out.push_str("\"matrix\":[");
        for (i, ((s, d), n)) in self.matrix.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"static\":\"{s}\",\"dynamic\":\"{d}\",\"count\":{n}}}");
        }
        out.push_str("]}");
        out
    }
}

/// Joins the static per-instruction summaries with the dynamic per-PC
/// counts.
pub fn cross_validate(insts: &[InstSummary], per_pc: &BTreeMap<u64, PcClassCounts>) -> Xval {
    let mut xval = Xval::default();
    for inst in insts {
        let Some(class) = inst.class else {
            continue;
        };
        let Some(counts) = per_pc.get(&inst.addr) else {
            continue;
        };
        if counts.executions < 2 {
            continue;
        }
        xval.universe += 1;
        let dominant = counts.dominant_class();
        *xval.matrix.entry((class.name(), dominant)).or_insert(0) += 1;
        let is_invariant = class == StaticClass::Invariant;
        let is_repeated = dominant == "repeated";
        if is_invariant {
            xval.static_invariant += 1;
            if counts.repeated == 0 {
                xval.false_positive_pcs.push(inst.addr);
            }
        }
        if is_repeated {
            xval.dynamic_repeated += 1;
        }
        if is_invariant && is_repeated {
            xval.true_positives += 1;
        }
    }
    xval
}
