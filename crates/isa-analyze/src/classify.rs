//! Static redundancy classification and the structural lints L1–L4.
//!
//! Every result-producing static instruction is placed in one of three
//! classes, mirroring the dynamic Figure 8 taxonomy of the limit study:
//!
//! * **invariant** — constant propagation proved the result is the same
//!   value on every execution (the static analogue of *repeated*);
//! * **stride-derivable** — a self-increment that advances by a fixed
//!   stride once per loop iteration (the static analogue of
//!   *derivable*);
//! * **input-dependent** — everything else.

use vpir_isa::{OpClass, Program};
use vpir_analyze::{Finding, Rule};

use crate::cfg::Cfg;
use crate::dataflow::{self, ReachingDefs};
use crate::dom::LoopInfo;
use crate::sccp::{AddrFact, Sccp};

/// The static redundancy class of a result-producing instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticClass {
    /// Proven to produce one constant value on every execution.
    Invariant,
    /// Advances by a fixed non-zero stride once per loop iteration.
    StrideDerivable,
    /// No static redundancy claim.
    InputDependent,
}

impl StaticClass {
    /// Short name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            StaticClass::Invariant => "invariant",
            StaticClass::StrideDerivable => "stride-derivable",
            StaticClass::InputDependent => "input-dependent",
        }
    }
}

/// Whether instruction `i` participates in the dynamic limit study's
/// "result-producing" universe (same predicate as
/// `vpir_redundancy::analyze_per_pc`).
pub fn is_producer(prog: &Program, i: usize) -> bool {
    let inst = &prog.insts[i];
    inst.dst.is_some()
        && !matches!(
            inst.op.class(),
            OpClass::Jump | OpClass::JumpReg | OpClass::Misc
        )
}

/// Classifies every instruction; `None` for non-producers.
pub fn classify(
    prog: &Program,
    cfg: &Cfg,
    loops: &LoopInfo,
    sccp: &Sccp,
    rd: &ReachingDefs,
) -> Vec<Option<StaticClass>> {
    (0..prog.len())
        .map(|i| {
            if !is_producer(prog, i) {
                return None;
            }
            if !sccp.facts[i].executable {
                // Never executes; make no redundancy claim.
                return Some(StaticClass::InputDependent);
            }
            if sccp.facts[i].const_result.is_some() {
                return Some(StaticClass::Invariant);
            }
            if is_stride(prog, cfg, loops, rd, i) {
                return Some(StaticClass::StrideDerivable);
            }
            Some(StaticClass::InputDependent)
        })
        .collect()
}

/// A stride-derivable instruction: `addi rX, rX, imm` (imm ≠ 0) inside
/// a loop, executing once per iteration (its block dominates every back
/// edge), where the only in-loop definition of `rX` reaching it is
/// itself and the loop body contains no calls (which could clobber
/// `rX`).
fn is_stride(prog: &Program, cfg: &Cfg, loops: &LoopInfo, rd: &ReachingDefs, i: usize) -> bool {
    let inst = &prog.insts[i];
    if inst.op != vpir_isa::Op::Addi || inst.imm == 0 {
        return false;
    }
    let (Some(dst), Some(src)) = (inst.dst, inst.src1) else {
        return false;
    };
    if dst != src {
        return false;
    }
    let b = cfg.block_of[i];
    let Some(header) = loops.innermost[b] else {
        return false;
    };
    let Some(lp) = loops.loops.get(&header) else {
        return false;
    };
    // Must run exactly once per iteration.
    if !lp.tails.iter().all(|&t| loops.dominates(b, t)) {
        return false;
    }
    // No calls in the loop (a callee could redefine the register).
    for &blk in &lp.body {
        for j in cfg.blocks[blk].insts() {
            if prog.insts[j].is_call() {
                return false;
            }
        }
    }
    // The only in-loop definition reaching the increment is itself.
    let (defs, wildcard) = rd.defs_reaching(prog, cfg, i, dst);
    if wildcard {
        return false;
    }
    defs.iter()
        .all(|&j| j == i || !lp.body.contains(&cfg.block_of[j]))
}

/// Builds a lint [`Finding`] anchored at instruction `i`.
fn finding(prog: &Program, file: &str, rule: Rule, i: usize, message: String) -> Finding {
    let loc = prog.src_loc(i).unwrap_or_default();
    Finding {
        rule,
        file: file.to_string(),
        line: loc.line as usize,
        col: loc.col as usize,
        message,
        suppressed: None,
    }
}

/// Runs the structural lints L1–L4.
pub fn lints(prog: &Program, cfg: &Cfg, sccp: &Sccp, file: &str) -> Vec<Finding> {
    let mut out = Vec::new();

    // L3 — undecodable entry or control-transfer targets.
    if !prog.is_empty() && !cfg.entry_valid {
        out.push(Finding {
            rule: Rule::BadTarget,
            file: file.to_string(),
            line: 0,
            col: 0,
            message: format!(
                "entry point {:#x} is not a decodable instruction address",
                prog.entry
            ),
            suppressed: None,
        });
    }
    for bt in &cfg.bad_targets {
        out.push(finding(
            prog,
            file,
            Rule::BadTarget,
            bt.inst,
            format!(
                "`{}` targets {:#x}, which is not a decodable instruction address",
                prog.insts[bt.inst], bt.target
            ),
        ));
    }

    // L1 — blocks unreachable from the entry.
    for b in cfg.unreachable_blocks() {
        let first = cfg.blocks[b].start;
        out.push(finding(
            prog,
            file,
            Rule::Unreachable,
            first,
            format!(
                "basic block at {:#x} (`{}`) is unreachable from the entry point",
                prog.addr_of(first),
                prog.insts[first]
            ),
        ));
    }

    // L2 — reads with no reaching write on some path.
    for r in dataflow::uninit_reads(prog, cfg) {
        out.push(finding(
            prog,
            file,
            Rule::UninitRead,
            r.inst,
            format!(
                "`{}` reads {} before any write reaches it (relies on the implicit startup zero)",
                prog.insts[r.inst], r.reg
            ),
        ));
    }

    // L4 — memory stored to but never loaded. Only claimed when every
    // feasible load and store has a proven-constant address, so a single
    // pointer-chasing access silences the lint rather than misfiring.
    let mut all_const = true;
    let mut loaded: Vec<(u64, u64)> = Vec::new(); // (addr, width)
    let mut stores: Vec<(usize, u64, u64)> = Vec::new();
    for (i, inst) in prog.insts.iter().enumerate() {
        if !sccp.facts[i].executable {
            continue;
        }
        let class = inst.op.class();
        if !matches!(class, OpClass::Load | OpClass::Store) {
            continue;
        }
        let width = inst.op.mem_width().map(|w| w.bytes()).unwrap_or(0);
        match sccp.facts[i].addr {
            AddrFact::Const(a) if class == OpClass::Load => loaded.push((a, width)),
            AddrFact::Const(a) => stores.push((i, a, width)),
            _ => all_const = false,
        }
    }
    if all_const {
        let overlaps = |a: u64, wa: u64, b: u64, wb: u64| a < b.wrapping_add(wb) && b < a.wrapping_add(wa);
        for (i, a, w) in stores {
            if !loaded.iter().any(|&(la, lw)| overlaps(a, w, la, lw)) {
                out.push(finding(
                    prog,
                    file,
                    Rule::DeadStore,
                    i,
                    format!(
                        "`{}` stores to {:#x}, which no load ever reads",
                        prog.insts[i], a
                    ),
                ));
            }
        }
    }

    out
}
