//! Dominators and natural loops over a [`Cfg`].
//!
//! Immediate dominators come from the Cooper–Harvey–Kennedy iterative
//! algorithm over a reverse-postorder walk; natural loops are recovered
//! from back edges (`tail → head` where `head` dominates `tail`), with
//! bodies computed by reverse reachability and same-header loops merged.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::Cfg;

/// Dominator tree plus loop nest of a CFG.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Immediate dominator per block (`None` for the entry block and for
    /// blocks unreachable from the entry).
    pub idom: Vec<Option<usize>>,
    /// Loops keyed by header block, in header order.
    pub loops: BTreeMap<usize, NaturalLoop>,
    /// Loop-nesting depth per block (0 = not in any loop).
    pub depth: Vec<u32>,
    /// Innermost loop header containing each block, if any.
    pub innermost: Vec<Option<usize>>,
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Header block (dominates every block in the body).
    pub header: usize,
    /// All blocks in the loop, header included, sorted.
    pub body: BTreeSet<usize>,
    /// Back-edge source blocks (`tail` in `tail → header`), sorted.
    pub tails: Vec<usize>,
}

impl LoopInfo {
    /// Whether `a` dominates `b` (reflexive; false for unreachable `b`).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

/// Reverse postorder of the reachable blocks from the entry.
fn reverse_postorder(cfg: &Cfg) -> Vec<usize> {
    let n = cfg.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit "children pushed" phase so the
    // postorder matches the recursive formulation.
    let mut stack: Vec<(usize, usize)> = Vec::new();
    if n == 0 {
        return post;
    }
    visited[cfg.entry] = true;
    stack.push((cfg.entry, 0));
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = &cfg.blocks[b].succs;
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Computes dominators and the loop nest of `cfg`.
pub fn analyze(cfg: &Cfg) -> LoopInfo {
    let n = cfg.blocks.len();
    let mut info = LoopInfo {
        idom: vec![None; n],
        loops: BTreeMap::new(),
        depth: vec![0; n],
        innermost: vec![None; n],
    };
    if n == 0 {
        return info;
    }

    let rpo = reverse_postorder(cfg);
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }

    // Cooper–Harvey–Kennedy: iterate to fixpoint over reverse postorder.
    // `idom[entry] = entry` during iteration (cleared afterwards).
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[cfg.entry] = Some(cfg.entry);
    let intersect = |idom: &[Option<usize>], rpo_index: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = match idom[a] {
                    Some(d) => d,
                    None => return b,
                };
            }
            while rpo_index[b] > rpo_index[a] {
                b = match idom[b] {
                    Some(d) => d,
                    None => return a,
                };
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            if b == cfg.entry {
                continue;
            }
            let mut new_idom: Option<usize> = None;
            for &p in &cfg.blocks[b].preds {
                if idom[p].is_none() {
                    continue; // not yet processed or unreachable
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_index, p, cur),
                });
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    for b in 0..n {
        info.idom[b] = if b == cfg.entry { None } else { idom[b] };
    }
    // A self-idom outside the entry never happens; unreachable stays None.

    // Natural loops from back edges, in deterministic (tail, head) order.
    let dominates = |h: usize, t: usize| -> bool {
        let mut cur = t;
        loop {
            if cur == h {
                return true;
            }
            cur = match info.idom[cur] {
                Some(d) => d,
                None => return false,
            };
        }
    };
    for tail in 0..n {
        if !cfg.reachable[tail] {
            continue;
        }
        for &head in &cfg.blocks[tail].succs {
            if !dominates(head, tail) {
                continue;
            }
            let entry = info.loops.entry(head).or_insert_with(|| NaturalLoop {
                header: head,
                body: BTreeSet::from([head]),
                tails: Vec::new(),
            });
            entry.tails.push(tail);
            // Reverse reachability from the tail, not crossing the header.
            let mut stack = vec![tail];
            while let Some(b) = stack.pop() {
                if !entry.body.insert(b) {
                    continue;
                }
                for &p in &cfg.blocks[b].preds {
                    if !entry.body.contains(&p) {
                        stack.push(p);
                    }
                }
            }
        }
    }

    // Depth and innermost header. Loops sorted by body size descending
    // means later (smaller) loops overwrite `innermost` — the smallest
    // containing loop wins; equal sizes break by header order.
    let mut by_size: Vec<&NaturalLoop> = info.loops.values().collect();
    by_size.sort_by_key(|l| (std::cmp::Reverse(l.body.len()), l.header));
    for l in by_size {
        for &b in &l.body {
            info.depth[b] += 1;
            info.innermost[b] = Some(l.header);
        }
    }
    info
}
