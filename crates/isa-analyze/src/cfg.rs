//! Control-flow graph construction over a [`Program`]'s text segment.
//!
//! Basic blocks are partitioned at labels, control-transfer
//! instructions, and their targets. Edges follow the interprocedural
//! approximation documented on [`Cfg`]: a `jal` gets both a call edge to
//! its target and a fallthrough edge to its return point (callees are
//! assumed to return), a `jr ra` ends a block with no successors (the
//! matching fallthrough edge at the call site represents the return),
//! and computed transfers (`jalr`, `jr` through a non-`ra` register)
//! conservatively target every address-taken text label.

use std::collections::{BTreeMap, BTreeSet};

use vpir_isa::{Op, OpClass, Program, INST_BYTES};

/// How control reaches a successor, which the dataflow passes need to
/// distinguish: a `CallReturn` edge models "the callee has run and
/// returned", so register state must be treated as clobbered along it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeRole {
    /// Sequential execution into the next block (includes the not-taken
    /// path of a conditional branch).
    Fallthrough,
    /// The taken path of a direct branch or jump.
    Target,
    /// A computed transfer (`jalr` / non-return `jr`) to an
    /// address-taken label.
    Computed,
    /// The return point after a call (`jal` / `jalr`): state flows from
    /// before the call, through an unknown callee, to here.
    CallReturn,
}

/// One basic block: the half-open instruction-index range
/// `[start, end)` plus sorted, deduplicated edge lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block ids, sorted and deduplicated (a conditional
    /// branch whose target is its own fallthrough yields one edge).
    pub succs: Vec<usize>,
    /// Predecessor block ids, sorted and deduplicated.
    pub preds: Vec<usize>,
    /// Out edges with their roles, sorted; unlike `succs` a successor
    /// may appear twice under different roles (e.g. a branch whose
    /// target is its own fallthrough).
    pub out_edges: Vec<(usize, EdgeRole)>,
}

impl Block {
    /// Instruction indexes of this block.
    pub fn insts(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// A control transfer whose target is not a decodable instruction
/// address (outside the text segment or misaligned): lint L3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadTarget {
    /// Instruction index of the transfer.
    pub inst: usize,
    /// The byte address it targets.
    pub target: u64,
}

/// The control-flow graph of a program's text segment.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in address order (block id = index here).
    pub blocks: Vec<Block>,
    /// Block id containing the entry point.
    pub entry: usize,
    /// Instruction index → owning block id.
    pub block_of: Vec<usize>,
    /// Per block: reachable from the entry block along CFG edges.
    pub reachable: Vec<bool>,
    /// Control transfers with undecodable targets (lint L3).
    pub bad_targets: Vec<BadTarget>,
    /// Whether `Program::entry` itself decodes to an instruction.
    pub entry_valid: bool,
}

impl Cfg {
    /// Block ids in address order that are unreachable from the entry.
    pub fn unreachable_blocks(&self) -> Vec<usize> {
        (0..self.blocks.len())
            .filter(|&b| !self.reachable[b])
            .collect()
    }

    /// The byte address of instruction index `i` (delegates to the
    /// program geometry used at construction).
    pub fn addr_of(&self, text_base: u64, i: usize) -> u64 {
        text_base + (i as u64) * INST_BYTES
    }
}

/// Maps a byte address to an instruction index if it is a decodable
/// position in the text segment.
fn inst_index(prog: &Program, addr: u64) -> Option<usize> {
    let off = addr.checked_sub(prog.text_base)?;
    if off % INST_BYTES != 0 {
        return None;
    }
    let idx = (off / INST_BYTES) as usize;
    (idx < prog.len()).then_some(idx)
}

/// Text-label addresses whose value appears as an immediate of some
/// non-control instruction — the conservative "address taken" set that
/// computed transfers (`jalr`, non-return `jr`) may target.
fn address_taken(prog: &Program) -> BTreeSet<usize> {
    let text_labels: BTreeSet<u64> = prog
        .labels
        .values()
        .copied()
        .filter(|&a| inst_index(prog, a).is_some())
        .collect();
    let mut taken = BTreeSet::new();
    for inst in &prog.insts {
        let class = inst.op.class();
        if matches!(class, OpClass::Branch | OpClass::Jump | OpClass::JumpReg) {
            continue;
        }
        let imm = inst.imm as u64;
        if text_labels.contains(&imm) {
            if let Some(idx) = inst_index(prog, imm) {
                taken.insert(idx);
            }
        }
    }
    taken
}

/// Whether execution can continue at the next instruction after `i`.
fn falls_through(op: Op) -> bool {
    match op.class() {
        OpClass::Branch => true,      // not-taken path
        OpClass::Jump => op == Op::Jal, // call returns to the next inst
        OpClass::JumpReg => op == Op::Jalr, // ditto
        _ => op != Op::Halt,
    }
}

/// Whether `op` ends a basic block.
fn ends_block(op: Op) -> bool {
    matches!(
        op.class(),
        OpClass::Branch | OpClass::Jump | OpClass::JumpReg
    ) || op == Op::Halt
}

/// Builds the CFG of `prog`'s text segment.
pub fn build(prog: &Program) -> Cfg {
    let n = prog.len();
    if n == 0 {
        return Cfg {
            blocks: Vec::new(),
            entry: 0,
            block_of: Vec::new(),
            reachable: Vec::new(),
            bad_targets: Vec::new(),
            entry_valid: false,
        };
    }

    let mut bad_targets = Vec::new();
    let mut leaders: BTreeSet<usize> = BTreeSet::new();
    leaders.insert(0);
    let entry_idx = inst_index(prog, prog.entry);
    if let Some(e) = entry_idx {
        leaders.insert(e);
    }
    // Labels pointing into text start blocks (sorted for determinism —
    // the label map itself is hash-ordered).
    let mut label_targets: BTreeSet<usize> = BTreeSet::new();
    for &addr in prog.labels.values() {
        if let Some(idx) = inst_index(prog, addr) {
            label_targets.insert(idx);
        }
    }
    leaders.extend(label_targets.iter().copied());

    let taken = address_taken(prog);
    leaders.extend(taken.iter().copied());

    for (i, inst) in prog.insts.iter().enumerate() {
        let class = inst.op.class();
        if matches!(class, OpClass::Branch | OpClass::Jump) {
            match inst_index(prog, inst.target()) {
                Some(t) => {
                    leaders.insert(t);
                }
                None => bad_targets.push(BadTarget {
                    inst: i,
                    target: inst.target(),
                }),
            }
        }
        if ends_block(inst.op) && i + 1 < n {
            leaders.insert(i + 1);
        }
    }

    // Blocks from sorted leaders.
    let starts: Vec<usize> = leaders.into_iter().collect();
    let mut blocks: Vec<Block> = starts
        .iter()
        .enumerate()
        .map(|(b, &start)| Block {
            start,
            end: starts.get(b + 1).copied().unwrap_or(n),
            succs: Vec::new(),
            preds: Vec::new(),
            out_edges: Vec::new(),
        })
        .collect();
    let mut block_of = vec![0usize; n];
    for (b, blk) in blocks.iter().enumerate() {
        for i in blk.insts() {
            block_of[i] = b;
        }
    }

    // Edges, carrying their roles.
    let mut edges: Vec<(usize, usize, EdgeRole)> = Vec::new();
    for (b, blk) in blocks.iter().enumerate() {
        let last = blk.end - 1;
        let inst = &prog.insts[last];
        let class = inst.op.class();
        if matches!(class, OpClass::Branch | OpClass::Jump) {
            if let Some(t) = inst_index(prog, inst.target()) {
                edges.push((b, block_of[t], EdgeRole::Target));
            }
        }
        if class == OpClass::JumpReg && !inst.is_return() {
            // Computed transfer: may reach any address-taken label.
            for &t in &taken {
                edges.push((b, block_of[t], EdgeRole::Computed));
            }
        }
        if falls_through(inst.op) && blk.end < n {
            let role = if inst.is_call() {
                EdgeRole::CallReturn
            } else {
                EdgeRole::Fallthrough
            };
            edges.push((b, block_of[blk.end], role));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    for &(from, to, role) in &edges {
        blocks[from].succs.push(to);
        blocks[from].out_edges.push((to, role));
        blocks[to].preds.push(from);
    }
    for blk in &mut blocks {
        blk.succs.sort_unstable();
        blk.succs.dedup();
        blk.preds.sort_unstable();
        blk.preds.dedup();
        blk.out_edges.sort_unstable();
        blk.out_edges.dedup();
    }

    // Reachability from the entry block.
    let entry = entry_idx.map(|e| block_of[e]).unwrap_or(0);
    let mut reachable = vec![false; blocks.len()];
    let mut stack = vec![entry];
    while let Some(b) = stack.pop() {
        if reachable[b] {
            continue;
        }
        reachable[b] = true;
        for &s in &blocks[b].succs {
            if !reachable[s] {
                stack.push(s);
            }
        }
    }

    Cfg {
        blocks,
        entry,
        block_of,
        reachable,
        bad_targets,
        entry_valid: entry_idx.is_some(),
    }
}

/// A deterministic JSON rendering of the CFG structure (used by the
/// ordering-pin test: two builds must serialize byte-identically).
pub fn to_json(cfg: &Cfg) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"entry\":");
    let _ = write!(out, "{},\"blocks\":[", cfg.entry);
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if b > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"start\":{},\"end\":{},\"succs\":{:?},\"preds\":{:?},\"reachable\":{}}}",
            blk.start, blk.end, blk.succs, blk.preds, cfg.reachable[b]
        );
    }
    out.push_str("]}");
    out
}

/// Successor/predecessor consistency check used by tests.
#[doc(hidden)]
pub fn edge_sets(cfg: &Cfg) -> (BTreeMap<usize, Vec<usize>>, BTreeMap<usize, Vec<usize>>) {
    let succs = cfg
        .blocks
        .iter()
        .enumerate()
        .map(|(b, blk)| (b, blk.succs.clone()))
        .collect();
    let preds = cfg
        .blocks
        .iter()
        .enumerate()
        .map(|(b, blk)| (b, blk.preds.clone()))
        .collect();
    (succs, preds)
}
