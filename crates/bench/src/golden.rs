//! Golden-state digests: pins the simulator's observable results.
//!
//! A golden cell is one (benchmark × configuration) run at the quick
//! matrix scale, serialized through the exact-u64 JSON forms in
//! [`state`](crate::state) and hashed with FNV-1a-64. The digests were
//! recorded with the pre-columnar (array-of-structs) simulator and are
//! pinned by `tests/golden.rs`: any layout or scheduling change that
//! alters a single counter, stat, or limit-study number flips a digest.
//!
//! Regenerate the fixture (only for an *intentional* semantic change)
//! with:
//!
//! ```text
//! cargo run -p vpir-bench --example golden_gen > crates/bench/tests/fixtures/golden_digests.json
//! ```

use vpir_core::{RunLimits, Simulator};
use vpir_redundancy::{analyze, LimitConfig};
use vpir_workloads::Bench;

use crate::matrix::{config_for_label, MatrixConfig};
use crate::state::{limit_to_json, stats_to_json};

/// The configuration families pinned by the golden suite: the paper's
/// baseline, one representative VP cell, both IR validation policies,
/// one trace-reuse cell, and the functional limit study.
pub const GOLDEN_LABELS: [&str; 6] =
    ["base", "magic:ME-SB:vl1", "ir_early", "ir_late", "rtb:t8", "limit"];

/// FNV-1a 64-bit over one byte string (the digest of a serialized run).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs one golden cell and returns the FNV-1a-64 digest of its
/// exact-u64 JSON serialization.
///
/// # Panics
///
/// Panics if `label` is not one of [`GOLDEN_LABELS`].
pub fn golden_digest(bench: Bench, label: &str) -> u64 {
    let cfg = MatrixConfig::quick();
    let prog = bench.program(cfg.scale);
    let json = if label == "limit" {
        limit_to_json(&analyze(&prog, cfg.limit_insts, LimitConfig::default()))
    } else {
        let core = config_for_label(label).expect("unknown golden label");
        let mut sim = Simulator::new(&prog, core);
        stats_to_json(sim.run(RunLimits::cycles(cfg.max_cycles)))
    };
    fnv1a64(json.as_bytes())
}

/// Renders the full golden fixture table as JSON: one object per cell
/// with `bench`, `config`, and the hex digest.
pub fn golden_fixture_json() -> String {
    let mut out = String::from("{\n  \"schema\": \"vpir-golden-v1\",\n  \"cells\": [\n");
    let mut first = true;
    for bench in Bench::ALL {
        for label in GOLDEN_LABELS {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"bench\": \"{}\", \"config\": \"{}\", \"digest\": \"{:016x}\"}}",
                bench.name(),
                label,
                golden_digest(bench, label)
            ));
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}
