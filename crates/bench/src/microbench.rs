//! A minimal wall-clock benchmarking harness.
//!
//! The workspace is offline-buildable and therefore cannot depend on
//! criterion; this module provides the small slice the bench targets
//! need: named groups, warm-up, repeated sampling, median/min
//! reporting, and optional per-element throughput.
//!
//! ```no_run
//! use vpir_bench::microbench::{black_box, group};
//!
//! let mut g = group("cache");
//! g.throughput(1024).bench("access_1k", || {
//!     for i in 0..1024u64 {
//!         black_box(i * 3);
//!     }
//! });
//! ```

use std::time::Instant;

pub use std::hint::black_box;

/// Timed invocations discarded before sampling starts.
const WARMUP: u32 = 3;
/// Timed samples per benchmark.
const SAMPLES: usize = 10;

/// Starts a named group of benchmarks.
pub fn group(name: &str) -> Group {
    Group {
        name: name.to_string(),
        elements: None,
    }
}

/// A named collection of benchmarks sharing an optional throughput.
#[derive(Debug)]
pub struct Group {
    name: String,
    elements: Option<u64>,
}

impl Group {
    /// Reports results as time per element over `elements` work items.
    pub fn throughput(&mut self, elements: u64) -> &mut Group {
        self.elements = Some(elements);
        self
    }

    /// Times `f`, which reports how many simulated cycles it ran, and
    /// prints the median and best throughput in cycles per second — the
    /// steady-state figure the zero-allocation cycle loop is tuned for
    /// (and the same unit `vpir bench` persists in `BENCH_matrix.json`).
    pub fn bench_cycle_rate(&mut self, name: &str, mut f: impl FnMut() -> u64) -> &mut Group {
        for _ in 0..WARMUP {
            black_box(f());
        }
        let mut rates = [0f64; SAMPLES];
        for r in &mut rates {
            let start = Instant::now();
            let cycles = black_box(f());
            let secs = start.elapsed().as_secs_f64().max(1e-12);
            *r = cycles as f64 / secs;
        }
        rates.sort_unstable_by(|a, b| a.total_cmp(b));
        let median = rates[SAMPLES / 2];
        let best = rates[SAMPLES - 1];
        println!(
            "{}/{name}: {} cycles/sec median, {} best",
            self.name,
            fmt_rate(median),
            fmt_rate(best)
        );
        self
    }

    /// Times `f`, printing the median and minimum over the samples.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &mut Group {
        for _ in 0..WARMUP {
            black_box(f());
        }
        let mut samples = [0u64; SAMPLES];
        for s in &mut samples {
            let start = Instant::now();
            black_box(f());
            *s = start.elapsed().as_nanos() as u64;
        }
        samples.sort_unstable();
        let median = samples[SAMPLES / 2];
        let min = samples[0];
        let mut line = format!(
            "{}/{name}: median {}, min {}",
            self.name,
            fmt_ns(median),
            fmt_ns(min)
        );
        if let Some(elems) = self.elements {
            if elems > 0 {
                line.push_str(&format!(" ({}/elem)", fmt_ns(median / elems)));
            }
        }
        println!("{line}");
        self
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}
