//! Wall-clock measurement of the matrix runner.
//!
//! Runs the (benchmark × configuration) matrix under the work-queue
//! scheduler while timing each phase, and serialises the result as
//! `BENCH_matrix.json` so the repo carries a perf trajectory from PR to
//! PR. The JSON is hand-rolled (the workspace is offline and carries no
//! serde); [`validate_json`] — re-exported from the shared
//! `vpir-jsonlite` crate, where this module's original checker now
//! lives — is used by the CLI and CI to confirm the emitted file is
//! well-formed.

use std::time::Instant;

use vpir_workloads::Bench;

use crate::matrix::{
    build_programs, default_jobs, run_bench, run_matrix_outcome, JobFailure, Matrix,
    MatrixConfig, MatrixOutcome, RunOptions,
};
use crate::state::json_escape;

pub use vpir_jsonlite::validate_json;

/// Timings and rates for one measured matrix run.
#[derive(Debug, Clone)]
pub struct MatrixPerf {
    /// Workload scale (outer-loop multiplier).
    pub scale: u32,
    /// Per-run cycle cap.
    pub max_cycles: u64,
    /// Functional limit-study instruction cap.
    pub limit_insts: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// The host's available parallelism at run time.
    pub available_parallelism: usize,
    /// Benchmarks run.
    pub benches: Vec<String>,
    /// Cycle-level simulator runs in the matrix.
    pub sim_runs: usize,
    /// Cells in the (benchmark × configuration) matrix.
    pub total_jobs: usize,
    /// Cells that produced a result (the rest degraded to failures).
    pub completed_jobs: usize,
    /// Cells that failed, in job order (empty on a clean run).
    pub failures: Vec<JobFailure>,
    /// Seconds spent building benchmark programs (single-threaded).
    pub build_seconds: f64,
    /// Seconds spent in the parallel simulate phase.
    pub simulate_seconds: f64,
    /// Total simulated cycles over every run.
    pub total_sim_cycles: u64,
    /// Simulated cycles per wall-clock second in the simulate phase.
    pub sim_cycles_per_sec: f64,
    /// Sequential comparison, when requested: `(seconds, speedup,
    /// bit_identical)`.
    pub sequential: Option<(f64, f64, bool)>,
}

/// Runs the matrix with `jobs` workers (`0` = default), timing each
/// phase. With `compare_sequential`, also runs the reference sequential
/// runner and records its time, the speedup, and whether the parallel
/// result is bit-identical to it.
///
/// Panics if any cell fails; callers that want graceful degradation use
/// [`run_matrix_timed_opts`].
pub fn run_matrix_timed(
    cfg: MatrixConfig,
    jobs: usize,
    compare_sequential: bool,
) -> (Matrix, MatrixPerf) {
    let (outcome, perf) = run_matrix_timed_opts(
        &Bench::ALL,
        cfg,
        jobs,
        compare_sequential,
        &RunOptions::default(),
    );
    if let Some(first) = outcome.failures.first() {
        panic!(
            "matrix run failed: {} of {} jobs failed (first: {}/{}: {})",
            outcome.failures.len(),
            outcome.total_jobs,
            first.bench,
            first.config,
            first.error
        );
    }
    (outcome.matrix.expect("no failures"), perf)
}

/// Runs `benches` through the fault-isolated matrix runner with `jobs`
/// workers (`0` = default), timing each phase.
///
/// Failed cells degrade to [`JobFailure`] rows in the perf record (and
/// `outcome.matrix` is `None`); every other cell still produces
/// numbers. On a failed run the cycle totals are reported as zero —
/// they are only meaningful for a complete matrix. The sequential
/// comparison is skipped when any cell failed.
pub fn run_matrix_timed_opts(
    benches: &[Bench],
    cfg: MatrixConfig,
    jobs: usize,
    compare_sequential: bool,
    opts: &RunOptions,
) -> (MatrixOutcome, MatrixPerf) {
    let jobs = if jobs == 0 { default_jobs() } else { jobs };

    let t0 = Instant::now();
    let progs = build_programs(benches, cfg.scale);
    let build_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let outcome = run_matrix_outcome(benches, &progs, cfg, jobs, opts);
    let simulate_seconds = t1.elapsed().as_secs_f64();

    let sequential = match &outcome.matrix {
        Some(matrix) if compare_sequential => {
            let t2 = Instant::now();
            let seq = Matrix {
                runs: benches.iter().map(|&b| run_bench(b, cfg)).collect(),
            };
            let seq_seconds = t2.elapsed().as_secs_f64();
            let speedup = if simulate_seconds > 0.0 {
                seq_seconds / simulate_seconds
            } else {
                0.0
            };
            Some((seq_seconds, speedup, seq == *matrix))
        }
        _ => None,
    };

    let total_sim_cycles = outcome.matrix.as_ref().map_or(0, Matrix::total_sim_cycles);
    let sim_runs = outcome.matrix.as_ref().map_or(0, Matrix::sim_run_count);
    let perf = MatrixPerf {
        scale: cfg.scale.outer,
        max_cycles: cfg.max_cycles,
        limit_insts: cfg.limit_insts,
        jobs,
        available_parallelism: default_jobs(),
        benches: benches.iter().map(|b| b.name().to_string()).collect(),
        sim_runs,
        total_jobs: outcome.total_jobs,
        completed_jobs: outcome.completed_jobs,
        failures: outcome.failures.clone(),
        build_seconds,
        simulate_seconds,
        total_sim_cycles,
        sim_cycles_per_sec: if simulate_seconds > 0.0 {
            total_sim_cycles as f64 / simulate_seconds
        } else {
            0.0
        },
        sequential,
    };
    (outcome, perf)
}

impl MatrixPerf {
    /// Serialises to the `BENCH_matrix.json` schema.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"vpir-bench-matrix-v2\",\n");
        s.push_str(&format!("  \"scale\": {},\n", self.scale));
        s.push_str(&format!("  \"max_cycles\": {},\n", self.max_cycles));
        s.push_str(&format!("  \"limit_insts\": {},\n", self.limit_insts));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str("  \"benches\": [");
        for (i, b) in self.benches.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{b}\""));
        }
        s.push_str("],\n");
        s.push_str(&format!("  \"sim_runs\": {},\n", self.sim_runs));
        s.push_str(&format!("  \"total_jobs\": {},\n", self.total_jobs));
        s.push_str(&format!("  \"completed_jobs\": {},\n", self.completed_jobs));
        s.push_str("  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            s.push_str(if i > 0 { ",\n    {" } else { "\n    {" });
            s.push_str(&format!("\"job_index\": {}, ", f.job_index));
            s.push_str(&format!("\"bench\": \"{}\", ", json_escape(&f.bench)));
            s.push_str(&format!("\"config\": \"{}\", ", json_escape(&f.config)));
            s.push_str(&format!("\"kind\": \"{}\", ", json_escape(&f.kind)));
            s.push_str(&format!("\"error\": \"{}\", ", json_escape(&f.error)));
            match &f.dump_path {
                Some(p) => s.push_str(&format!(
                    "\"dump_path\": \"{}\"",
                    json_escape(&p.to_string_lossy())
                )),
                None => s.push_str("\"dump_path\": null"),
            }
            s.push('}');
        }
        s.push_str(if self.failures.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"phases\": {\n");
        s.push_str(&format!(
            "    \"build_programs_seconds\": {:.6},\n",
            self.build_seconds
        ));
        s.push_str(&format!(
            "    \"simulate_seconds\": {:.6}\n",
            self.simulate_seconds
        ));
        s.push_str("  },\n");
        s.push_str(&format!(
            "  \"total_sim_cycles\": {},\n",
            self.total_sim_cycles
        ));
        s.push_str(&format!(
            "  \"sim_cycles_per_sec\": {:.1}",
            self.sim_cycles_per_sec
        ));
        match self.sequential {
            Some((secs, speedup, identical)) => {
                s.push_str(",\n  \"sequential\": {\n");
                s.push_str(&format!("    \"run_seconds\": {secs:.6},\n"));
                s.push_str(&format!("    \"speedup\": {speedup:.2},\n"));
                s.push_str(&format!("    \"bit_identical\": {identical}\n"));
                s.push_str("  }\n");
            }
            None => s.push('\n'),
        }
        s.push_str("}\n");
        s
    }

    /// A one-line human summary for the CLI.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "matrix: {} sim runs, jobs={} ({} available), build {:.2}s, simulate {:.2}s, {:.2}M sim cycles/s",
            self.sim_runs,
            self.jobs,
            self.available_parallelism,
            self.build_seconds,
            self.simulate_seconds,
            self.sim_cycles_per_sec / 1e6,
        );
        if let Some((secs, speedup, identical)) = self.sequential {
            line.push_str(&format!(
                "; sequential {:.2}s, speedup {:.2}x, bit-identical: {}",
                secs, speedup, identical
            ));
        }
        if !self.failures.is_empty() {
            line.push_str(&format!(
                "; {} of {} cells FAILED",
                self.failures.len(),
                self.total_jobs
            ));
        }
        line
    }
}

// ----------------------------------------------------------------
// Cycle-rate tracking (`vpir bench --cycle-rate`).
// ----------------------------------------------------------------

/// A focused cycles/sec measurement, serialised as `BENCH_cycles.json`.
///
/// The matrix report mixes build, limit-study, and simulate phases; the
/// cycle-rate record isolates the raw cycle-level simulation rate so
/// the perf trajectory can be tracked — and gated — separately from
/// matrix wall-clock. `sim_cycles_per_sec` is stored as an integer
/// because the workspace JSON parser (`vpir-jsonlite`) is deliberately
/// u64-only; sub-cycle/sec precision is far below measurement noise.
#[derive(Debug, Clone)]
pub struct CycleRate {
    /// Workload scale (outer-loop multiplier).
    pub scale: u32,
    /// Per-run cycle cap.
    pub max_cycles: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Cycle-level simulator runs measured.
    pub sim_runs: usize,
    /// Total simulated cycles over every run.
    pub total_sim_cycles: u64,
    /// Seconds spent in the simulate phase.
    pub simulate_seconds: f64,
    /// Simulated cycles per wall-clock second, rounded to an integer.
    pub sim_cycles_per_sec: u64,
}

/// The top-level keys `BENCH_cycles.json` must carry.
pub const CYCLES_REQUIRED_KEYS: &[&str] = &[
    "schema",
    "scale",
    "max_cycles",
    "jobs",
    "sim_runs",
    "total_sim_cycles",
    "sim_cycles_per_sec",
];

/// Runs the matrix and distils the cycle-rate record from it.
///
/// Fails (instead of reporting a zero rate) when any cell fails — a
/// partial matrix measures a different workload mix, so gating on it
/// would compare incomparable numbers.
pub fn measure_cycle_rate(
    benches: &[Bench],
    cfg: MatrixConfig,
    jobs: usize,
) -> Result<CycleRate, String> {
    let (outcome, perf) = run_matrix_timed_opts(benches, cfg, jobs, false, &RunOptions::default());
    if let Some(first) = outcome.failures.first() {
        return Err(format!(
            "cycle-rate run failed: {} of {} cells failed (first: {}/{}: {})",
            outcome.failures.len(),
            outcome.total_jobs,
            first.bench,
            first.config,
            first.error
        ));
    }
    Ok(CycleRate {
        scale: perf.scale,
        max_cycles: perf.max_cycles,
        jobs: perf.jobs,
        sim_runs: perf.sim_runs,
        total_sim_cycles: perf.total_sim_cycles,
        simulate_seconds: perf.simulate_seconds,
        sim_cycles_per_sec: perf.sim_cycles_per_sec.round() as u64,
    })
}

impl CycleRate {
    /// Serialises to the `BENCH_cycles.json` schema (v1).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"vpir-bench-cycles-v1\",\n");
        s.push_str(&format!("  \"scale\": {},\n", self.scale));
        s.push_str(&format!("  \"max_cycles\": {},\n", self.max_cycles));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"sim_runs\": {},\n", self.sim_runs));
        s.push_str(&format!(
            "  \"total_sim_cycles\": {},\n",
            self.total_sim_cycles
        ));
        s.push_str(&format!(
            "  \"simulate_milliseconds\": {},\n",
            (self.simulate_seconds * 1e3).round() as u64
        ));
        s.push_str(&format!(
            "  \"sim_cycles_per_sec\": {}\n",
            self.sim_cycles_per_sec
        ));
        s.push_str("}\n");
        s
    }

    /// A one-line human summary for the CLI.
    pub fn summary(&self) -> String {
        format!(
            "cycle-rate: {} sim runs, jobs={}, {} cycles in {:.2}s = {:.2}M sim cycles/s",
            self.sim_runs,
            self.jobs,
            self.total_sim_cycles,
            self.simulate_seconds,
            self.sim_cycles_per_sec as f64 / 1e6,
        )
    }

    /// Gates this measurement against a committed baseline document.
    ///
    /// Returns a human-readable comparison on success and an error when
    /// the current rate has regressed more than `max_regression_pct`
    /// percent below the baseline's `sim_cycles_per_sec` (improvements
    /// and small regressions pass). The threshold assumes the baseline
    /// was recorded on comparable hardware; CI pins the canonical
    /// container for exactly that reason.
    pub fn gate(&self, baseline_json: &str, max_regression_pct: u64) -> Result<String, String> {
        let doc = vpir_jsonlite::parse_json(baseline_json)
            .map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        match doc.get("schema").and_then(|v| v.as_str()) {
            Some("vpir-bench-cycles-v1") => {}
            other => {
                return Err(format!(
                    "baseline schema is {other:?}, expected \"vpir-bench-cycles-v1\""
                ))
            }
        }
        let baseline = doc
            .get("sim_cycles_per_sec")
            .and_then(|v| v.as_u64())
            .ok_or("baseline has no integer sim_cycles_per_sec")?;
        if baseline == 0 {
            return Err("baseline sim_cycles_per_sec is zero".into());
        }
        let floor = baseline.saturating_mul(100 - max_regression_pct.min(100)) / 100;
        let ratio = self.sim_cycles_per_sec as f64 / baseline as f64;
        if self.sim_cycles_per_sec < floor {
            return Err(format!(
                "cycle-rate regression: {} cycles/s is {:.1}% of the {} baseline \
                 (gate allows {max_regression_pct}% regression, floor {floor})",
                self.sim_cycles_per_sec,
                ratio * 100.0,
                baseline
            ));
        }
        Ok(format!(
            "cycle-rate gate: {} cycles/s vs baseline {} ({:+.1}%), within {}%",
            self.sim_cycles_per_sec,
            baseline,
            (ratio - 1.0) * 100.0,
            max_regression_pct
        ))
    }
}

/// The top-level keys `BENCH_matrix.json` must carry.
pub const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "scale",
    "max_cycles",
    "limit_insts",
    "jobs",
    "available_parallelism",
    "benches",
    "sim_runs",
    "total_jobs",
    "completed_jobs",
    "failures",
    "phases",
    "total_sim_cycles",
    "sim_cycles_per_sec",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_json_is_well_formed() {
        let perf = MatrixPerf {
            scale: 2,
            max_cycles: 1000,
            limit_insts: 100,
            jobs: 4,
            available_parallelism: 8,
            benches: vec!["go".to_string(), "gcc".to_string()],
            sim_runs: 40,
            total_jobs: 40,
            completed_jobs: 39,
            failures: vec![JobFailure {
                job_index: 12,
                bench: "go".to_string(),
                config: "ir_late".to_string(),
                kind: "livelock".to_string(),
                error: "no commit for 5000 cycles".to_string(),
                dump_path: Some(std::path::PathBuf::from("dump/job-012-failure.json")),
            }],
            build_seconds: 0.125,
            simulate_seconds: 1.5,
            total_sim_cycles: 123456,
            sim_cycles_per_sec: 82304.0,
            sequential: Some((3.0, 2.0, true)),
        };
        validate_json(&perf.to_json(), REQUIRED_KEYS).expect("valid");
        let no_seq = MatrixPerf {
            sequential: None,
            ..perf
        };
        validate_json(&no_seq.to_json(), REQUIRED_KEYS).expect("valid");
        // Grammar-level validator tests live with the checker in
        // crates/jsonlite; this test covers the emitter/schema pairing.
    }

    fn rate(cps: u64) -> CycleRate {
        CycleRate {
            scale: 1,
            max_cycles: 2_000_000,
            jobs: 1,
            sim_runs: 133,
            total_sim_cycles: 10_000_000,
            simulate_seconds: 8.0,
            sim_cycles_per_sec: cps,
        }
    }

    #[test]
    fn cycles_json_is_well_formed_and_round_trips() {
        let json = rate(1_250_000).to_json();
        validate_json(&json, CYCLES_REQUIRED_KEYS).expect("valid");
        let doc = vpir_jsonlite::parse_json(&json).expect("parseable");
        assert_eq!(
            doc.get("sim_cycles_per_sec").and_then(|v| v.as_u64()),
            Some(1_250_000)
        );
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("vpir-bench-cycles-v1")
        );
    }

    #[test]
    fn gate_passes_within_threshold_and_on_improvement() {
        let baseline = rate(1_000_000).to_json();
        // 5% down: inside a 10% gate.
        assert!(rate(950_000).gate(&baseline, 10).is_ok());
        // Exactly at the floor passes.
        assert!(rate(900_000).gate(&baseline, 10).is_ok());
        // Improvements always pass.
        let up = rate(2_500_000).gate(&baseline, 10).expect("passes");
        assert!(up.contains("+150.0%"), "{up}");
    }

    #[test]
    fn gate_fails_past_threshold() {
        let baseline = rate(1_000_000).to_json();
        let err = rate(899_999).gate(&baseline, 10).expect_err("regressed");
        assert!(err.contains("regression"), "{err}");
        assert!(err.contains("floor 900000"), "{err}");
    }

    #[test]
    fn gate_rejects_malformed_baselines() {
        assert!(rate(1).gate("not json", 10).is_err());
        // Wrong schema.
        let wrong = "{\"schema\": \"vpir-bench-matrix-v2\", \"sim_cycles_per_sec\": 5}";
        assert!(rate(1).gate(wrong, 10).unwrap_err().contains("schema"));
        // Missing or zero rate.
        let none = "{\"schema\": \"vpir-bench-cycles-v1\"}";
        assert!(rate(1).gate(none, 10).is_err());
        let zero = "{\"schema\": \"vpir-bench-cycles-v1\", \"sim_cycles_per_sec\": 0}";
        assert!(rate(1).gate(zero, 10).is_err());
    }
}
