//! Command-line front end for the paper's experiments.
//!
//! ```text
//! experiments <id> [--quick] [--scale N] [--bench NAME]
//!
//! ids: table2 table3 table4 table5 table6
//!      fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!      all csv rtb ablations hybrid frontend
//! ```

use std::env;
use std::process::ExitCode;

use vpir_bench::matrix::{run_matrix_jobs, run_one, Matrix, MatrixConfig};
use vpir_bench::report;
use vpir_core::{CoreConfig, FrontEnd, IrConfig, VpConfig, VpKind};
use vpir_predict::VptConfig;
use vpir_reuse::{RbConfig, ReuseScheme};
use vpir_stats::Table;
use vpir_workloads::{Bench, Scale};

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <id> [--quick] [--scale N] [--bench NAME] [--jobs N]\n\
         ids: table2..table6, fig3..fig10, all, csv, rtb, ablations, hybrid, frontend"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(id) = args.first().cloned() else {
        return usage();
    };
    let mut cfg = MatrixConfig::experiment();
    let mut only_bench: Option<Bench> = None;
    let mut jobs = 0usize; // 0 = available parallelism
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = MatrixConfig::quick(),
            "--jobs" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    return usage();
                };
                jobs = n;
            }
            "--scale" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u32>().ok()) else {
                    return usage();
                };
                cfg.scale = Scale::of(n);
            }
            "--bench" => {
                i += 1;
                let Some(b) = args.get(i).map(|s| Bench::parse(s)) else {
                    return usage();
                };
                match b {
                    Some(b) => only_bench = Some(b),
                    None => {
                        eprintln!("unknown benchmark; choose from: {:?}",
                            Bench::ALL.map(|b| b.name()));
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => return usage(),
        }
        i += 1;
    }

    if id == "ablations" {
        print!("{}", ablations(cfg, only_bench));
        return ExitCode::SUCCESS;
    }
    if id == "hybrid" {
        print!("{}", hybrid(cfg, only_bench));
        return ExitCode::SUCCESS;
    }
    if id == "frontend" {
        print!("{}", frontend(cfg, only_bench));
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "running matrix (scale {}, cycle cap {}) ...",
        cfg.scale.outer, cfg.max_cycles
    );
    let matrix = build_matrix(cfg, only_bench, jobs);
    let out = match id.as_str() {
        "table2" => report::table2(&matrix),
        "table3" => report::table3(&matrix),
        "table4" => report::table4(&matrix),
        "table5" => report::table5(&matrix),
        "table6" => report::table6(&matrix),
        "fig3" => report::fig3(&matrix),
        "fig4" => report::fig4(&matrix),
        "fig5" => report::fig5(&matrix),
        "fig6" => report::fig6(&matrix),
        "fig7" => report::fig7(&matrix),
        "fig8" => report::fig8(&matrix),
        "fig9" => report::fig9(&matrix),
        "fig10" => report::fig10(&matrix),
        "all" => report::all(&matrix),
        "csv" => report::csv(&matrix),
        "rtb" => report::rtb_table(&matrix),
        _ => return usage(),
    };
    println!("{out}");
    ExitCode::SUCCESS
}

fn build_matrix(cfg: MatrixConfig, only: Option<Bench>, jobs: usize) -> Matrix {
    match only {
        None => run_matrix_jobs(cfg, jobs),
        Some(b) => vpir_bench::matrix::run_benches_jobs(&[b], cfg, jobs),
    }
}

/// Beyond the paper: the VP+IR hybrid its conclusion proposes, for each
/// predictor flavour (reuse first, predict on a reuse miss).
fn hybrid(cfg: MatrixConfig, only: Option<Bench>) -> String {
    let benches: Vec<Bench> = match only {
        Some(b) => vec![b],
        None => Bench::ALL.to_vec(),
    };
    let mut t = Table::new(&[
        "Bench", "VP", "IR", "hyb(magic)", "hyb(lvp)", "hyb(stride)", "hyb reuse%", "hyb pred%",
    ]);
    for &bench in &benches {
        let base = run_one(bench, cfg.scale, CoreConfig::table1(), cfg.max_cycles);
        let b = base.ipc().max(1e-9);
        let vp = run_one(bench, cfg.scale, CoreConfig::with_vp(VpConfig::magic()), cfg.max_cycles);
        let ir = run_one(bench, cfg.scale, CoreConfig::with_ir(IrConfig::table1()), cfg.max_cycles);
        let mut row = vec![
            bench.name().to_string(),
            format!("{:.3}", vp.ipc() / b),
            format!("{:.3}", ir.ipc() / b),
        ];
        let mut magic_stats = None;
        for kind in [VpKind::Magic, VpKind::Lvp, VpKind::Stride] {
            let hv = VpConfig { kind, ..VpConfig::magic() };
            let h = run_one(
                bench,
                cfg.scale,
                CoreConfig::with_hybrid(hv, IrConfig::table1()),
                cfg.max_cycles,
            );
            row.push(format!("{:.3}", h.ipc() / b));
            if kind == VpKind::Magic {
                magic_stats = Some(h);
            }
        }
        let h = magic_stats.expect("magic hybrid ran");
        row.push(format!("{:.1}", h.reuse_result_rate()));
        row.push(format!("{:.1}", h.vp_result_rate()));
        t.row_owned(row);
    }
    format!(
        "Beyond the paper: VP+IR hybrid speedups (reuse test first,\n\
         value prediction on a reuse miss)\n\n{}\n",
        t.render()
    )
}

/// Sensitivity to front-end quality: how the mechanisms' benefits move
/// when gshare is replaced by a weaker predictor.
fn frontend(cfg: MatrixConfig, only: Option<Bench>) -> String {
    let benches: Vec<Bench> = match only {
        Some(b) => vec![b],
        None => Bench::ALL.to_vec(),
    };
    let mut t = Table::new(&[
        "Bench", "FE", "base IPC", "br pred%", "VP speedup", "IR speedup",
    ]);
    for &bench in &benches {
        for fe in [FrontEnd::Gshare, FrontEnd::Bimodal, FrontEnd::StaticTaken] {
            let mut base_cfg = CoreConfig::table1();
            base_cfg.front_end = fe;
            let base = run_one(bench, cfg.scale, base_cfg.clone(), cfg.max_cycles);
            let b = base.ipc().max(1e-9);
            let mut vp_cfg = CoreConfig::with_vp(VpConfig::magic());
            vp_cfg.front_end = fe;
            let vp = run_one(bench, cfg.scale, vp_cfg, cfg.max_cycles);
            let mut ir_cfg = CoreConfig::with_ir(IrConfig::table1());
            ir_cfg.front_end = fe;
            let ir = run_one(bench, cfg.scale, ir_cfg, cfg.max_cycles);
            t.row_owned(vec![
                bench.name().to_string(),
                format!("{fe:?}"),
                format!("{:.3}", base.ipc()),
                format!("{:.1}", base.branch_pred_rate()),
                format!("{:.3}", vp.ipc() / b),
                format!("{:.3}", ir.ipc() / b),
            ]);
        }
    }
    format!(
        "Sensitivity: front-end predictor quality vs mechanism benefit\n\n{}\n",
        t.render()
    )
}

/// Design-choice sweeps beyond the paper: reuse-test schemes, RB/VPT
/// sizes, and confidence thresholds.
fn ablations(cfg: MatrixConfig, only: Option<Bench>) -> String {
    let benches: Vec<Bench> = match only {
        Some(b) => vec![b],
        None => Bench::ALL.to_vec(),
    };
    let mut out = String::new();

    // 1. Reuse-test scheme sweep.
    let mut t = Table::new(&["Bench", "Sn res%", "SnD res%", "SnDValues res%"]);
    for &bench in &benches {
        let mut row = vec![bench.name().to_string()];
        for scheme in [ReuseScheme::Sn, ReuseScheme::SnD, ReuseScheme::SnDValues] {
            let ir = IrConfig {
                rb: RbConfig {
                    scheme,
                    ..RbConfig::table1()
                },
                ..IrConfig::table1()
            };
            let s = run_one(bench, cfg.scale, CoreConfig::with_ir(ir), cfg.max_cycles);
            row.push(format!("{:.1}", s.reuse_result_rate()));
        }
        t.row_owned(row);
    }
    out.push_str(&format!("Ablation: reuse-test scheme vs reuse rate\n\n{}\n", t.render()));

    // 2. RB size sweep (entries at fixed 4-way associativity).
    let mut t = Table::new(&["Bench", "256", "1K", "4K", "16K"]);
    for &bench in &benches {
        let mut row = vec![bench.name().to_string()];
        for entries in [256usize, 1024, 4096, 16384] {
            let ir = IrConfig {
                rb: RbConfig {
                    entries,
                    ..RbConfig::table1()
                },
                ..IrConfig::table1()
            };
            let s = run_one(bench, cfg.scale, CoreConfig::with_ir(ir), cfg.max_cycles);
            row.push(format!("{:.1}", s.reuse_result_rate()));
        }
        t.row_owned(row);
    }
    out.push_str(&format!("Ablation: RB entries vs reuse rate (%)\n\n{}\n", t.render()));

    // 3. VPT confidence threshold sweep (Magic, ME-SB, 0-cycle).
    let mut t = Table::new(&["Bench", "thr1 pred%", "thr1 mis%", "thr2 pred%", "thr2 mis%", "thr3 pred%", "thr3 mis%"]);
    for &bench in &benches {
        let mut row = vec![bench.name().to_string()];
        for thr in [1u8, 2, 3] {
            let vp = VpConfig {
                vpt: VptConfig {
                    confidence_threshold: thr,
                    ..VptConfig::table1()
                },
                ..VpConfig::magic()
            };
            let s = run_one(bench, cfg.scale, CoreConfig::with_vp(vp), cfg.max_cycles);
            row.push(format!("{:.1}", s.vp_result_rate()));
            row.push(format!("{:.1}", s.vp_result_mispred_rate()));
        }
        t.row_owned(row);
    }
    out.push_str(&format!(
        "Ablation: VPT confidence threshold vs prediction and misprediction rates\n\n{}\n",
        t.render()
    ));

    // 4. ROB-size sensitivity: how much of each mechanism's benefit
    // depends on the window (the paper fixes it at 32).
    let mut t = Table::new(&["Bench", "rob16 VP", "rob16 IR", "rob32 VP", "rob32 IR", "rob64 VP", "rob64 IR"]);
    for &bench in &benches {
        let mut row = vec![bench.name().to_string()];
        for rob in [16usize, 32, 64] {
            let mut base_cfg = CoreConfig::table1();
            base_cfg.rob_size = rob;
            let base = run_one(bench, cfg.scale, base_cfg.clone(), cfg.max_cycles);
            let mut vp_cfg = CoreConfig::with_vp(VpConfig::magic());
            vp_cfg.rob_size = rob;
            let vp = run_one(bench, cfg.scale, vp_cfg, cfg.max_cycles);
            let mut ir_cfg = CoreConfig::with_ir(IrConfig::table1());
            ir_cfg.rob_size = rob;
            let ir = run_one(bench, cfg.scale, ir_cfg, cfg.max_cycles);
            let b = base.ipc().max(1e-9);
            row.push(format!("{:.3}", vp.ipc() / b));
            row.push(format!("{:.3}", ir.ipc() / b));
        }
        t.row_owned(row);
    }
    out.push_str(&format!(
        "Ablation: speedup vs reorder-buffer size (VP_Magic ME-SB and IR)\n\n{}\n",
        t.render()
    ));

    out
}
