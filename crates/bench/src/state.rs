//! Incremental per-job persistence for resumable matrix runs.
//!
//! Each (benchmark × configuration) cell of the matrix is one job; as a
//! worker finishes a job it writes `job-NNN.json` into the dump
//! directory, and a failed job leaves `job-NNN-failure.json` instead.
//! `--resume` reloads the completed files and re-executes only the
//! missing or failed cells. Because every simulator counter is an exact
//! `u64`, the round trip through JSON is lossless and a resumed matrix
//! is bit-identical to an uninterrupted run.
//!
//! Everything here is std-only: the emitter and the exact-`u64`
//! recursive-descent parser live in the shared `vpir-jsonlite` crate
//! (they started life in this module) and are re-exported below so
//! existing `vpir_bench::state::{parse_json, ...}` imports keep working.

use std::path::{Path, PathBuf};

use vpir_core::SimStats;
use vpir_jsonlite::JsonObj as Obj;
use vpir_mem::CacheStats;
use vpir_predict::VptStats;
use vpir_redundancy::LimitStudy;
use vpir_reuse::ReuseStats;
use vpir_stats::RtbStats;

pub use vpir_jsonlite::{json_escape, parse_json, JsonValue};

/// Schema tag stamped into every per-job result file.
pub const JOB_SCHEMA: &str = "vpir-bench-job-v2";

/// Schema tag stamped into every per-job failure dump.
pub const FAILURE_SCHEMA: &str = "vpir-bench-failure-v2";

// ---------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------

fn cache_to_json(c: &CacheStats) -> String {
    Obj::new()
        .u("hits", c.hits)
        .u("misses", c.misses)
        .u("mshr_merges", c.mshr_merges)
        .finish()
}

fn vpt_to_json(v: &VptStats) -> String {
    Obj::new()
        .u("lookups", v.lookups)
        .u("predictions", v.predictions)
        .u("trainings", v.trainings)
        .u("allocations", v.allocations)
        .finish()
}

fn rb_to_json(r: &ReuseStats) -> String {
    Obj::new()
        .u("inserts", r.inserts)
        .u("updates", r.updates)
        .u("evictions", r.evictions)
        .u("reg_invalidations", r.reg_invalidations)
        .u("revalidations", r.revalidations)
        .u("mem_invalidations", r.mem_invalidations)
        .u("full_reuses", r.full_reuses)
        .u("addr_reuses", r.addr_reuses)
        .u("misses", r.misses)
        .finish()
}

fn u64_array_json(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn rtb_to_json(r: &RtbStats) -> String {
    Obj::new()
        .u("captured", r.captured)
        .u("pending_squashed", r.pending_squashed)
        .u("installed", r.installed)
        .u("dropped", r.dropped)
        .u("replays", r.replays)
        .u("replayed_insts", r.replayed_insts)
        .u("aborted", r.aborted)
        .u("committed_reused", r.committed_reused)
        .raw("per_class", &u64_array_json(&r.per_class))
        .raw("per_depth", &u64_array_json(&r.per_depth))
        .finish()
}

/// Serializes a full [`SimStats`] as a JSON object.
///
/// The `rtb` block is emitted only when trace reuse actually ran (the
/// stats differ from the all-zero default): every pre-RTB job file and
/// golden digest stays byte-identical for the base/VP/IR configurations.
pub fn stats_to_json(s: &SimStats) -> String {
    let histogram = format!(
        "[{}, {}, {}, {}]",
        s.exec_histogram[0], s.exec_histogram[1], s.exec_histogram[2], s.exec_histogram[3]
    );
    let o = Obj::new()
        .u("cycles", s.cycles)
        .u("committed", s.committed)
        .u("dispatched", s.dispatched)
        .u("executions", s.executions)
        .u("branches", s.branches)
        .u("branch_mispredicts", s.branch_mispredicts)
        .u("returns", s.returns)
        .u("return_mispredicts", s.return_mispredicts)
        .u("squashes", s.squashes)
        .u("spurious_squashes", s.spurious_squashes)
        .u("branch_resolution_latency_sum", s.branch_resolution_latency_sum)
        .u("branch_resolution_count", s.branch_resolution_count)
        .u("squashed_executed", s.squashed_executed)
        .u("squash_recovered", s.squash_recovered)
        .u("result_producers", s.result_producers)
        .u("result_predicted", s.result_predicted)
        .u("result_pred_correct", s.result_pred_correct)
        .u("mem_ops", s.mem_ops)
        .u("addr_predicted", s.addr_predicted)
        .u("addr_pred_correct", s.addr_pred_correct)
        .raw("exec_histogram", &histogram)
        .u("reused_full", s.reused_full)
        .u("reused_addr", s.reused_addr)
        .u("fu_requests", s.fu_requests)
        .u("fu_denials", s.fu_denials)
        .u("port_requests", s.port_requests)
        .u("port_denials", s.port_denials)
        .raw("icache", &cache_to_json(&s.icache))
        .raw("dcache", &cache_to_json(&s.dcache))
        .raw("vpt_result", &vpt_to_json(&s.vpt_result))
        .raw("vpt_addr", &vpt_to_json(&s.vpt_addr))
        .raw("rb", &rb_to_json(&s.rb));
    if s.rtb != RtbStats::default() {
        return o.raw("rtb", &rtb_to_json(&s.rtb)).finish();
    }
    o.finish()
}

/// Serializes a [`LimitStudy`] as a JSON object.
pub fn limit_to_json(l: &LimitStudy) -> String {
    Obj::new()
        .u("total", l.total)
        .u("unique", l.unique)
        .u("repeated", l.repeated)
        .u("derivable", l.derivable)
        .u("unaccounted", l.unaccounted)
        .u("rep_producers_reused", l.rep_producers_reused)
        .u("rep_ready_far", l.rep_ready_far)
        .u("rep_not_ready", l.rep_not_ready)
        .u("rep_different_inputs", l.rep_different_inputs)
        .u("reusable", l.reusable)
        .finish()
}

// ---------------------------------------------------------------------
// Field extraction
// ---------------------------------------------------------------------

fn u(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn s(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn cache_from_json(v: &JsonValue) -> Result<CacheStats, String> {
    Ok(CacheStats {
        hits: u(v, "hits")?,
        misses: u(v, "misses")?,
        mshr_merges: u(v, "mshr_merges")?,
    })
}

fn vpt_from_json(v: &JsonValue) -> Result<VptStats, String> {
    Ok(VptStats {
        lookups: u(v, "lookups")?,
        predictions: u(v, "predictions")?,
        trainings: u(v, "trainings")?,
        allocations: u(v, "allocations")?,
    })
}

fn rb_from_json(v: &JsonValue) -> Result<ReuseStats, String> {
    Ok(ReuseStats {
        inserts: u(v, "inserts")?,
        updates: u(v, "updates")?,
        evictions: u(v, "evictions")?,
        reg_invalidations: u(v, "reg_invalidations")?,
        revalidations: u(v, "revalidations")?,
        mem_invalidations: u(v, "mem_invalidations")?,
        full_reuses: u(v, "full_reuses")?,
        addr_reuses: u(v, "addr_reuses")?,
        misses: u(v, "misses")?,
    })
}

fn u_arr<const N: usize>(v: &JsonValue, key: &str) -> Result<[u64; N], String> {
    let arr = v
        .get(key)
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("missing array `{key}`"))?;
    if arr.len() != N {
        return Err(format!("{key} has {} entries, want {N}", arr.len()));
    }
    let mut out = [0u64; N];
    for (slot, item) in out.iter_mut().zip(arr) {
        *slot = item
            .as_u64()
            .ok_or_else(|| format!("non-integer entry in {key}"))?;
    }
    Ok(out)
}

fn rtb_from_json(v: &JsonValue) -> Result<RtbStats, String> {
    Ok(RtbStats {
        captured: u(v, "captured")?,
        pending_squashed: u(v, "pending_squashed")?,
        installed: u(v, "installed")?,
        dropped: u(v, "dropped")?,
        replays: u(v, "replays")?,
        replayed_insts: u(v, "replayed_insts")?,
        aborted: u(v, "aborted")?,
        committed_reused: u(v, "committed_reused")?,
        per_class: u_arr(v, "per_class")?,
        per_depth: u_arr(v, "per_depth")?,
    })
}

fn sub<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing object `{key}`"))
}

/// Reconstructs a [`SimStats`] from its JSON object form.
///
/// Every field is read explicitly (no defaults), so adding a counter to
/// `SimStats` without extending the round trip fails to compile here.
pub fn stats_from_json(v: &JsonValue) -> Result<SimStats, String> {
    let hist = v
        .get("exec_histogram")
        .and_then(JsonValue::as_arr)
        .ok_or("missing array `exec_histogram`")?;
    if hist.len() != 4 {
        return Err(format!("exec_histogram has {} entries, want 4", hist.len()));
    }
    let mut exec_histogram = [0u64; 4];
    for (slot, item) in exec_histogram.iter_mut().zip(hist) {
        *slot = item
            .as_u64()
            .ok_or("non-integer entry in exec_histogram")?;
    }
    Ok(SimStats {
        cycles: u(v, "cycles")?,
        committed: u(v, "committed")?,
        dispatched: u(v, "dispatched")?,
        executions: u(v, "executions")?,
        branches: u(v, "branches")?,
        branch_mispredicts: u(v, "branch_mispredicts")?,
        returns: u(v, "returns")?,
        return_mispredicts: u(v, "return_mispredicts")?,
        squashes: u(v, "squashes")?,
        spurious_squashes: u(v, "spurious_squashes")?,
        branch_resolution_latency_sum: u(v, "branch_resolution_latency_sum")?,
        branch_resolution_count: u(v, "branch_resolution_count")?,
        squashed_executed: u(v, "squashed_executed")?,
        squash_recovered: u(v, "squash_recovered")?,
        result_producers: u(v, "result_producers")?,
        result_predicted: u(v, "result_predicted")?,
        result_pred_correct: u(v, "result_pred_correct")?,
        mem_ops: u(v, "mem_ops")?,
        addr_predicted: u(v, "addr_predicted")?,
        addr_pred_correct: u(v, "addr_pred_correct")?,
        exec_histogram,
        reused_full: u(v, "reused_full")?,
        reused_addr: u(v, "reused_addr")?,
        fu_requests: u(v, "fu_requests")?,
        fu_denials: u(v, "fu_denials")?,
        port_requests: u(v, "port_requests")?,
        port_denials: u(v, "port_denials")?,
        icache: cache_from_json(sub(v, "icache")?)?,
        dcache: cache_from_json(sub(v, "dcache")?)?,
        vpt_result: vpt_from_json(sub(v, "vpt_result")?)?,
        vpt_addr: vpt_from_json(sub(v, "vpt_addr")?)?,
        rb: rb_from_json(sub(v, "rb")?)?,
        // Absent in every pre-RTB job file and in non-RTB runs.
        rtb: match v.get("rtb") {
            Some(r) => rtb_from_json(r)?,
            None => RtbStats::default(),
        },
    })
}

/// Reconstructs a [`LimitStudy`] from its JSON object form.
pub fn limit_from_json(v: &JsonValue) -> Result<LimitStudy, String> {
    Ok(LimitStudy {
        total: u(v, "total")?,
        unique: u(v, "unique")?,
        repeated: u(v, "repeated")?,
        derivable: u(v, "derivable")?,
        unaccounted: u(v, "unaccounted")?,
        rep_producers_reused: u(v, "rep_producers_reused")?,
        rep_ready_far: u(v, "rep_ready_far")?,
        rep_not_ready: u(v, "rep_not_ready")?,
        rep_different_inputs: u(v, "rep_different_inputs")?,
        reusable: u(v, "reusable")?,
    })
}

// ---------------------------------------------------------------------
// Job records
// ---------------------------------------------------------------------

/// The result a job produced: full pipeline statistics for simulator
/// configurations, or the redundancy limit study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobPayload {
    /// A simulator run's counters.
    Stats(SimStats),
    /// The functional limit-study histogram.
    Limit(LimitStudy),
}

/// One completed matrix cell, as persisted to (and reloaded from) the
/// dump directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Flat index of the job in the matrix's fixed job order.
    pub job_index: usize,
    /// Benchmark name (e.g. `"go"`).
    pub bench: String,
    /// Configuration label (e.g. `"base"`, `"magic:ME-SB:vl1"`).
    pub config: String,
    /// Workload scale the job ran at.
    pub scale: u32,
    /// Per-job cycle budget the job ran under.
    pub max_cycles: u64,
    /// Instruction cap for the limit study.
    pub limit_insts: u64,
    /// The job's result.
    pub payload: JobPayload,
}

impl JobRecord {
    /// Serializes the record as a `vpir-bench-job-v2` document.
    pub fn to_json(&self) -> String {
        let (kind, key, body) = match &self.payload {
            JobPayload::Stats(s) => ("stats", "stats", stats_to_json(s)),
            JobPayload::Limit(l) => ("limit", "limit", limit_to_json(l)),
        };
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{JOB_SCHEMA}\",\n"));
        out.push_str(&format!("  \"job_index\": {},\n", self.job_index));
        out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&self.bench)));
        out.push_str(&format!("  \"config\": \"{}\",\n", json_escape(&self.config)));
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"max_cycles\": {},\n", self.max_cycles));
        out.push_str(&format!("  \"limit_insts\": {},\n", self.limit_insts));
        out.push_str(&format!("  \"kind\": \"{kind}\",\n"));
        out.push_str(&format!("  \"{key}\": {body}\n"));
        out.push_str("}\n");
        out
    }

    /// Parses a `vpir-bench-job-v2` document.
    pub fn from_json(text: &str) -> Result<JobRecord, String> {
        let v = parse_json(text)?;
        let schema = s(&v, "schema")?;
        if schema != JOB_SCHEMA {
            return Err(format!("schema `{schema}`, want `{JOB_SCHEMA}`"));
        }
        let kind = s(&v, "kind")?;
        let payload = match kind.as_str() {
            "stats" => JobPayload::Stats(stats_from_json(sub(&v, "stats")?)?),
            "limit" => JobPayload::Limit(limit_from_json(sub(&v, "limit")?)?),
            other => return Err(format!("unknown job kind `{other}`")),
        };
        Ok(JobRecord {
            job_index: usize::try_from(u(&v, "job_index")?)
                .map_err(|_| "job_index out of range".to_string())?,
            bench: s(&v, "bench")?,
            config: s(&v, "config")?,
            scale: u32::try_from(u(&v, "scale")?)
                .map_err(|_| "scale out of range".to_string())?,
            max_cycles: u(&v, "max_cycles")?,
            limit_insts: u(&v, "limit_insts")?,
            payload,
        })
    }
}

/// Path of the result file for job `job_index` inside `dir`.
pub fn job_path(dir: &Path, job_index: usize) -> PathBuf {
    dir.join(format!("job-{job_index:03}.json"))
}

/// Path of the failure dump for job `job_index` inside `dir`.
pub fn failure_path(dir: &Path, job_index: usize) -> PathBuf {
    dir.join(format!("job-{job_index:03}-failure.json"))
}

/// Writes a job record atomically (temp file + rename), so a crash
/// mid-write never leaves a half-valid file for `--resume` to trust.
pub fn write_job(dir: &Path, rec: &JobRecord) -> std::io::Result<()> {
    let final_path = job_path(dir, rec.job_index);
    let tmp_path = dir.join(format!("job-{:03}.json.tmp", rec.job_index));
    std::fs::write(&tmp_path, rec.to_json())?;
    std::fs::rename(&tmp_path, &final_path)
}

/// Loads job `job_index` from `dir`, or `None` when the file is
/// missing or does not parse as a valid v2 job record (either way the
/// job is simply re-executed).
pub fn load_job(dir: &Path, job_index: usize) -> Option<JobRecord> {
    let text = std::fs::read_to_string(job_path(dir, job_index)).ok()?;
    let rec = JobRecord::from_json(&text).ok()?;
    (rec.job_index == job_index).then_some(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stats block with every counter distinct, so a field swapped or
    /// dropped in either direction of the round trip is caught. Built as
    /// a full struct literal: adding a `SimStats` field breaks this test
    /// at compile time until the serializer learns about it.
    fn full_stats() -> SimStats {
        SimStats {
            cycles: 1,
            committed: 2,
            dispatched: 3,
            executions: 4,
            branches: 5,
            branch_mispredicts: 6,
            returns: 7,
            return_mispredicts: 8,
            squashes: 9,
            spurious_squashes: 10,
            branch_resolution_latency_sum: 11,
            branch_resolution_count: 12,
            squashed_executed: 13,
            squash_recovered: 14,
            result_producers: 15,
            result_predicted: 16,
            result_pred_correct: 17,
            mem_ops: 18,
            addr_predicted: 19,
            addr_pred_correct: 20,
            exec_histogram: [21, 22, 23, 24],
            reused_full: 25,
            reused_addr: 26,
            fu_requests: 27,
            fu_denials: 28,
            port_requests: 29,
            port_denials: 30,
            icache: CacheStats { hits: 31, misses: 32, mshr_merges: 33 },
            dcache: CacheStats { hits: 34, misses: 35, mshr_merges: 36 },
            vpt_result: VptStats {
                lookups: 37,
                predictions: 38,
                trainings: 39,
                allocations: 40,
            },
            vpt_addr: VptStats {
                lookups: 41,
                predictions: 42,
                trainings: 43,
                allocations: 44,
            },
            rb: ReuseStats {
                inserts: 45,
                updates: 46,
                evictions: 47,
                reg_invalidations: 48,
                revalidations: 49,
                mem_invalidations: 50,
                full_reuses: 51,
                addr_reuses: 52,
                misses: 53,
            },
            rtb: RtbStats {
                captured: 54,
                pending_squashed: 55,
                installed: 56,
                dropped: 57,
                replays: 58,
                replayed_insts: 59,
                aborted: 60,
                committed_reused: 61,
                per_class: [62, 63, 64, 65, 66, 67, 68, 69, 70],
                per_depth: [71, 72, 73, 74, 75],
            },
        }
    }

    #[test]
    fn stats_round_trip_is_exact() {
        let stats = full_stats();
        let v = parse_json(&stats_to_json(&stats)).expect("parse");
        assert_eq!(stats_from_json(&v).expect("decode"), stats);
    }

    /// The `rtb` block must stay out of non-RTB documents (existing
    /// golden digests hash exactly the old byte stream) yet round-trip
    /// when present.
    #[test]
    fn rtb_block_is_conditional_and_defaulted() {
        let mut stats = full_stats();
        stats.rtb = RtbStats::default();
        let text = stats_to_json(&stats);
        assert!(!text.contains("\"rtb\""), "default RTB stats must not serialize");
        let v = parse_json(&text).expect("parse");
        assert_eq!(stats_from_json(&v).expect("decode"), stats);

        let with_rtb = full_stats();
        assert!(stats_to_json(&with_rtb).contains("\"rtb\""));
    }

    #[test]
    fn limit_round_trip_is_exact() {
        let limit = LimitStudy {
            total: 100,
            unique: 40,
            repeated: 50,
            derivable: 5,
            unaccounted: 5,
            rep_producers_reused: 10,
            rep_ready_far: 20,
            rep_not_ready: 15,
            rep_different_inputs: 5,
            reusable: 30,
        };
        let v = parse_json(&limit_to_json(&limit)).expect("parse");
        assert_eq!(limit_from_json(&v).expect("decode"), limit);
    }

    #[test]
    fn job_record_round_trips_through_its_file_form() {
        let rec = JobRecord {
            job_index: 7,
            bench: "go".to_string(),
            config: "magic:ME-SB:vl1".to_string(),
            scale: 2,
            max_cycles: 30_000,
            limit_insts: 6_000,
            payload: JobPayload::Stats(full_stats()),
        };
        let back = JobRecord::from_json(&rec.to_json()).expect("decode");
        assert_eq!(back, rec);

        let rec = JobRecord {
            payload: JobPayload::Limit(LimitStudy::default()),
            ..rec
        };
        let back = JobRecord::from_json(&rec.to_json()).expect("decode");
        assert_eq!(back, rec);
    }

    #[test]
    fn wrong_schema_and_stale_index_are_rejected() {
        let rec = JobRecord {
            job_index: 3,
            bench: "go".to_string(),
            config: "base".to_string(),
            scale: 1,
            max_cycles: 1000,
            limit_insts: 100,
            payload: JobPayload::Stats(SimStats::default()),
        };
        let bad = rec.to_json().replace(JOB_SCHEMA, "vpir-bench-job-v1");
        assert!(JobRecord::from_json(&bad).is_err());

        let dir =
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/scratch/state-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        write_job(&dir, &rec).expect("write");
        assert_eq!(load_job(&dir, 3), Some(rec));
        // A record stored under the wrong index is not trusted.
        std::fs::rename(job_path(&dir, 3), job_path(&dir, 4)).expect("rename");
        assert_eq!(load_job(&dir, 4), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
