//! Runs the full configuration × benchmark matrix.

use std::collections::HashMap;
use std::sync::Mutex;

use vpir_core::{
    BranchResolution, CoreConfig, IrConfig, Reexecution, RunLimits, SimStats, Simulator,
    Validation, VpConfig, VpKind,
};
use vpir_redundancy::{analyze, LimitConfig, LimitStudy};
use vpir_workloads::{Bench, Scale};

/// Identifies one VP configuration in the matrix.
pub type VpKey = (VpKind, Reexecution, BranchResolution, u32);

/// All sixteen VP configurations the paper sweeps.
pub fn vp_keys() -> Vec<VpKey> {
    let mut keys = Vec::new();
    for kind in [VpKind::Magic, VpKind::Lvp] {
        for re in [Reexecution::Me, Reexecution::Nme] {
            for br in [BranchResolution::Sb, BranchResolution::Nsb] {
                for vl in [0u32, 1] {
                    keys.push((kind, re, br, vl));
                }
            }
        }
    }
    keys
}

/// A short label like `ME-SB` for a VP key.
pub fn vp_label(key: VpKey) -> String {
    let (_, re, br, _) = key;
    format!(
        "{}-{}",
        match re {
            Reexecution::Me => "ME",
            Reexecution::Nme => "NME",
        },
        match br {
            BranchResolution::Sb => "SB",
            BranchResolution::Nsb => "NSB",
        }
    )
}

fn vp_config(key: VpKey) -> VpConfig {
    let (kind, re, br, vl) = key;
    VpConfig {
        kind,
        reexecution: re,
        branch_resolution: br,
        verify_latency: vl,
        ..VpConfig::magic()
    }
}

/// How large a matrix run to perform.
#[derive(Debug, Clone, Copy)]
pub struct MatrixConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Per-run cycle cap (the paper runs 200M cycles; scaled down here).
    pub max_cycles: u64,
    /// Dynamic-instruction cap for the functional limit study.
    pub limit_insts: u64,
}

impl MatrixConfig {
    /// Experiment scale: minutes of wall-clock for the full matrix.
    pub fn experiment() -> MatrixConfig {
        MatrixConfig {
            scale: Scale::experiment(),
            max_cycles: 20_000_000,
            limit_insts: 3_000_000,
        }
    }

    /// Quick scale for tests and `--quick` runs.
    pub fn quick() -> MatrixConfig {
        MatrixConfig {
            scale: Scale::test(),
            max_cycles: 2_000_000,
            limit_insts: 200_000,
        }
    }
}

/// Every simulator run for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchRuns {
    /// Which benchmark.
    pub bench: Bench,
    /// The base Table 1 machine.
    pub base: SimStats,
    /// All sixteen VP configurations.
    pub vp: HashMap<VpKey, SimStats>,
    /// IR with early validation (the real mechanism).
    pub ir_early: SimStats,
    /// IR with validation deferred to execute (Figure 3).
    pub ir_late: SimStats,
    /// The Section 4.3 functional limit study.
    pub limit: LimitStudy,
}

impl BenchRuns {
    /// Speedup of `stats` over this benchmark's base run (IPC ratio).
    pub fn speedup(&self, stats: &SimStats) -> f64 {
        if self.base.ipc() == 0.0 {
            0.0
        } else {
            stats.ipc() / self.base.ipc()
        }
    }
}

/// The full matrix: one [`BenchRuns`] per benchmark.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Per-benchmark results, in Table 2 order.
    pub runs: Vec<BenchRuns>,
}

/// Runs one simulator configuration over one benchmark.
pub fn run_one(bench: Bench, scale: Scale, config: CoreConfig, max_cycles: u64) -> SimStats {
    let prog = bench.program(scale);
    let mut sim = Simulator::new(&prog, config);
    sim.run(RunLimits::cycles(max_cycles)).clone()
}

/// Runs everything needed for one benchmark.
pub fn run_bench(bench: Bench, cfg: MatrixConfig) -> BenchRuns {
    let prog = bench.program(cfg.scale);
    let limits = RunLimits::cycles(cfg.max_cycles);
    let run = |core: CoreConfig| -> SimStats {
        let mut sim = Simulator::new(&prog, core);
        sim.run(limits).clone()
    };

    let base = run(CoreConfig::table1());
    let mut vp = HashMap::new();
    for key in vp_keys() {
        vp.insert(key, run(CoreConfig::with_vp(vp_config(key))));
    }
    let ir_early = run(CoreConfig::with_ir(IrConfig::table1()));
    let ir_late = run(CoreConfig::with_ir(IrConfig {
        validation: Validation::Late,
        ..IrConfig::table1()
    }));
    let limit = analyze(&prog, cfg.limit_insts, LimitConfig::default());

    BenchRuns {
        bench,
        base,
        vp,
        ir_early,
        ir_late,
        limit,
    }
}

/// Runs the full matrix, one worker thread per benchmark.
pub fn run_matrix(cfg: MatrixConfig) -> Matrix {
    let results: Mutex<Vec<BenchRuns>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for bench in Bench::ALL {
            let results = &results;
            s.spawn(move || {
                let runs = run_bench(bench, cfg);
                results.lock().expect("no poisoned worker").push(runs);
            });
        }
    });
    let mut runs = results.into_inner().expect("workers done");
    runs.sort_by_key(|r| Bench::ALL.iter().position(|b| *b == r.bench));
    Matrix { runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vp_key_space_is_complete() {
        let keys = vp_keys();
        assert_eq!(keys.len(), 16);
        let labels: std::collections::HashSet<String> = keys
            .iter()
            .map(|&k| format!("{:?}-{}-{}", k.0, vp_label(k), k.3))
            .collect();
        assert_eq!(labels.len(), 16, "labels must be distinct");
    }

    #[test]
    fn single_bench_runs_cover_all_configs() {
        let cfg = MatrixConfig {
            scale: Scale::of(1),
            max_cycles: 200_000,
            limit_insts: 50_000,
        };
        let runs = run_bench(Bench::Ijpeg, cfg);
        assert!(runs.base.committed > 0);
        assert_eq!(runs.vp.len(), 16);
        assert!(runs.ir_early.committed > 0);
        assert!(runs.limit.total > 0);
        assert!(runs.speedup(&runs.ir_early) > 0.1);
    }
}
