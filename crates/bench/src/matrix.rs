//! Runs the full configuration × benchmark matrix.
//!
//! Every (benchmark × configuration) run — base, the sixteen VP
//! configurations, IR with early and late validation, and the
//! functional limit study — is an independent, deterministic simulator
//! run, so the matrix is executed by a work-queue scheduler that fans
//! the flat job list out over worker threads and reassembles the
//! results in a fixed order. The assembled [`Matrix`] is bit-identical
//! for every worker count (including one); `tests/parallel.rs` locks
//! that equivalence in.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use vpir_core::{
    BranchResolution, CoreConfig, IrConfig, Reexecution, RunLimits, SimStats, Simulator,
    Validation, VpConfig, VpKind,
};
use vpir_isa::Program;
use vpir_redundancy::{analyze, LimitConfig, LimitStudy};
use vpir_workloads::{Bench, Scale};

/// Identifies one VP configuration in the matrix.
pub type VpKey = (VpKind, Reexecution, BranchResolution, u32);

/// All sixteen VP configurations the paper sweeps.
pub fn vp_keys() -> Vec<VpKey> {
    let mut keys = Vec::new();
    for kind in [VpKind::Magic, VpKind::Lvp] {
        for re in [Reexecution::Me, Reexecution::Nme] {
            for br in [BranchResolution::Sb, BranchResolution::Nsb] {
                for vl in [0u32, 1] {
                    keys.push((kind, re, br, vl));
                }
            }
        }
    }
    keys
}

/// A full label like `magic:ME-SB:vl1` for a VP key.
///
/// Every component is included — predictor kind, re-execution policy,
/// branch resolution, and verification latency — so all sixteen keys
/// render distinctly (the seed's `ME-SB`-style label collapsed four
/// configurations onto each label and collided in reports).
pub fn vp_label(key: VpKey) -> String {
    let (kind, re, br, vl) = key;
    format!(
        "{}:{}-{}:vl{}",
        match kind {
            VpKind::Magic => "magic",
            VpKind::Lvp => "lvp",
            VpKind::Stride => "stride",
        },
        match re {
            Reexecution::Me => "ME",
            Reexecution::Nme => "NME",
        },
        match br {
            BranchResolution::Sb => "SB",
            BranchResolution::Nsb => "NSB",
        },
        vl
    )
}

fn vp_config(key: VpKey) -> VpConfig {
    let (kind, re, br, vl) = key;
    VpConfig {
        kind,
        reexecution: re,
        branch_resolution: br,
        verify_latency: vl,
        ..VpConfig::magic()
    }
}

/// How large a matrix run to perform.
#[derive(Debug, Clone, Copy)]
pub struct MatrixConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Per-run cycle cap (the paper runs 200M cycles; scaled down here).
    pub max_cycles: u64,
    /// Dynamic-instruction cap for the functional limit study.
    pub limit_insts: u64,
}

impl MatrixConfig {
    /// Experiment scale: minutes of wall-clock for the full matrix.
    pub fn experiment() -> MatrixConfig {
        MatrixConfig {
            scale: Scale::experiment(),
            max_cycles: 20_000_000,
            limit_insts: 3_000_000,
        }
    }

    /// Quick scale for tests and `--quick` runs.
    pub fn quick() -> MatrixConfig {
        MatrixConfig {
            scale: Scale::test(),
            max_cycles: 2_000_000,
            limit_insts: 200_000,
        }
    }
}

/// Every simulator run for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRuns {
    /// Which benchmark.
    pub bench: Bench,
    /// The base Table 1 machine.
    pub base: SimStats,
    /// All sixteen VP configurations, in [`vp_keys`] order (BTreeMap so
    /// report iteration is deterministic — R1 discipline).
    pub vp: BTreeMap<VpKey, SimStats>,
    /// IR with early validation (the real mechanism).
    pub ir_early: SimStats,
    /// IR with validation deferred to execute (Figure 3).
    pub ir_late: SimStats,
    /// The Section 4.3 functional limit study.
    pub limit: LimitStudy,
}

impl BenchRuns {
    /// Speedup of `stats` over this benchmark's base run (IPC ratio).
    pub fn speedup(&self, stats: &SimStats) -> f64 {
        if self.base.ipc() == 0.0 {
            0.0
        } else {
            stats.ipc() / self.base.ipc()
        }
    }
}

/// The full matrix: one [`BenchRuns`] per benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Per-benchmark results, in Table 2 order.
    pub runs: Vec<BenchRuns>,
}

impl Matrix {
    /// Total simulated cycles over every run in the matrix (the
    /// numerator of the perf harness's cycles/sec figure).
    pub fn total_sim_cycles(&self) -> u64 {
        self.runs
            .iter()
            .map(|r| {
                r.base.cycles
                    + r.vp.values().map(|s| s.cycles).sum::<u64>()
                    + r.ir_early.cycles
                    + r.ir_late.cycles
            })
            .sum()
    }

    /// Number of cycle-level simulator runs (excludes the functional
    /// limit studies).
    pub fn sim_run_count(&self) -> usize {
        self.runs.iter().map(|r| 3 + r.vp.len()).sum()
    }
}

/// Runs one simulator configuration over one benchmark.
pub fn run_one(bench: Bench, scale: Scale, config: CoreConfig, max_cycles: u64) -> SimStats {
    let prog = bench.program(scale);
    let mut sim = Simulator::new(&prog, config);
    sim.run(RunLimits::cycles(max_cycles)).clone()
}

/// Runs everything needed for one benchmark, sequentially on the
/// calling thread. This is the reference implementation the work-queue
/// scheduler must bit-match.
pub fn run_bench(bench: Bench, cfg: MatrixConfig) -> BenchRuns {
    let prog = bench.program(cfg.scale);
    assemble_bench(bench, &prog, cfg, |kind| run_job(&prog, cfg, kind))
}

// ----------------------------------------------------------------
// The work-queue scheduler.
// ----------------------------------------------------------------

/// One unit of work: a single configuration run over one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    Base,
    Vp(VpKey),
    IrEarly,
    IrLate,
    Limit,
}

/// The result of one job.
#[derive(Debug, Clone)]
enum JobOut {
    Stats(SimStats),
    Limit(LimitStudy),
}

impl JobOut {
    fn into_stats(self) -> SimStats {
        match self {
            JobOut::Stats(s) => s,
            JobOut::Limit(_) => unreachable!("job kind mismatch: expected stats"),
        }
    }

    fn into_limit(self) -> LimitStudy {
        match self {
            JobOut::Limit(l) => l,
            JobOut::Stats(_) => unreachable!("job kind mismatch: expected limit study"),
        }
    }
}

/// The per-benchmark job list, in assembly order.
fn job_kinds() -> Vec<JobKind> {
    let mut kinds = vec![JobKind::Base];
    kinds.extend(vp_keys().into_iter().map(JobKind::Vp));
    kinds.extend([JobKind::IrEarly, JobKind::IrLate, JobKind::Limit]);
    kinds
}

/// Runs one job. Each job constructs its own simulator over a shared,
/// immutable program, so results are independent of scheduling.
fn run_job(prog: &Program, cfg: MatrixConfig, kind: JobKind) -> JobOut {
    let limits = RunLimits::cycles(cfg.max_cycles);
    let run = |core: CoreConfig| -> JobOut {
        let mut sim = Simulator::new(prog, core);
        JobOut::Stats(sim.run(limits).clone())
    };
    match kind {
        JobKind::Base => run(CoreConfig::table1()),
        JobKind::Vp(key) => run(CoreConfig::with_vp(vp_config(key))),
        JobKind::IrEarly => run(CoreConfig::with_ir(IrConfig::table1())),
        JobKind::IrLate => run(CoreConfig::with_ir(IrConfig {
            validation: Validation::Late,
            ..IrConfig::table1()
        })),
        JobKind::Limit => JobOut::Limit(analyze(prog, cfg.limit_insts, LimitConfig::default())),
    }
}

/// Reassembles one benchmark's results from its jobs, pulled from
/// `take` in [`job_kinds`] order.
fn assemble_bench(
    bench: Bench,
    _prog: &Program,
    _cfg: MatrixConfig,
    mut take: impl FnMut(JobKind) -> JobOut,
) -> BenchRuns {
    let base = take(JobKind::Base).into_stats();
    let mut vp = BTreeMap::new();
    for key in vp_keys() {
        vp.insert(key, take(JobKind::Vp(key)).into_stats());
    }
    let ir_early = take(JobKind::IrEarly).into_stats();
    let ir_late = take(JobKind::IrLate).into_stats();
    let limit = take(JobKind::Limit).into_limit();
    BenchRuns {
        bench,
        base,
        vp,
        ir_early,
        ir_late,
        limit,
    }
}

/// The default worker count: the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Builds every benchmark's program at `scale` (the scheduler's
/// build phase, timed separately by the perf harness).
pub fn build_programs(benches: &[Bench], scale: Scale) -> Vec<Program> {
    benches.iter().map(|b| b.program(scale)).collect()
}

/// Runs the matrix over prebuilt programs with `jobs` workers
/// (`jobs == 0` means [`default_jobs`]).
///
/// Scheduling: the flat (benchmark × configuration) job list is
/// consumed through a single atomic cursor; each worker claims the
/// next unclaimed job and writes its result into that job's dedicated
/// slot. Reassembly reads the slots in list order, so the output is
/// independent of which worker ran which job and bit-matches
/// [`run_bench`] applied sequentially.
pub fn run_matrix_prebuilt(
    benches: &[Bench],
    progs: &[Program],
    cfg: MatrixConfig,
    jobs: usize,
) -> Matrix {
    assert_eq!(benches.len(), progs.len(), "one program per benchmark");
    let kinds = job_kinds();
    let job_list: Vec<(usize, JobKind)> = (0..benches.len())
        .flat_map(|bi| kinds.iter().map(move |&k| (bi, k)))
        .collect();

    let workers = if jobs == 0 { default_jobs() } else { jobs }
        .min(job_list.len())
        .max(1);
    let results: Vec<Mutex<Option<JobOut>>> =
        job_list.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(bi, kind)) = job_list.get(i) else { break };
                let out = run_job(&progs[bi], cfg, kind);
                *results[i].lock().expect("no poisoned worker") = Some(out);
            });
        }
    });

    // Reassemble in job-list order: the closure below is called by
    // `assemble_bench` in exactly `job_kinds()` order per benchmark,
    // which is the order the job list was built in.
    let mut outs = results
        .into_iter()
        .map(|m| m.into_inner().expect("workers done").expect("job ran"));
    let runs = benches
        .iter()
        .enumerate()
        .map(|(bi, &bench)| {
            assemble_bench(bench, &progs[bi], cfg, |_kind| {
                outs.next().expect("one result per job")
            })
        })
        .collect();
    Matrix { runs }
}

/// Runs the matrix over `benches` with `jobs` workers (`0` = default).
pub fn run_benches_jobs(benches: &[Bench], cfg: MatrixConfig, jobs: usize) -> Matrix {
    let progs = build_programs(benches, cfg.scale);
    run_matrix_prebuilt(benches, &progs, cfg, jobs)
}

/// Runs the full matrix with `jobs` workers (`0` = default).
pub fn run_matrix_jobs(cfg: MatrixConfig, jobs: usize) -> Matrix {
    run_benches_jobs(&Bench::ALL, cfg, jobs)
}

/// Runs the full matrix with the default worker count.
pub fn run_matrix(cfg: MatrixConfig) -> Matrix {
    run_matrix_jobs(cfg, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vp_key_space_is_complete() {
        let keys = vp_keys();
        assert_eq!(keys.len(), 16);
        let labels: std::collections::BTreeSet<String> =
            keys.iter().map(|&k| vp_label(k)).collect();
        assert_eq!(labels.len(), 16, "labels alone must be distinct");
    }

    #[test]
    fn vp_label_includes_kind_and_verify_latency() {
        let a = vp_label((VpKind::Magic, Reexecution::Me, BranchResolution::Sb, 0));
        let b = vp_label((VpKind::Lvp, Reexecution::Me, BranchResolution::Sb, 1));
        assert_eq!(a, "magic:ME-SB:vl0");
        assert_eq!(b, "lvp:ME-SB:vl1");
        assert_ne!(a, b, "kind/vl must disambiguate identical policies");
    }

    #[test]
    fn job_list_covers_every_config_once() {
        let kinds = job_kinds();
        assert_eq!(kinds.len(), 20, "base + 16 VP + 2 IR + limit");
        let uniq: std::collections::BTreeSet<String> =
            kinds.iter().map(|k| format!("{k:?}")).collect();
        assert_eq!(uniq.len(), kinds.len());
    }

    #[test]
    fn single_bench_runs_cover_all_configs() {
        let cfg = MatrixConfig {
            scale: Scale::of(1),
            max_cycles: 200_000,
            limit_insts: 50_000,
        };
        let runs = run_bench(Bench::Ijpeg, cfg);
        assert!(runs.base.committed > 0);
        assert_eq!(runs.vp.len(), 16);
        assert!(runs.ir_early.committed > 0);
        assert!(runs.limit.total > 0);
        assert!(runs.speedup(&runs.ir_early) > 0.1);
    }
}
