//! Runs the full configuration × benchmark matrix.
//!
//! Every (benchmark × configuration) run — base, the sixteen VP
//! configurations, IR with early and late validation, and the
//! functional limit study — is an independent, deterministic simulator
//! run, so the matrix is executed by a work-queue scheduler that fans
//! the flat job list out over worker threads and reassembles the
//! results in a fixed order. The assembled [`Matrix`] is bit-identical
//! for every worker count (including one); `tests/parallel.rs` locks
//! that equivalence in.
//!
//! Jobs are fault-isolated: a panic or a structured [`SimError`] in one
//! cell degrades that cell to a [`JobFailure`] while every other cell
//! still produces numbers ([`run_matrix_outcome`]). With a dump
//! directory, finished jobs are persisted incrementally and a resumed
//! run re-executes only the missing or failed cells, reassembling a
//! matrix bit-identical to an uninterrupted one.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use vpir_core::{
    CoreConfig, FaultInjection, IrConfig, RtbConfig, RunLimits, SimError, SimStats, Simulator,
    Validation,
};
use vpir_isa::Program;
use vpir_mechanism::registry::{self, vp_config};
use vpir_redundancy::{analyze, LimitConfig, LimitStudy};
use vpir_workloads::{Bench, Scale};

use crate::state::{self, JobPayload, JobRecord};

// The label vocabulary lives in the mechanism registry (one source for
// the matrix, `--inject-fault`, `vpir serve`, and the CLI); these
// re-exports keep the crate's historical API intact.
pub use vpir_mechanism::registry::{parse_vp_label, vp_keys, vp_label, VpKey};

/// How large a matrix run to perform.
#[derive(Debug, Clone, Copy)]
pub struct MatrixConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Per-run cycle cap (the paper runs 200M cycles; scaled down here).
    pub max_cycles: u64,
    /// Dynamic-instruction cap for the functional limit study.
    pub limit_insts: u64,
}

impl MatrixConfig {
    /// Experiment scale: minutes of wall-clock for the full matrix.
    pub fn experiment() -> MatrixConfig {
        MatrixConfig {
            scale: Scale::experiment(),
            max_cycles: 20_000_000,
            limit_insts: 3_000_000,
        }
    }

    /// Quick scale for tests and `--quick` runs.
    pub fn quick() -> MatrixConfig {
        MatrixConfig {
            scale: Scale::test(),
            max_cycles: 2_000_000,
            limit_insts: 200_000,
        }
    }
}

/// Every simulator run for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRuns {
    /// Which benchmark.
    pub bench: Bench,
    /// The base Table 1 machine.
    pub base: SimStats,
    /// All sixteen VP configurations, in [`vp_keys`] order (BTreeMap so
    /// report iteration is deterministic — R1 discipline).
    pub vp: BTreeMap<VpKey, SimStats>,
    /// IR with early validation (the real mechanism).
    pub ir_early: SimStats,
    /// IR with validation deferred to execute (Figure 3).
    pub ir_late: SimStats,
    /// The trace-reuse configurations, keyed by trace length
    /// (`rtb:t4`, `rtb:t8`), in registry order.
    pub rtb: BTreeMap<usize, SimStats>,
    /// The Section 4.3 functional limit study.
    pub limit: LimitStudy,
}

impl BenchRuns {
    /// Speedup of `stats` over this benchmark's base run (IPC ratio).
    pub fn speedup(&self, stats: &SimStats) -> f64 {
        if self.base.ipc() == 0.0 {
            0.0
        } else {
            stats.ipc() / self.base.ipc()
        }
    }
}

/// The full matrix: one [`BenchRuns`] per benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Per-benchmark results, in Table 2 order.
    pub runs: Vec<BenchRuns>,
}

impl Matrix {
    /// Total simulated cycles over every run in the matrix (the
    /// numerator of the perf harness's cycles/sec figure).
    pub fn total_sim_cycles(&self) -> u64 {
        self.runs
            .iter()
            .map(|r| {
                r.base.cycles
                    + r.vp.values().map(|s| s.cycles).sum::<u64>()
                    + r.ir_early.cycles
                    + r.ir_late.cycles
                    + r.rtb.values().map(|s| s.cycles).sum::<u64>()
            })
            .sum()
    }

    /// Number of cycle-level simulator runs (excludes the functional
    /// limit studies).
    pub fn sim_run_count(&self) -> usize {
        self.runs.iter().map(|r| 3 + r.vp.len() + r.rtb.len()).sum()
    }
}

/// Runs one simulator configuration over one benchmark.
pub fn run_one(bench: Bench, scale: Scale, config: CoreConfig, max_cycles: u64) -> SimStats {
    let prog = bench.program(scale);
    let mut sim = Simulator::new(&prog, config);
    sim.run(RunLimits::cycles(max_cycles)).clone()
}

/// Runs everything needed for one benchmark, sequentially on the
/// calling thread. This is the reference implementation the work-queue
/// scheduler must bit-match.
pub fn run_bench(bench: Bench, cfg: MatrixConfig) -> BenchRuns {
    let prog = bench.program(cfg.scale);
    assemble_bench(bench, &prog, cfg, |kind| run_job(&prog, cfg, kind))
}

// ----------------------------------------------------------------
// The work-queue scheduler.
// ----------------------------------------------------------------

/// One unit of work: a single configuration run over one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    Base,
    Vp(VpKey),
    IrEarly,
    IrLate,
    Rtb(RtbConfig),
    Limit,
}

/// The result of one job.
#[derive(Debug, Clone)]
enum JobOut {
    Stats(SimStats),
    Limit(LimitStudy),
}

impl JobOut {
    fn into_stats(self) -> SimStats {
        match self {
            JobOut::Stats(s) => s,
            JobOut::Limit(_) => unreachable!("job kind mismatch: expected stats"),
        }
    }

    fn into_limit(self) -> LimitStudy {
        match self {
            JobOut::Limit(l) => l,
            JobOut::Stats(_) => unreachable!("job kind mismatch: expected limit study"),
        }
    }
}

/// The per-benchmark job list, in assembly order.
fn job_kinds() -> Vec<JobKind> {
    let mut kinds = vec![JobKind::Base];
    kinds.extend(vp_keys().into_iter().map(JobKind::Vp));
    kinds.extend([JobKind::IrEarly, JobKind::IrLate]);
    kinds.extend(registry::rtb_configs().into_iter().map(JobKind::Rtb));
    kinds.push(JobKind::Limit);
    kinds
}

/// The configuration label of a job, as used in job files, failure
/// reports, and `--inject-fault` targets.
fn job_label(kind: JobKind) -> String {
    match kind {
        JobKind::Base => "base".to_string(),
        JobKind::Vp(key) => vp_label(key),
        JobKind::IrEarly => "ir_early".to_string(),
        JobKind::IrLate => "ir_late".to_string(),
        JobKind::Rtb(rtb) => rtb.label(),
        JobKind::Limit => "limit".to_string(),
    }
}

/// Every configuration label a matrix job can carry, in job order
/// (`base`, the sixteen VP labels, `ir_early`, `ir_late`, the RTB
/// labels, `limit`). This is the vocabulary of
/// `--inject-fault <bench>/<config>` targets and of the `config` field
/// in `vpir serve` run requests.
pub fn config_labels() -> Vec<String> {
    job_kinds().into_iter().map(job_label).collect()
}

/// The simulator configuration behind a matrix label: the inverse of
/// [`job_label`](config_labels) for every cycle-level cell. `limit` has
/// no machine configuration (it is the functional limit study), and an
/// unknown label returns `None`. Resolution is delegated to the
/// mechanism registry so every consumer shares one vocabulary.
pub fn config_for_label(label: &str) -> Option<CoreConfig> {
    registry::enhancement_for_label(label).map(CoreConfig::with_enhancement)
}

/// Runs one job. Each job constructs its own simulator over a shared,
/// immutable program, so results are independent of scheduling.
fn run_job(prog: &Program, cfg: MatrixConfig, kind: JobKind) -> JobOut {
    let limits = RunLimits::cycles(cfg.max_cycles);
    let run = |core: CoreConfig| -> JobOut {
        let mut sim = Simulator::new(prog, core);
        JobOut::Stats(sim.run(limits).clone())
    };
    match kind {
        JobKind::Base => run(CoreConfig::table1()),
        JobKind::Vp(key) => run(CoreConfig::with_vp(vp_config(key))),
        JobKind::IrEarly => run(CoreConfig::with_ir(IrConfig::table1())),
        JobKind::IrLate => run(CoreConfig::with_ir(IrConfig {
            validation: Validation::Late,
            ..IrConfig::table1()
        })),
        JobKind::Rtb(rtb) => run(CoreConfig::with_rtb(rtb)),
        JobKind::Limit => JobOut::Limit(analyze(prog, cfg.limit_insts, LimitConfig::default())),
    }
}

/// Reassembles one benchmark's results from its jobs, pulled from
/// `take` in [`job_kinds`] order.
fn assemble_bench(
    bench: Bench,
    _prog: &Program,
    _cfg: MatrixConfig,
    mut take: impl FnMut(JobKind) -> JobOut,
) -> BenchRuns {
    let base = take(JobKind::Base).into_stats();
    let mut vp = BTreeMap::new();
    for key in vp_keys() {
        vp.insert(key, take(JobKind::Vp(key)).into_stats());
    }
    let ir_early = take(JobKind::IrEarly).into_stats();
    let ir_late = take(JobKind::IrLate).into_stats();
    let mut rtb = BTreeMap::new();
    for c in registry::rtb_configs() {
        rtb.insert(c.max_len, take(JobKind::Rtb(c)).into_stats());
    }
    let limit = take(JobKind::Limit).into_limit();
    BenchRuns {
        bench,
        base,
        vp,
        ir_early,
        ir_late,
        rtb,
        limit,
    }
}

/// The default worker count: the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Builds every benchmark's program at `scale` (the scheduler's
/// build phase, timed separately by the perf harness).
pub fn build_programs(benches: &[Bench], scale: Scale) -> Vec<Program> {
    benches.iter().map(|b| b.program(scale)).collect()
}

// ----------------------------------------------------------------
// Fault isolation, injection, and resumable persistence.
// ----------------------------------------------------------------

/// How an injected fault manifests inside the targeted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Wedge the simulated commit stage so the forward-progress
    /// watchdog trips with a full diagnostic snapshot (the default).
    Wedge,
    /// Panic inside the worker, exercising the `catch_unwind` boundary.
    Panic,
}

/// A deterministic fault targeted at one matrix cell (`--inject-fault`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectFault {
    /// Benchmark name, e.g. `"go"`.
    pub bench: String,
    /// Configuration label, e.g. `"base"` or `"magic:ME-SB:vl1"`.
    pub config: String,
    /// How the fault manifests.
    pub mode: FaultMode,
}

impl InjectFault {
    /// Parses a `<bench>/<config>[:panic|:wedge]` target spec.
    ///
    /// Config labels themselves contain `:` (e.g. `magic:ME-SB:vl1`),
    /// so the mode suffix is recognised only at the very end.
    pub fn parse(spec: &str) -> Result<InjectFault, String> {
        let (target, mode) = if let Some(t) = spec.strip_suffix(":panic") {
            (t, FaultMode::Panic)
        } else if let Some(t) = spec.strip_suffix(":wedge") {
            (t, FaultMode::Wedge)
        } else {
            (spec, FaultMode::Wedge)
        };
        let (bench, config) = target
            .split_once('/')
            .ok_or_else(|| format!("bad fault target `{spec}`: want <bench>/<config>[:panic|:wedge]"))?;
        if bench.is_empty() || config.is_empty() {
            return Err(format!("bad fault target `{spec}`: empty bench or config"));
        }
        Ok(InjectFault {
            bench: bench.to_string(),
            config: config.to_string(),
            mode,
        })
    }
}

/// Options controlling fault isolation and persistence of a matrix run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Directory for incremental per-job result files and failure
    /// dumps. `None` disables persistence.
    pub dump_dir: Option<PathBuf>,
    /// Reload completed job files from `dump_dir` and re-execute only
    /// the missing or failed cells.
    pub resume: bool,
    /// Inject a deterministic fault into one cell (CI hook).
    pub inject_fault: Option<InjectFault>,
}

/// One matrix cell that failed instead of producing numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Flat index in the matrix's fixed job order.
    pub job_index: usize,
    /// Benchmark name.
    pub bench: String,
    /// Configuration label.
    pub config: String,
    /// Failure class: a [`SimError`] kind, or `"panic"`.
    pub kind: String,
    /// Human-readable description.
    pub error: String,
    /// Where the failure dump was written, when persistence is on.
    pub dump_path: Option<PathBuf>,
}

/// The result of a fault-isolated matrix run.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// Number of cells in the matrix.
    pub total_jobs: usize,
    /// Cells that produced a result (freshly run or resumed).
    pub completed_jobs: usize,
    /// Cells reloaded from the dump directory instead of re-run.
    pub resumed_jobs: usize,
    /// Cells that failed, in job order.
    pub failures: Vec<JobFailure>,
    /// The assembled matrix — present only when every cell completed.
    pub matrix: Option<Matrix>,
}

impl MatrixOutcome {
    /// True when every cell produced a result.
    pub fn fully_completed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// A job's slot once a worker (or the resume preload) has filled it.
enum SlotOut {
    Done(JobOut),
    Failed {
        kind: String,
        error: String,
        sim_json: Option<String>,
    },
}

/// Like [`run_job`], but surfaces structured simulator failures instead
/// of swallowing them, and optionally wedges the commit stage for fault
/// injection.
fn run_job_checked(
    prog: &Program,
    cfg: MatrixConfig,
    kind: JobKind,
    wedge: bool,
) -> Result<JobOut, SimError> {
    let limits = RunLimits::cycles(cfg.max_cycles);
    let run = |mut core: CoreConfig| -> Result<JobOut, SimError> {
        if wedge {
            // A commit stage that stalls after 100 instructions, with a
            // watchdog window short enough to trip within any budget.
            core.fault = FaultInjection::CommitStall { after_commits: 100 };
            core.watchdog_cycles = 5_000;
        }
        let mut sim = Simulator::new(prog, core);
        Ok(JobOut::Stats(sim.run_checked(limits)?.clone()))
    };
    match kind {
        JobKind::Base => run(CoreConfig::table1()),
        JobKind::Vp(key) => run(CoreConfig::with_vp(vp_config(key))),
        JobKind::IrEarly => run(CoreConfig::with_ir(IrConfig::table1())),
        JobKind::IrLate => run(CoreConfig::with_ir(IrConfig {
            validation: Validation::Late,
            ..IrConfig::table1()
        })),
        JobKind::Rtb(rtb) => run(CoreConfig::with_rtb(rtb)),
        JobKind::Limit => {
            if wedge {
                // The limit study is functional (no pipeline to wedge);
                // an injected fault still degrades it structurally.
                return Err(SimError::Internal {
                    cycle: 0,
                    what: "injected fault: the limit study has no commit stage to wedge"
                        .to_string(),
                });
            }
            Ok(JobOut::Limit(analyze(prog, cfg.limit_insts, LimitConfig::default())))
        }
    }
}

/// Runs one job behind a `catch_unwind` boundary: a panic (including an
/// injected one) or a structured [`SimError`] becomes a failed slot,
/// never a dead worker. Panic messages still reach stderr through the
/// default hook, which is intentional — the dump records the message,
/// the console shows the backtrace.
fn execute_job(
    prog: &Program,
    cfg: MatrixConfig,
    kind: JobKind,
    inject: Option<&InjectFault>,
) -> SlotOut {
    let wedge = matches!(inject.map(|f| f.mode), Some(FaultMode::Wedge));
    let result = catch_unwind(AssertUnwindSafe(|| {
        if matches!(inject.map(|f| f.mode), Some(FaultMode::Panic)) {
            panic!("injected fault: forced worker panic for isolation testing");
        }
        run_job_checked(prog, cfg, kind, wedge)
    }));
    match result {
        Ok(Ok(out)) => SlotOut::Done(out),
        Ok(Err(e)) => SlotOut::Failed {
            kind: e.kind().to_string(),
            error: e.to_string(),
            sim_json: Some(e.to_json()),
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            SlotOut::Failed {
                kind: "panic".to_string(),
                error: msg,
                sim_json: None,
            }
        }
    }
}

/// True when a reloaded job record was produced by this exact cell
/// under this exact matrix configuration.
fn record_matches(rec: &JobRecord, bench: Bench, cfg: MatrixConfig, kind: JobKind) -> bool {
    let payload_fits = match (&rec.payload, kind) {
        (JobPayload::Limit(_), JobKind::Limit) => true,
        (JobPayload::Stats(_), JobKind::Limit) => false,
        (JobPayload::Stats(_), _) => true,
        (JobPayload::Limit(_), _) => false,
    };
    payload_fits
        && rec.bench == bench.name()
        && rec.config == job_label(kind)
        && rec.scale == cfg.scale.outer
        && rec.max_cycles == cfg.max_cycles
        && rec.limit_insts == cfg.limit_insts
}

/// Persists a finished slot into the dump directory. Best-effort: an
/// I/O error here loses the persisted copy (so `--resume` would re-run
/// the cell) but never the in-memory result.
fn persist_slot(
    dir: &Path,
    job_index: usize,
    bench: Bench,
    label: &str,
    cfg: MatrixConfig,
    slot: &SlotOut,
) {
    match slot {
        SlotOut::Done(out) => {
            let payload = match out {
                JobOut::Stats(s) => JobPayload::Stats(s.clone()),
                JobOut::Limit(l) => JobPayload::Limit(l.clone()),
            };
            let rec = JobRecord {
                job_index,
                bench: bench.name().to_string(),
                config: label.to_string(),
                scale: cfg.scale.outer,
                max_cycles: cfg.max_cycles,
                limit_insts: cfg.limit_insts,
                payload,
            };
            let _ = state::write_job(dir, &rec);
            let _ = std::fs::remove_file(state::failure_path(dir, job_index));
        }
        SlotOut::Failed {
            kind,
            error,
            sim_json,
        } => {
            let mut out = String::new();
            out.push_str("{\n");
            out.push_str(&format!("  \"schema\": \"{}\",\n", state::FAILURE_SCHEMA));
            out.push_str(&format!("  \"job_index\": {job_index},\n"));
            out.push_str(&format!(
                "  \"bench\": \"{}\",\n",
                state::json_escape(bench.name())
            ));
            out.push_str(&format!("  \"config\": \"{}\",\n", state::json_escape(label)));
            out.push_str(&format!("  \"kind\": \"{}\",\n", state::json_escape(kind)));
            out.push_str(&format!("  \"error\": \"{}\",\n", state::json_escape(error)));
            match sim_json {
                Some(j) => out.push_str(&format!(
                    "  \"sim_error\": {}\n",
                    j.replace('\n', "\n  ")
                )),
                None => out.push_str("  \"sim_error\": null\n"),
            }
            out.push_str("}\n");
            let _ = std::fs::write(state::failure_path(dir, job_index), out);
            // A stale success from an earlier run must not mask this
            // failure when the directory is later resumed.
            let _ = std::fs::remove_file(state::job_path(dir, job_index));
        }
    }
}

/// Runs the matrix over prebuilt programs with `jobs` workers
/// (`jobs == 0` means [`default_jobs`]), fault-isolated per job.
///
/// Scheduling: the flat (benchmark × configuration) job list is
/// consumed through a single atomic cursor; each worker claims the
/// next unclaimed job and writes its result into that job's dedicated
/// slot. Reassembly reads the slots in list order, so the output is
/// independent of which worker ran which job and bit-matches
/// [`run_bench`] applied sequentially — including across a
/// resume, because each slot's counters round-trip exactly through its
/// job file.
pub fn run_matrix_outcome(
    benches: &[Bench],
    progs: &[Program],
    cfg: MatrixConfig,
    jobs: usize,
    opts: &RunOptions,
) -> MatrixOutcome {
    assert_eq!(benches.len(), progs.len(), "one program per benchmark");
    let kinds = job_kinds();
    let job_list: Vec<(usize, JobKind)> = (0..benches.len())
        .flat_map(|bi| kinds.iter().map(move |&k| (bi, k)))
        .collect();

    if let Some(dir) = &opts.dump_dir {
        let _ = std::fs::create_dir_all(dir);
    }

    let results: Vec<Mutex<Option<SlotOut>>> =
        job_list.iter().map(|_| Mutex::new(None)).collect();

    // Resume preload, single-threaded before any worker starts: a
    // reloaded cell fills its slot and is skipped by the claim loop.
    let mut resumed_jobs = 0usize;
    if opts.resume {
        if let Some(dir) = &opts.dump_dir {
            for (i, &(bi, kind)) in job_list.iter().enumerate() {
                let Some(rec) = state::load_job(dir, i) else { continue };
                if !record_matches(&rec, benches[bi], cfg, kind) {
                    continue;
                }
                let out = match rec.payload {
                    JobPayload::Stats(s) => JobOut::Stats(s),
                    JobPayload::Limit(l) => JobOut::Limit(l),
                };
                *results[i].lock().expect("no poisoned preload") = Some(SlotOut::Done(out));
                resumed_jobs += 1;
            }
        }
    }

    let workers = if jobs == 0 { default_jobs() } else { jobs }
        .min(job_list.len())
        .max(1);
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(bi, kind)) = job_list.get(i) else { break };
                let resumed = results[i].lock().expect("no poisoned worker").is_some();
                if resumed {
                    continue;
                }
                let bench = benches[bi];
                let label = job_label(kind);
                let inject = opts
                    .inject_fault
                    .as_ref()
                    .filter(|f| f.bench == bench.name() && f.config == label);
                let slot = execute_job(&progs[bi], cfg, kind, inject);
                if let Some(dir) = &opts.dump_dir {
                    persist_slot(dir, i, bench, &label, cfg, &slot);
                }
                *results[i].lock().expect("no poisoned worker") = Some(slot);
            });
        }
    });

    // Collect: failures become report rows, successes feed reassembly.
    let mut failures = Vec::new();
    let mut outs: Vec<Option<JobOut>> = Vec::with_capacity(job_list.len());
    for (i, m) in results.into_iter().enumerate() {
        let (bi, kind) = job_list[i];
        match m.into_inner().expect("workers done").expect("job ran") {
            SlotOut::Done(out) => outs.push(Some(out)),
            SlotOut::Failed { kind: fkind, error, .. } => {
                failures.push(JobFailure {
                    job_index: i,
                    bench: benches[bi].name().to_string(),
                    config: job_label(kind),
                    kind: fkind,
                    error,
                    dump_path: opts.dump_dir.as_ref().map(|d| state::failure_path(d, i)),
                });
                outs.push(None);
            }
        }
    }

    let total_jobs = job_list.len();
    let completed_jobs = total_jobs - failures.len();
    let matrix = failures.is_empty().then(|| {
        // Reassemble in job-list order: the closure below is called by
        // `assemble_bench` in exactly `job_kinds()` order per
        // benchmark, which is the order the job list was built in.
        let mut it = outs.into_iter().map(|o| o.expect("no failures"));
        let runs = benches
            .iter()
            .enumerate()
            .map(|(bi, &bench)| {
                assemble_bench(bench, &progs[bi], cfg, |_kind| {
                    it.next().expect("one result per job")
                })
            })
            .collect();
        Matrix { runs }
    });

    MatrixOutcome {
        total_jobs,
        completed_jobs,
        resumed_jobs,
        failures,
        matrix,
    }
}

/// Runs the matrix over prebuilt programs with `jobs` workers
/// (`jobs == 0` means [`default_jobs`]), with no persistence and no
/// injection. Panics if any cell fails — callers that want graceful
/// degradation use [`run_matrix_outcome`].
pub fn run_matrix_prebuilt(
    benches: &[Bench],
    progs: &[Program],
    cfg: MatrixConfig,
    jobs: usize,
) -> Matrix {
    let outcome = run_matrix_outcome(benches, progs, cfg, jobs, &RunOptions::default());
    if let Some(first) = outcome.failures.first() {
        panic!(
            "matrix run failed: {} of {} jobs failed (first: {}/{}: {})",
            outcome.failures.len(),
            outcome.total_jobs,
            first.bench,
            first.config,
            first.error
        );
    }
    outcome.matrix.expect("no failures")
}

/// Runs the matrix over `benches` with `jobs` workers (`0` = default).
pub fn run_benches_jobs(benches: &[Bench], cfg: MatrixConfig, jobs: usize) -> Matrix {
    let progs = build_programs(benches, cfg.scale);
    run_matrix_prebuilt(benches, &progs, cfg, jobs)
}

/// Runs the full matrix with `jobs` workers (`0` = default).
pub fn run_matrix_jobs(cfg: MatrixConfig, jobs: usize) -> Matrix {
    run_benches_jobs(&Bench::ALL, cfg, jobs)
}

/// Runs the full matrix with the default worker count.
pub fn run_matrix(cfg: MatrixConfig) -> Matrix {
    run_matrix_jobs(cfg, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpir_core::{BranchResolution, Reexecution, VpKind};

    #[test]
    fn vp_key_space_is_complete() {
        let keys = vp_keys();
        assert_eq!(keys.len(), 16);
        let labels: std::collections::BTreeSet<String> =
            keys.iter().map(|&k| vp_label(k)).collect();
        assert_eq!(labels.len(), 16, "labels alone must be distinct");
    }

    #[test]
    fn every_config_label_round_trips_to_its_configuration() {
        for kind in job_kinds() {
            let label = job_label(kind);
            let cfg = config_for_label(&label);
            match kind {
                JobKind::Limit => assert!(
                    cfg.is_none(),
                    "`limit` is the functional study, not a machine config"
                ),
                JobKind::Base => assert_eq!(cfg, Some(CoreConfig::table1())),
                JobKind::Vp(key) => {
                    assert_eq!(parse_vp_label(&label), Some(key));
                    assert_eq!(cfg, Some(CoreConfig::with_vp(vp_config(key))));
                }
                JobKind::IrEarly | JobKind::IrLate => {
                    assert!(cfg.is_some(), "IR labels must resolve: {label}");
                }
                JobKind::Rtb(rtb) => {
                    assert_eq!(cfg, Some(CoreConfig::with_rtb(rtb)));
                }
            }
        }
        assert_eq!(config_labels().len(), job_kinds().len());
        for bad in ["", "basex", "magic:ME-SB", "magic:XX-SB:vl1", "vl1", "rtb:t5", "rtb:"] {
            assert!(config_for_label(bad).is_none(), "accepted `{bad}`");
        }
    }

    #[test]
    fn config_labels_match_the_registry_vocabulary() {
        // Every machine label the registry exposes is a matrix cell, in
        // the same order, plus the functional `limit` study at the end.
        let mut expected = registry::machine_labels();
        expected.push("limit".to_string());
        assert_eq!(config_labels(), expected);
    }

    #[test]
    fn vp_label_includes_kind_and_verify_latency() {
        let a = vp_label((VpKind::Magic, Reexecution::Me, BranchResolution::Sb, 0));
        let b = vp_label((VpKind::Lvp, Reexecution::Me, BranchResolution::Sb, 1));
        assert_eq!(a, "magic:ME-SB:vl0");
        assert_eq!(b, "lvp:ME-SB:vl1");
        assert_ne!(a, b, "kind/vl must disambiguate identical policies");
    }

    #[test]
    fn job_list_covers_every_config_once() {
        let kinds = job_kinds();
        assert_eq!(kinds.len(), 22, "base + 16 VP + 2 IR + 2 RTB + limit");
        let uniq: std::collections::BTreeSet<String> =
            kinds.iter().map(|k| format!("{k:?}")).collect();
        assert_eq!(uniq.len(), kinds.len());
    }

    #[test]
    fn fault_targets_parse_with_and_without_modes() {
        let f = InjectFault::parse("go/ir_late").expect("parse");
        assert_eq!(
            f,
            InjectFault {
                bench: "go".to_string(),
                config: "ir_late".to_string(),
                mode: FaultMode::Wedge,
            }
        );
        // Config labels contain `:`, so the mode suffix binds last.
        let f = InjectFault::parse("gcc/magic:ME-SB:vl1:panic").expect("parse");
        assert_eq!(f.config, "magic:ME-SB:vl1");
        assert_eq!(f.mode, FaultMode::Panic);
        let f = InjectFault::parse("gcc/lvp:NME-NSB:vl0:wedge").expect("parse");
        assert_eq!(f.config, "lvp:NME-NSB:vl0");
        assert_eq!(f.mode, FaultMode::Wedge);

        assert!(InjectFault::parse("no-slash").is_err());
        assert!(InjectFault::parse("/config").is_err());
        assert!(InjectFault::parse("bench/").is_err());
    }

    #[test]
    fn every_job_kind_has_a_distinct_label() {
        let labels: std::collections::BTreeSet<String> =
            job_kinds().into_iter().map(job_label).collect();
        assert_eq!(labels.len(), 22);
        assert!(labels.contains("base"));
        assert!(labels.contains("ir_early"));
        assert!(labels.contains("ir_late"));
        assert!(labels.contains("rtb:t4"));
        assert!(labels.contains("rtb:t8"));
        assert!(labels.contains("limit"));
    }

    #[test]
    fn single_bench_runs_cover_all_configs() {
        let cfg = MatrixConfig {
            scale: Scale::of(1),
            max_cycles: 200_000,
            limit_insts: 50_000,
        };
        let runs = run_bench(Bench::Ijpeg, cfg);
        assert!(runs.base.committed > 0);
        assert_eq!(runs.vp.len(), 16);
        assert!(runs.ir_early.committed > 0);
        assert_eq!(runs.rtb.len(), 2, "one cell per RTB configuration");
        for stats in runs.rtb.values() {
            assert!(stats.committed > 0, "RTB cells must make progress");
        }
        assert!(runs.limit.total > 0);
        assert!(runs.speedup(&runs.ir_early) > 0.1);
    }
}
