//! Renders each of the paper's tables and figures from a [`Matrix`].
//!
//! Every function returns the report as a `String`; the `experiments`
//! binary prints them, `EXPERIMENTS.md` records them, and the
//! integration tests assert on their qualitative shape.

use vpir_core::{BranchResolution, Reexecution, VpKind};
use vpir_stats::{harmonic_mean, AsciiBars, Table};

use crate::matrix::{vp_label, Matrix, VpKey};

fn fmt(v: f64) -> String {
    format!("{v:.1}")
}

fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

/// Table 2: benchmark characteristics on the base machine.
pub fn table2(m: &Matrix) -> String {
    let mut t = Table::new(&[
        "Bench",
        "Inst Count (K)",
        "Br. Pred Rate (%)",
        "Ret. Pred Rate (%)",
    ]);
    for r in &m.runs {
        t.row_owned(vec![
            r.bench.name().to_string(),
            format!("{:.1}", r.base.committed as f64 / 1_000.0),
            fmt(r.base.branch_pred_rate()),
            fmt(r.base.return_pred_rate()),
        ]);
    }
    format!("Table 2: benchmarks, committed instructions, prediction rates\n\n{}", t.render())
}

/// Table 3: reuse and value-prediction rates.
pub fn table3(m: &Matrix) -> String {
    let magic: VpKey = (VpKind::Magic, Reexecution::Me, BranchResolution::Sb, 0);
    let lvp: VpKey = (VpKind::Lvp, Reexecution::Me, BranchResolution::Sb, 0);
    let mut t = Table::new(&[
        "Bench",
        "IR res%",
        "IR addr%",
        "Mag res%",
        "Mag mis%",
        "Mag adr%",
        "Mag amis%",
        "LVP res%",
        "LVP mis%",
        "LVP adr%",
        "LVP amis%",
    ]);
    for r in &m.runs {
        let ir = &r.ir_early;
        let mg = &r.vp[&magic];
        let lv = &r.vp[&lvp];
        t.row_owned(vec![
            r.bench.name().to_string(),
            fmt(ir.reuse_result_rate()),
            fmt(ir.reuse_addr_rate()),
            fmt(mg.vp_result_rate()),
            fmt(mg.vp_result_mispred_rate()),
            fmt(mg.vp_addr_rate()),
            fmt(mg.vp_addr_mispred_rate()),
            fmt(lv.vp_result_rate()),
            fmt(lv.vp_result_mispred_rate()),
            fmt(lv.vp_addr_rate()),
            fmt(lv.vp_addr_mispred_rate()),
        ]);
    }
    format!(
        "Table 3: IR reuse rates and VP prediction/misprediction rates\n\
         (result % over committed instructions; address % over memory ops)\n\n{}",
        t.render()
    )
}

/// Table 4: percent increase in branch squashes from spurious
/// (value-misprediction-induced) branch resolutions, SB configurations.
pub fn table4(m: &Matrix) -> String {
    let keys: [(&str, VpKey); 4] = [
        ("Magic ME-SB", (VpKind::Magic, Reexecution::Me, BranchResolution::Sb, 0)),
        ("Magic NME-SB", (VpKind::Magic, Reexecution::Nme, BranchResolution::Sb, 0)),
        ("LVP ME-SB", (VpKind::Lvp, Reexecution::Me, BranchResolution::Sb, 0)),
        ("LVP NME-SB", (VpKind::Lvp, Reexecution::Nme, BranchResolution::Sb, 0)),
    ];
    let mut t = Table::new(&["Bench", keys[0].0, keys[1].0, keys[2].0, keys[3].0]);
    for r in &m.runs {
        let base = r.base.squashes.max(1) as f64;
        let mut row = vec![r.bench.name().to_string()];
        for (_, key) in keys {
            let s = r.vp[&key].squashes as f64;
            row.push(fmt(100.0 * (s - base) / base));
        }
        t.row_owned(row);
    }
    format!(
        "Table 4: % increase in branch squashes under speculative branch\n\
         resolution (vs. the base machine's squash count)\n\n{}",
        t.render()
    )
}

/// Table 5: wrong-path work and how much of it IR recovers.
pub fn table5(m: &Matrix) -> String {
    let mut t = Table::new(&[
        "Bench",
        "Inst Executed (K)",
        "Exec Inst Squashed (%)",
        "Squashed Recovered (%)",
    ]);
    for r in &m.runs {
        let s = &r.ir_early;
        t.row_owned(vec![
            r.bench.name().to_string(),
            format!("{:.1}", s.executions as f64 / 1_000.0),
            fmt(s.squashed_exec_rate()),
            fmt(s.squash_recovery_rate()),
        ]);
    }
    format!(
        "Table 5: executed instructions squashed by branch mispredictions,\n\
         and the fraction recovered through reuse of wrong-path RB entries\n\n{}",
        t.render()
    )
}

/// Table 6: per-instruction execution counts under `VP_Magic` ME-SB with
/// 1-cycle verification.
pub fn table6(m: &Matrix) -> String {
    let key: VpKey = (VpKind::Magic, Reexecution::Me, BranchResolution::Sb, 1);
    let mut t = Table::new(&["Bench", "1 (%)", "2 (%)", "3+ (%)"]);
    for r in &m.runs {
        let s = &r.vp[&key];
        t.row_owned(vec![
            r.bench.name().to_string(),
            fmt(s.exec_times_rate(1)),
            fmt(s.exec_times_rate(2)),
            fmt(s.exec_times_rate(3)),
        ]);
    }
    format!(
        "Table 6: % of committed instructions executed once/twice/3+ times\n\
         (VP_Magic, ME-SB, 1-cycle verification)\n\n{}",
        t.render()
    )
}

/// Figure 3: IR speedup with early vs late validation.
pub fn fig3(m: &Matrix) -> String {
    let mut t = Table::new(&["Bench", "early (%)", "late (%)"]);
    let mut early = Vec::new();
    let mut late = Vec::new();
    for r in &m.runs {
        let e = r.speedup(&r.ir_early);
        let l = r.speedup(&r.ir_late);
        early.push(e);
        late.push(l);
        t.row_owned(vec![
            r.bench.name().to_string(),
            fmt(100.0 * (e - 1.0)),
            fmt(100.0 * (l - 1.0)),
        ]);
    }
    let hm_e = harmonic_mean(early).unwrap_or(0.0);
    let hm_l = harmonic_mean(late).unwrap_or(0.0);
    t.row_owned(vec![
        "HM".to_string(),
        fmt(100.0 * (hm_e - 1.0)),
        fmt(100.0 * (hm_l - 1.0)),
    ]);
    format!(
        "Figure 3: % speedup of IR with early vs late validation\n\n{}",
        t.render()
    )
}

fn magic_keys(vl: u32) -> [(String, VpKey); 4] {
    let mk = |re, br| -> (String, VpKey) {
        let key = (VpKind::Magic, re, br, vl);
        (vp_label(key), key)
    };
    [
        mk(Reexecution::Me, BranchResolution::Sb),
        mk(Reexecution::Nme, BranchResolution::Sb),
        mk(Reexecution::Me, BranchResolution::Nsb),
        mk(Reexecution::Nme, BranchResolution::Nsb),
    ]
}

fn lvp_keys(vl: u32) -> [(String, VpKey); 4] {
    let mk = |re, br| -> (String, VpKey) {
        let key = (VpKind::Lvp, re, br, vl);
        (vp_label(key), key)
    };
    [
        mk(Reexecution::Me, BranchResolution::Sb),
        mk(Reexecution::Nme, BranchResolution::Sb),
        mk(Reexecution::Me, BranchResolution::Nsb),
        mk(Reexecution::Nme, BranchResolution::Nsb),
    ]
}

/// Figure 4: branch-resolution latency normalised to base.
pub fn fig4(m: &Matrix) -> String {
    let mut out = String::new();
    for vl in [0u32, 1] {
        let keys = magic_keys(vl);
        let mut t = Table::new(&[
            "Bench", &keys[0].0, &keys[1].0, &keys[2].0, &keys[3].0, "reuse-n+d",
        ]);
        for r in &m.runs {
            let base = r.base.branch_resolution_latency().max(1e-9);
            let mut row = vec![r.bench.name().to_string()];
            for (_, key) in &keys {
                row.push(fmt2(r.vp[key].branch_resolution_latency() / base));
            }
            row.push(fmt2(r.ir_early.branch_resolution_latency() / base));
            t.row_owned(row);
        }
        out.push_str(&format!(
            "Figure 4({}): branch resolution latency / base, {}-cycle VP verification\n\n{}\n",
            if vl == 0 { 'a' } else { 'b' },
            vl,
            t.render()
        ));
    }
    out
}

/// Figure 5: resource contention normalised to base (0-cycle verify).
pub fn fig5(m: &Matrix) -> String {
    let keys = magic_keys(0);
    let mut t = Table::new(&[
        "Bench", &keys[0].0, &keys[1].0, &keys[2].0, &keys[3].0, "reuse-n+d",
    ]);
    for r in &m.runs {
        let base = r.base.contention().max(1e-9);
        let mut row = vec![r.bench.name().to_string()];
        for (_, key) in &keys {
            row.push(fmt2(r.vp[key].contention() / base));
        }
        row.push(fmt2(r.ir_early.contention() / base));
        t.row_owned(row);
    }
    format!(
        "Figure 5: resource contention (denied/requested), normalised to base\n\n{}",
        t.render()
    )
}

/// Figure 6: speedups of `VP_Magic` configurations and IR.
pub fn fig6(m: &Matrix) -> String {
    let mut out = String::new();
    for vl in [0u32, 1] {
        let keys = magic_keys(vl);
        let mut t = Table::new(&[
            "Bench", &keys[0].0, &keys[1].0, &keys[2].0, &keys[3].0, "reuse-n+d",
        ]);
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 5];
        for r in &m.runs {
            let mut row = vec![r.bench.name().to_string()];
            for (i, (_, key)) in keys.iter().enumerate() {
                let sp = r.speedup(&r.vp[key]);
                cols[i].push(sp);
                row.push(fmt2(sp));
            }
            let sp = r.speedup(&r.ir_early);
            cols[4].push(sp);
            row.push(fmt2(sp));
            t.row_owned(row);
        }
        let mut hm_row = vec!["HM".to_string()];
        for col in &cols {
            hm_row.push(fmt2(harmonic_mean(col.iter().copied()).unwrap_or(0.0)));
        }
        t.row_owned(hm_row);
        out.push_str(&format!(
            "Figure 6({}): speedup over base, VP_Magic + IR, {}-cycle verification\n\n{}\n",
            if vl == 0 { 'a' } else { 'b' },
            vl,
            t.render()
        ));
    }
    out
}

/// Figure 7: speedups of `VP_LVP` configurations.
pub fn fig7(m: &Matrix) -> String {
    let mut out = String::new();
    for vl in [0u32, 1] {
        let keys = lvp_keys(vl);
        let mut t = Table::new(&[
            "Bench", &keys[0].0, &keys[1].0, &keys[2].0, &keys[3].0,
        ]);
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for r in &m.runs {
            let mut row = vec![r.bench.name().to_string()];
            for (i, (_, key)) in keys.iter().enumerate() {
                let sp = r.speedup(&r.vp[key]);
                cols[i].push(sp);
                row.push(fmt2(sp));
            }
            t.row_owned(row);
        }
        let mut hm_row = vec!["HM".to_string()];
        for col in &cols {
            hm_row.push(fmt2(harmonic_mean(col.iter().copied()).unwrap_or(0.0)));
        }
        t.row_owned(hm_row);
        out.push_str(&format!(
            "Figure 7({}): speedup over base, VP_LVP, {}-cycle verification\n\n{}\n",
            if vl == 0 { 'a' } else { 'b' },
            vl,
            t.render()
        ));
    }
    out
}

/// Figure 8: classification of instruction results.
pub fn fig8(m: &Matrix) -> String {
    let mut t = Table::new(&["Bench", "unique", "repeated", "derivable", "unacct"]);
    for r in &m.runs {
        let (u, rep, d, una) = r.limit.classification_pct();
        t.row_owned(vec![
            r.bench.name().to_string(),
            fmt(u),
            fmt(rep),
            fmt(d),
            fmt(una),
        ]);
    }
    format!(
        "Figure 8: classification of instruction results (% of dynamic\n\
         result-producing instructions)\n\n{}",
        t.render()
    )
}

/// Figure 9: input readiness of repeated instructions.
pub fn fig9(m: &Matrix) -> String {
    let mut t = Table::new(&["Bench", "prod reused", "dist >= 50", "dist < 50"]);
    for r in &m.runs {
        let (pr, far, near) = r.limit.readiness_pct();
        t.row_owned(vec![r.bench.name().to_string(), fmt(pr), fmt(far), fmt(near)]);
    }
    format!(
        "Figure 9: repeated instructions by input readiness (% of repeated)\n\n{}",
        t.render()
    )
}

/// Figure 10: how much of the redundancy is reusable.
pub fn fig10(m: &Matrix) -> String {
    let mut t = Table::new(&["Bench", "redundant (%dyn)", "reusable (%red)"]);
    let mut bars = AsciiBars::new(40, 100.0);
    for r in &m.runs {
        t.row_owned(vec![
            r.bench.name().to_string(),
            fmt(r.limit.redundant_pct()),
            fmt(r.limit.reusable_pct()),
        ]);
        bars.bar(r.bench.name(), r.limit.reusable_pct());
    }
    format!(
        "Figure 10: amount of redundancy that can be reused\n\n{}\n{}",
        t.render(),
        bars.render()
    )
}

/// Trace reuse (RTB) against the paper's two mechanisms: speedup side
/// by side with IR and the magic value predictor, plus the trace-level
/// rates that explain the gap. The per-instruction-type and
/// per-loop-depth attribution is in each run's `SimStats::report()`.
pub fn rtb_table(m: &Matrix) -> String {
    let magic: VpKey = (VpKind::Magic, Reexecution::Me, BranchResolution::Sb, 0);
    let mut t = Table::new(&[
        "Bench",
        "IR sp",
        "VP sp",
        "t4 sp",
        "t8 sp",
        "t8 reuse%",
        "t8 len",
        "t8 abort%",
    ]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for r in &m.runs {
        let mut row = vec![r.bench.name().to_string()];
        let speedups = [
            r.speedup(&r.ir_early),
            r.speedup(&r.vp[&magic]),
            r.rtb.get(&4).map_or(1.0, |s| r.speedup(s)),
            r.rtb.get(&8).map_or(1.0, |s| r.speedup(s)),
        ];
        for (col, sp) in cols.iter_mut().zip(speedups) {
            col.push(sp);
            row.push(fmt2(sp));
        }
        if let Some(s) = r.rtb.get(&8) {
            let replays = s.rtb.replays.max(1) as f64;
            row.push(fmt(s.rtb.committed_reuse_pct(s.committed)));
            row.push(fmt2(s.rtb.mean_trace_len()));
            row.push(fmt(100.0 * s.rtb.aborted as f64 / replays));
        } else {
            row.extend(["-".to_string(), "-".to_string(), "-".to_string()]);
        }
        t.row_owned(row);
    }
    let mut hm_row = vec!["HM".to_string()];
    for col in &cols {
        hm_row.push(fmt2(harmonic_mean(col.iter().copied()).unwrap_or(0.0)));
    }
    hm_row.extend(["".to_string(), "".to_string(), "".to_string()]);
    t.row_owned(hm_row);

    // Where the trace-reuse pipeline loses captures (invalidated by a
    // squash before install, or dropped as unclassifiable), and where
    // the committed reuse lands: dominant instruction class and the
    // loop-depth distribution (depth 0 = straight-line, 4+ pooled).
    let mut attr = Table::new(&[
        "Bench", "captured", "inv", "drop", "top class", "d0%", "d1%", "d2%", "d3%", "d4+%",
    ]);
    for r in &m.runs {
        let Some(s) = r.rtb.get(&8) else { continue };
        let reused = s.rtb.committed_reused.max(1) as f64;
        let top = vpir_mechanism::CLASS_NAMES
            .iter()
            .zip(s.rtb.per_class)
            .max_by_key(|&(_, n)| n)
            .map_or("-", |(name, _)| name);
        let mut row = vec![
            r.bench.name().to_string(),
            s.rtb.captured.to_string(),
            s.rtb.pending_squashed.to_string(),
            s.rtb.dropped.to_string(),
            top.to_string(),
        ];
        for d in s.rtb.per_depth {
            row.push(fmt(100.0 * d as f64 / reused));
        }
        attr.row_owned(row);
    }
    format!(
        "Trace reuse: speedup vs IR and VP_Magic (ME-SB, vl0), with the\n\
         fraction of committed instructions that arrived via trace replay,\n\
         the mean installed trace length, and the replay abort rate\n\n{}\n\
         Trace reuse attribution (rtb:t8): capture losses, the dominant\n\
         reused instruction class, and committed reuse by loop depth\n\n{}",
        t.render(),
        attr.render()
    )
}

/// Machine-readable export: one CSV row per (benchmark, configuration)
/// with the headline metrics, for external plotting.
pub fn csv(m: &Matrix) -> String {
    let mut out = String::from(
        "bench,config,ipc,speedup,reuse_result_pct,reuse_addr_pct,vp_result_pct,         vp_result_mispred_pct,branch_pred_pct,squashes,spurious_squashes,         branch_resolution_latency,contention
",
    );
    for r in &m.runs {
        let mut emit = |config: &str, s: &vpir_core::SimStats| {
            out.push_str(&format!(
                "{},{},{:.4},{:.4},{:.2},{:.2},{:.2},{:.2},{:.2},{},{},{:.3},{:.5}
",
                r.bench.name(),
                config,
                s.ipc(),
                r.speedup(s),
                s.reuse_result_rate(),
                s.reuse_addr_rate(),
                s.vp_result_rate(),
                s.vp_result_mispred_rate(),
                s.branch_pred_rate(),
                s.squashes,
                s.spurious_squashes,
                s.branch_resolution_latency(),
                s.contention(),
            ));
        };
        emit("base", &r.base);
        emit("ir-early", &r.ir_early);
        emit("ir-late", &r.ir_late);
        for (key, stats) in &r.vp {
            emit(&format!("vp-{}", vp_label(*key)), stats);
        }
        for (len, stats) in &r.rtb {
            emit(&format!("rtb-t{len}"), stats);
        }
    }
    out
}

/// Every report, concatenated (the `all` subcommand).
pub fn all(m: &Matrix) -> String {
    [
        table2(m),
        table3(m),
        table4(m),
        table5(m),
        table6(m),
        fig3(m),
        fig4(m),
        fig5(m),
        fig6(m),
        fig7(m),
        fig8(m),
        fig9(m),
        fig10(m),
        rtb_table(m),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{run_bench, MatrixConfig};
    use vpir_workloads::{Bench, Scale};

    fn tiny_matrix() -> Matrix {
        let cfg = MatrixConfig {
            scale: Scale::of(1),
            max_cycles: 150_000,
            limit_insts: 40_000,
        };
        Matrix {
            runs: vec![run_bench(Bench::Ijpeg, cfg), run_bench(Bench::Compress, cfg)],
        }
    }

    #[test]
    fn every_report_renders() {
        let m = tiny_matrix();
        for (name, render) in [
            ("table2", table2(&m)),
            ("table3", table3(&m)),
            ("table4", table4(&m)),
            ("table5", table5(&m)),
            ("table6", table6(&m)),
            ("fig3", fig3(&m)),
            ("fig4", fig4(&m)),
            ("fig5", fig5(&m)),
            ("fig6", fig6(&m)),
            ("fig7", fig7(&m)),
            ("fig8", fig8(&m)),
            ("fig9", fig9(&m)),
            ("fig10", fig10(&m)),
            ("rtb_table", rtb_table(&m)),
        ] {
            assert!(render.contains("ijpeg"), "{name} must list benchmarks:\n{render}");
            assert!(render.lines().count() >= 4, "{name} too short");
        }
        assert!(all(&m).len() > 1000);
    }

    #[test]
    fn csv_has_a_row_per_config() {
        let m = tiny_matrix();
        let csv = csv(&m);
        let lines: Vec<&str> = csv.lines().collect();
        // header + 2 benchmarks x (base + 2 IR + 16 VP + 2 RTB)
        assert_eq!(lines.len(), 1 + 2 * 21, "{csv}");
        assert!(lines[0].starts_with("bench,config,ipc"));
        assert!(csv.contains("ijpeg,base,"));
        assert!(csv.contains("compress,ir-early,"));
        assert!(csv.contains("ijpeg,rtb-t8,"));
    }
}
