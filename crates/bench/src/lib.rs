//! # vpir-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Tables 2–6, Figures 3–10) from simulator runs over the seven
//! benchmark stand-ins. The [`matrix`] module runs the full
//! configuration × benchmark matrix once; the [`report`] module derives
//! each table/figure from it.
//!
//! The `experiments` binary is the command-line front end:
//!
//! ```text
//! experiments all            # everything, experiment scale
//! experiments table3         # one table
//! experiments fig6 --quick   # one figure at test scale
//! experiments ablations      # beyond-the-paper design sweeps
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod golden;
pub mod matrix;
pub mod microbench;
pub mod perf;
pub mod report;
pub mod state;

pub use matrix::{
    config_for_label, config_labels, parse_vp_label, BenchRuns, FaultMode, InjectFault,
    JobFailure, Matrix, MatrixConfig, MatrixOutcome, RunOptions, VpKey,
};
pub use perf::{run_matrix_timed, run_matrix_timed_opts, MatrixPerf};
