//! One group per paper table: each benchmark target runs the
//! simulations that regenerate the table's rows (at a reduced scale so
//! a `cargo bench` pass stays tractable) and reports the wall-clock
//! cost of reproducing it. Run `experiments <table>` for the
//! full-scale rows.
//!
//! Run with `cargo bench -p vpir-bench --features bench`.

use vpir_bench::matrix::{run_bench, run_one, MatrixConfig};
use vpir_bench::microbench::{black_box, group};
use vpir_bench::report;
use vpir_bench::Matrix;
use vpir_core::{BranchResolution, CoreConfig, IrConfig, Reexecution, VpConfig, VpKind};
use vpir_workloads::{Bench, Scale};

fn tiny() -> MatrixConfig {
    MatrixConfig {
        scale: Scale::of(1),
        max_cycles: 60_000,
        limit_insts: 30_000,
    }
}

/// Table 2 needs only the base machine per benchmark.
fn table2_base_characterization() {
    group("table2").bench("base_runs", || {
        for bench in [Bench::Go, Bench::Compress] {
            let s = run_one(bench, Scale::of(1), CoreConfig::table1(), 60_000);
            black_box((s.branch_pred_rate(), s.return_pred_rate()));
        }
    });
}

/// Table 3: IR + the two SB predictors.
fn table3_rates() {
    group("table3").bench("rate_runs", || {
        let bench = Bench::Compress;
        let ir = run_one(bench, Scale::of(1), CoreConfig::with_ir(IrConfig::table1()), 60_000);
        let vp = run_one(bench, Scale::of(1), CoreConfig::with_vp(VpConfig::magic()), 60_000);
        black_box((ir.reuse_addr_rate(), vp.vp_result_rate()))
    });
}

/// Table 4: squash counts under the SB configurations.
fn table4_spurious_squashes() {
    group("table4").bench("sb_squash_runs", || {
        let bench = Bench::Perl;
        let base = run_one(bench, Scale::of(1), CoreConfig::table1(), 60_000);
        let vp = VpConfig {
            kind: VpKind::Lvp,
            reexecution: Reexecution::Me,
            branch_resolution: BranchResolution::Sb,
            ..VpConfig::magic()
        };
        let sb = run_one(bench, Scale::of(1), CoreConfig::with_vp(vp), 60_000);
        black_box((base.squashes, sb.squashes))
    });
}

/// Table 5: squashed-work recovery under IR.
fn table5_squash_recovery() {
    group("table5").bench("recovery_runs", || {
        let s = run_one(Bench::Go, Scale::of(1), CoreConfig::with_ir(IrConfig::table1()), 60_000);
        black_box((s.squashed_exec_rate(), s.squash_recovery_rate()))
    });
}

/// Table 6: execution-count histogram under Magic ME-SB, 1-cycle verify.
fn table6_reexecution() {
    group("table6").bench("histogram_runs", || {
        let vp = VpConfig::magic().with_verify_latency(1);
        let s = run_one(Bench::Gcc, Scale::of(1), CoreConfig::with_vp(vp), 60_000);
        black_box([s.exec_times_rate(1), s.exec_times_rate(2), s.exec_times_rate(3)])
    });
}

/// End-to-end: one full per-benchmark matrix column + all table renders.
fn tables_full_rendering() {
    group("tables_render").bench("one_bench_matrix_and_reports", || {
        let m = Matrix {
            runs: vec![run_bench(Bench::Ijpeg, tiny())],
        };
        black_box((
            report::table2(&m),
            report::table3(&m),
            report::table4(&m),
            report::table5(&m),
            report::table6(&m),
        ))
    });
}

fn main() {
    table2_base_characterization();
    table3_rates();
    table4_spurious_squashes();
    table5_squash_recovery();
    table6_reexecution();
    tables_full_rendering();
}
