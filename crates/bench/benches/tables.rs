//! One Criterion group per paper table: each benchmark target runs the
//! simulations that regenerate the table's rows (at a reduced scale so a
//! `cargo bench` pass stays tractable) and reports the wall-clock cost
//! of reproducing it. Run `experiments <table>` for the full-scale rows.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use vpir_bench::matrix::{run_bench, run_one, MatrixConfig};
use vpir_bench::report;
use vpir_bench::Matrix;
use vpir_core::{BranchResolution, CoreConfig, IrConfig, Reexecution, VpConfig, VpKind};
use vpir_workloads::{Bench, Scale};

fn tiny() -> MatrixConfig {
    MatrixConfig {
        scale: Scale::of(1),
        max_cycles: 60_000,
        limit_insts: 30_000,
    }
}

/// Table 2 needs only the base machine per benchmark.
fn table2_base_characterization(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("base_runs", |b| {
        b.iter(|| {
            for bench in [Bench::Go, Bench::Compress] {
                let s = run_one(bench, Scale::of(1), CoreConfig::table1(), 60_000);
                black_box((s.branch_pred_rate(), s.return_pred_rate()));
            }
        })
    });
    g.finish();
}

/// Table 3: IR + the two SB predictors.
fn table3_rates(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("rate_runs", |b| {
        b.iter(|| {
            let bench = Bench::Compress;
            let ir = run_one(bench, Scale::of(1), CoreConfig::with_ir(IrConfig::table1()), 60_000);
            let vp = run_one(bench, Scale::of(1), CoreConfig::with_vp(VpConfig::magic()), 60_000);
            black_box((ir.reuse_addr_rate(), vp.vp_result_rate()))
        })
    });
    g.finish();
}

/// Table 4: squash counts under the SB configurations.
fn table4_spurious_squashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("sb_squash_runs", |b| {
        b.iter(|| {
            let bench = Bench::Perl;
            let base = run_one(bench, Scale::of(1), CoreConfig::table1(), 60_000);
            let vp = VpConfig {
                kind: VpKind::Lvp,
                reexecution: Reexecution::Me,
                branch_resolution: BranchResolution::Sb,
                ..VpConfig::magic()
            };
            let sb = run_one(bench, Scale::of(1), CoreConfig::with_vp(vp), 60_000);
            black_box((base.squashes, sb.squashes))
        })
    });
    g.finish();
}

/// Table 5: squashed-work recovery under IR.
fn table5_squash_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    g.bench_function("recovery_runs", |b| {
        b.iter(|| {
            let s = run_one(Bench::Go, Scale::of(1), CoreConfig::with_ir(IrConfig::table1()), 60_000);
            black_box((s.squashed_exec_rate(), s.squash_recovery_rate()))
        })
    });
    g.finish();
}

/// Table 6: execution-count histogram under Magic ME-SB, 1-cycle verify.
fn table6_reexecution(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.bench_function("histogram_runs", |b| {
        b.iter(|| {
            let vp = VpConfig::magic().with_verify_latency(1);
            let s = run_one(Bench::Gcc, Scale::of(1), CoreConfig::with_vp(vp), 60_000);
            black_box([s.exec_times_rate(1), s.exec_times_rate(2), s.exec_times_rate(3)])
        })
    });
    g.finish();
}

/// End-to-end: one full per-benchmark matrix column + all table renders.
fn tables_full_rendering(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables_render");
    g.sample_size(10);
    g.bench_function("one_bench_matrix_and_reports", |b| {
        b.iter(|| {
            let m = Matrix {
                runs: vec![run_bench(Bench::Ijpeg, tiny())],
            };
            black_box((
                report::table2(&m),
                report::table3(&m),
                report::table4(&m),
                report::table5(&m),
                report::table6(&m),
            ))
        })
    });
    g.finish();
}

criterion_group!(
    tables,
    table2_base_characterization,
    table3_rates,
    table4_spurious_squashes,
    table5_squash_recovery,
    table6_reexecution,
    tables_full_rendering
);
criterion_main!(tables);
