//! Microbenchmarks of the simulator's building blocks.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use vpir_branch::{DirectionPredictor, Gshare};
use vpir_core::{CoreConfig, RunLimits, Simulator};
use vpir_isa::{asm, Machine};
use vpir_mem::{Cache, CacheConfig};
use vpir_predict::{MagicPredictor, ValuePredictor, VptConfig};
use vpir_reuse::{OperandView, RbConfig, RbInsert, ReuseBuffer};
use vpir_workloads::{Bench, Scale};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("access_mixed_1k", |b| {
        let mut cache = Cache::new(CacheConfig::table1_data());
        let mut t = 0u64;
        b.iter(|| {
            for i in 0..1024u64 {
                t += 1;
                let addr = (i * 2654435761) & 0x3_ffff;
                black_box(cache.access(t, addr, i % 4 == 0));
            }
        })
    });
    g.finish();
}

fn bench_gshare(c: &mut Criterion) {
    let mut g = c.benchmark_group("gshare");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("predict_update_1k", |b| {
        let mut bp = Gshare::table1();
        b.iter(|| {
            for i in 0..1024u64 {
                let pc = 0x1000 + (i % 64) * 4;
                let (taken, token) = bp.predict(pc);
                bp.update(pc, i % 3 == 0, token);
                if taken != (i % 3 == 0) {
                    bp.recover(token, i % 3 == 0);
                }
            }
        })
    });
    g.finish();
}

fn bench_vpt(c: &mut Criterion) {
    let mut g = c.benchmark_group("vpt");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("magic_predict_train_1k", |b| {
        let mut vp = MagicPredictor::new(VptConfig::table1());
        b.iter(|| {
            for i in 0..1024u64 {
                let pc = 0x1000 + (i % 128) * 4;
                let v = i % 5;
                black_box(vp.predict(pc, Some(v)));
                vp.train(pc, v);
            }
        })
    });
    g.finish();
}

fn bench_rb(c: &mut Criterion) {
    let mut g = c.benchmark_group("reuse_buffer");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("insert_lookup_1k", |b| {
        let mut rb = ReuseBuffer::new(RbConfig::table1());
        b.iter(|| {
            for i in 0..1024u64 {
                let pc = 0x1000 + (i % 128) * 4;
                let a = i % 4;
                rb.insert(RbInsert {
                    pc,
                    op: vpir_isa::Op::Add,
                    srcs: [
                        Some((vpir_isa::Reg::int(2), a)),
                        Some((vpir_isa::Reg::int(3), 7)),
                    ],
                    result: Some(a + 7),
                    ..RbInsert::default()
                });
                let view = move |r: vpir_isa::Reg| {
                    if r == vpir_isa::Reg::int(2) {
                        OperandView::settled(a)
                    } else {
                        OperandView::settled(7)
                    }
                };
                black_box(rb.lookup(pc, vpir_isa::Op::Add, &view, &[]));
            }
        })
    });
    g.finish();
}

fn bench_functional(c: &mut Criterion) {
    let prog = asm::assemble(
        "       li   r1, 1000
 loop:  andi r2, r1, 15
        add  r3, r3, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        halt",
    )
    .expect("assembles");
    let mut g = c.benchmark_group("functional_machine");
    g.throughput(Throughput::Elements(4002));
    g.bench_function("interp_4k_insts", |b| {
        b.iter(|| {
            let mut m = Machine::new(&prog);
            m.run(10_000).expect("runs");
            black_box(m.icount)
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let prog = Bench::Ijpeg.program(Scale::of(1));
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("base_50k_cycles", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&prog, CoreConfig::table1());
            sim.run(RunLimits::cycles(50_000));
            black_box(sim.stats().committed)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_gshare,
    bench_vpt,
    bench_rb,
    bench_functional,
    bench_pipeline
);
criterion_main!(benches);
