//! Microbenchmarks of the simulator's building blocks.
//!
//! Run with `cargo bench -p vpir-bench --features bench`.

use vpir_bench::microbench::{black_box, group};
use vpir_branch::{DirectionPredictor, Gshare};
use vpir_core::{CoreConfig, RunLimits, Simulator};
use vpir_isa::{asm, Machine};
use vpir_mem::{Cache, CacheConfig};
use vpir_predict::{MagicPredictor, ValuePredictor, VptConfig};
use vpir_reuse::{OperandView, RbConfig, RbInsert, ReuseBuffer};
use vpir_workloads::{Bench, Scale};

fn bench_cache() {
    let mut cache = Cache::new(CacheConfig::table1_data());
    let mut t = 0u64;
    group("cache").throughput(1024).bench("access_mixed_1k", || {
        for i in 0..1024u64 {
            t += 1;
            let addr = (i * 2654435761) & 0x3_ffff;
            black_box(cache.access(t, addr, i % 4 == 0));
        }
    });
}

fn bench_gshare() {
    let mut bp = Gshare::table1();
    group("gshare").throughput(1024).bench("predict_update_1k", || {
        for i in 0..1024u64 {
            let pc = 0x1000 + (i % 64) * 4;
            let (taken, token) = bp.predict(pc);
            bp.update(pc, i % 3 == 0, token);
            if taken != (i % 3 == 0) {
                bp.recover(token, i % 3 == 0);
            }
        }
    });
}

fn bench_vpt() {
    let mut vp = MagicPredictor::new(VptConfig::table1());
    group("vpt").throughput(1024).bench("magic_predict_train_1k", || {
        for i in 0..1024u64 {
            let pc = 0x1000 + (i % 128) * 4;
            let v = i % 5;
            black_box(vp.predict(pc, Some(v)));
            vp.train(pc, v);
        }
    });
}

fn bench_rb() {
    let mut rb = ReuseBuffer::new(RbConfig::table1());
    group("reuse_buffer").throughput(1024).bench("insert_lookup_1k", || {
        for i in 0..1024u64 {
            let pc = 0x1000 + (i % 128) * 4;
            let a = i % 4;
            rb.insert(RbInsert {
                pc,
                op: vpir_isa::Op::Add,
                srcs: [
                    Some((vpir_isa::Reg::int(2), a)),
                    Some((vpir_isa::Reg::int(3), 7)),
                ],
                result: Some(a + 7),
                ..RbInsert::default()
            });
            let view = move |r: vpir_isa::Reg| {
                if r == vpir_isa::Reg::int(2) {
                    OperandView::settled(a)
                } else {
                    OperandView::settled(7)
                }
            };
            black_box(rb.lookup(pc, vpir_isa::Op::Add, &view, &[]));
        }
    });
}

fn bench_functional() {
    let prog = asm::assemble(
        "       li   r1, 1000
 loop:  andi r2, r1, 15
        add  r3, r3, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        halt",
    )
    .expect("assembles");
    group("functional_machine").throughput(4002).bench("interp_4k_insts", || {
        let mut m = Machine::new(&prog);
        m.run(10_000).expect("runs");
        black_box(m.icount)
    });
}

fn bench_pipeline() {
    let prog = Bench::Ijpeg.program(Scale::of(1));
    group("pipeline").bench("base_50k_cycles", || {
        let mut sim = Simulator::new(&prog, CoreConfig::table1());
        sim.run(RunLimits::cycles(50_000));
        black_box(sim.stats().committed)
    });
}

/// Steady-state simulation throughput in cycles/sec — the figure the
/// zero-allocation cycle loop (DESIGN.md §8) optimises. One entry per
/// mechanism so a regression in any scratch-buffer or pool path shows
/// up against the committed `BENCH_matrix.json` baseline.
fn bench_cycle_rate() {
    use vpir_core::{IrConfig, VpConfig};
    let prog = Bench::Ijpeg.program(Scale::of(1));
    let mut g = group("cycle_rate");
    let run = |cfg: CoreConfig| {
        let mut sim = Simulator::new(&prog, cfg);
        sim.run(RunLimits::cycles(100_000));
        sim.cycle()
    };
    g.bench_cycle_rate("base", || run(CoreConfig::table1()));
    g.bench_cycle_rate("vp_magic", || run(CoreConfig::with_vp(VpConfig::magic())));
    g.bench_cycle_rate("ir", || run(CoreConfig::with_ir(IrConfig::table1())));
}

fn main() {
    bench_cache();
    bench_gshare();
    bench_vpt();
    bench_rb();
    bench_functional();
    bench_pipeline();
    bench_cycle_rate();
}
