//! One group per paper figure: each target runs the reduced
//! simulations behind the figure's data series. Run `experiments <fig>`
//! for the full-scale series.
//!
//! Run with `cargo bench -p vpir-bench --features bench`.

use vpir_bench::matrix::run_one;
use vpir_bench::microbench::{black_box, group};
use vpir_core::{BranchResolution, CoreConfig, IrConfig, Validation, VpConfig};
use vpir_redundancy::{analyze, LimitConfig};
use vpir_workloads::{Bench, Scale};

const CYCLES: u64 = 60_000;

/// Figure 3: early vs late validation.
fn fig3_early_validation() {
    group("fig3").bench("early_vs_late", || {
        let early = run_one(
            Bench::Perl,
            Scale::of(1),
            CoreConfig::with_ir(IrConfig::table1()),
            CYCLES,
        );
        let late = run_one(
            Bench::Perl,
            Scale::of(1),
            CoreConfig::with_ir(IrConfig {
                validation: Validation::Late,
                ..IrConfig::table1()
            }),
            CYCLES,
        );
        black_box((early.ipc(), late.ipc()))
    });
}

/// Figure 4: branch resolution latency across configurations.
fn fig4_branch_resolution() {
    group("fig4").bench("resolution_latency", || {
        let sb = run_one(Bench::Go, Scale::of(1), CoreConfig::with_vp(VpConfig::magic()), CYCLES);
        let nsb = run_one(
            Bench::Go,
            Scale::of(1),
            CoreConfig::with_vp(VpConfig::magic().with_branches(BranchResolution::Nsb)),
            CYCLES,
        );
        let ir = run_one(Bench::Go, Scale::of(1), CoreConfig::with_ir(IrConfig::table1()), CYCLES);
        black_box((
            sb.branch_resolution_latency(),
            nsb.branch_resolution_latency(),
            ir.branch_resolution_latency(),
        ))
    });
}

/// Figure 5: resource contention.
fn fig5_contention() {
    group("fig5").bench("contention", || {
        let base = run_one(Bench::Compress, Scale::of(1), CoreConfig::table1(), CYCLES);
        let vp = run_one(Bench::Compress, Scale::of(1), CoreConfig::with_vp(VpConfig::magic()), CYCLES);
        let ir = run_one(Bench::Compress, Scale::of(1), CoreConfig::with_ir(IrConfig::table1()), CYCLES);
        black_box((base.contention(), vp.contention(), ir.contention()))
    });
}

/// Figure 6: speedups of VP_Magic configurations and IR.
fn fig6_speedup_magic() {
    group("fig6").bench("magic_speedups", || {
        let base = run_one(Bench::Ijpeg, Scale::of(1), CoreConfig::table1(), CYCLES);
        let vp = run_one(Bench::Ijpeg, Scale::of(1), CoreConfig::with_vp(VpConfig::magic()), CYCLES);
        black_box(vp.ipc() / base.ipc().max(1e-9))
    });
}

/// Figure 7: speedups of VP_LVP configurations.
fn fig7_speedup_lvp() {
    group("fig7").bench("lvp_speedups", || {
        let base = run_one(Bench::Gcc, Scale::of(1), CoreConfig::table1(), CYCLES);
        let vp = run_one(Bench::Gcc, Scale::of(1), CoreConfig::with_vp(VpConfig::lvp()), CYCLES);
        black_box(vp.ipc() / base.ipc().max(1e-9))
    });
}

/// Figures 8–10: the functional limit study.
fn fig8_taxonomy() {
    let prog = Bench::M88ksim.program(Scale::of(1));
    group("fig8").bench("classification", || {
        black_box(analyze(&prog, 30_000, LimitConfig::default()).classification_pct())
    });
}

fn fig9_readiness() {
    let prog = Bench::Vortex.program(Scale::of(1));
    group("fig9").bench("readiness", || {
        black_box(analyze(&prog, 30_000, LimitConfig::default()).readiness_pct())
    });
}

fn fig10_reusable() {
    let prog = Bench::Compress.program(Scale::of(1));
    group("fig10").bench("reusable_fraction", || {
        black_box(analyze(&prog, 30_000, LimitConfig::default()).reusable_pct())
    });
}

fn main() {
    fig3_early_validation();
    fig4_branch_resolution();
    fig5_contention();
    fig6_speedup_magic();
    fig7_speedup_lvp();
    fig8_taxonomy();
    fig9_readiness();
    fig10_reusable();
}
