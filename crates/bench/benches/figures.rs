//! One Criterion group per paper figure: each target runs the reduced
//! simulations behind the figure's data series. Run `experiments <fig>`
//! for the full-scale series.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use vpir_bench::matrix::run_one;
use vpir_core::{BranchResolution, CoreConfig, IrConfig, Validation, VpConfig};
use vpir_redundancy::{analyze, LimitConfig};
use vpir_workloads::{Bench, Scale};

const CYCLES: u64 = 60_000;

/// Figure 3: early vs late validation.
fn fig3_early_validation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("early_vs_late", |b| {
        b.iter(|| {
            let early = run_one(
                Bench::Perl,
                Scale::of(1),
                CoreConfig::with_ir(IrConfig::table1()),
                CYCLES,
            );
            let late = run_one(
                Bench::Perl,
                Scale::of(1),
                CoreConfig::with_ir(IrConfig {
                    validation: Validation::Late,
                    ..IrConfig::table1()
                }),
                CYCLES,
            );
            black_box((early.ipc(), late.ipc()))
        })
    });
    g.finish();
}

/// Figure 4: branch resolution latency across configurations.
fn fig4_branch_resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("resolution_latency", |b| {
        b.iter(|| {
            let sb = run_one(Bench::Go, Scale::of(1), CoreConfig::with_vp(VpConfig::magic()), CYCLES);
            let nsb = run_one(
                Bench::Go,
                Scale::of(1),
                CoreConfig::with_vp(VpConfig::magic().with_branches(BranchResolution::Nsb)),
                CYCLES,
            );
            let ir = run_one(Bench::Go, Scale::of(1), CoreConfig::with_ir(IrConfig::table1()), CYCLES);
            black_box((
                sb.branch_resolution_latency(),
                nsb.branch_resolution_latency(),
                ir.branch_resolution_latency(),
            ))
        })
    });
    g.finish();
}

/// Figure 5: resource contention.
fn fig5_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("contention", |b| {
        b.iter(|| {
            let base = run_one(Bench::Compress, Scale::of(1), CoreConfig::table1(), CYCLES);
            let vp = run_one(Bench::Compress, Scale::of(1), CoreConfig::with_vp(VpConfig::magic()), CYCLES);
            let ir = run_one(Bench::Compress, Scale::of(1), CoreConfig::with_ir(IrConfig::table1()), CYCLES);
            black_box((base.contention(), vp.contention(), ir.contention()))
        })
    });
    g.finish();
}

/// Figure 6: speedups of VP_Magic configurations and IR.
fn fig6_speedup_magic(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("magic_speedups", |b| {
        b.iter(|| {
            let base = run_one(Bench::Ijpeg, Scale::of(1), CoreConfig::table1(), CYCLES);
            let vp = run_one(Bench::Ijpeg, Scale::of(1), CoreConfig::with_vp(VpConfig::magic()), CYCLES);
            black_box(vp.ipc() / base.ipc().max(1e-9))
        })
    });
    g.finish();
}

/// Figure 7: speedups of VP_LVP configurations.
fn fig7_speedup_lvp(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("lvp_speedups", |b| {
        b.iter(|| {
            let base = run_one(Bench::Gcc, Scale::of(1), CoreConfig::table1(), CYCLES);
            let vp = run_one(Bench::Gcc, Scale::of(1), CoreConfig::with_vp(VpConfig::lvp()), CYCLES);
            black_box(vp.ipc() / base.ipc().max(1e-9))
        })
    });
    g.finish();
}

/// Figures 8–10: the functional limit study.
fn fig8_taxonomy(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("classification", |b| {
        let prog = Bench::M88ksim.program(Scale::of(1));
        b.iter(|| black_box(analyze(&prog, 30_000, LimitConfig::default()).classification_pct()))
    });
    g.finish();
}

fn fig9_readiness(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("readiness", |b| {
        let prog = Bench::Vortex.program(Scale::of(1));
        b.iter(|| black_box(analyze(&prog, 30_000, LimitConfig::default()).readiness_pct()))
    });
    g.finish();
}

fn fig10_reusable(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("reusable_fraction", |b| {
        let prog = Bench::Compress.program(Scale::of(1));
        b.iter(|| black_box(analyze(&prog, 30_000, LimitConfig::default()).reusable_pct()))
    });
    g.finish();
}

criterion_group!(
    figures,
    fig3_early_validation,
    fig4_branch_resolution,
    fig5_contention,
    fig6_speedup_magic,
    fig7_speedup_lvp,
    fig8_taxonomy,
    fig9_readiness,
    fig10_reusable
);
criterion_main!(figures);
