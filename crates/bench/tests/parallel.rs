//! The work-queue scheduler must be invisible in the results: a matrix
//! run with any `--jobs` value is bit-identical to the sequential runner,
//! because every job is an independent simulation and reassembly follows
//! the fixed job order, not completion order.

use vpir_bench::matrix::{run_bench, run_benches_jobs, MatrixConfig};
use vpir_workloads::{Bench, Scale};

/// Small enough for debug-mode CI, large enough that every configuration
/// commits work and the VP/IR structures see real traffic.
fn tiny() -> MatrixConfig {
    MatrixConfig {
        scale: Scale::of(1),
        max_cycles: 30_000,
        limit_insts: 6_000,
    }
}

#[test]
fn parallel_matrix_is_bit_identical_to_sequential() {
    let benches = [Bench::Go, Bench::Compress];
    let cfg = tiny();
    let seq = run_benches_jobs(&benches, cfg, 1);
    let par = run_benches_jobs(&benches, cfg, 4);
    assert_eq!(seq, par, "jobs=4 must reproduce jobs=1 bit for bit");
}

#[test]
fn scheduler_matches_the_plain_sequential_runner() {
    let cfg = tiny();
    let direct = run_bench(Bench::Go, cfg);
    // More workers than the 22 jobs one benchmark yields: idle threads
    // must exit cleanly without disturbing the result order.
    let scheduled = run_benches_jobs(&[Bench::Go], cfg, 64);
    assert_eq!(scheduled.runs.len(), 1);
    assert_eq!(direct, scheduled.runs[0]);
}
