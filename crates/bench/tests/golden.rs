//! Golden-state equivalence suite.
//!
//! Pins the simulator bit-identical to the final states recorded with
//! the pre-columnar (array-of-structs) machine: every cell of seven
//! workloads × {base, magic:ME-SB:vl1, ir_early, ir_late, limit} must
//! reproduce the exact FNV-1a-64 digest of its serialized run. A digest
//! mismatch means the structure-of-arrays refactor changed observable
//! semantics somewhere — a counter, a stat, a limit-study number — and
//! is a bug unless the change is intentional (then regenerate with
//! `cargo run -p vpir-bench --example golden_gen`).

use vpir_bench::golden::{golden_digest, GOLDEN_LABELS};
use vpir_jsonlite::parse_json;
use vpir_workloads::Bench;

const FIXTURE: &str = include_str!("fixtures/golden_digests.json");

/// Loads the recorded digests as (bench, config, digest) triples.
fn fixture_cells() -> Vec<(String, String, u64)> {
    let doc = parse_json(FIXTURE).expect("fixture parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("vpir-golden-v1"),
        "fixture schema"
    );
    let cells = doc
        .get("cells")
        .and_then(|v| v.as_arr())
        .expect("fixture has cells");
    cells
        .iter()
        .map(|c| {
            let bench = c.get("bench").and_then(|v| v.as_str()).expect("bench").to_string();
            let config = c.get("config").and_then(|v| v.as_str()).expect("config").to_string();
            let digest = c.get("digest").and_then(|v| v.as_str()).expect("digest");
            let digest = u64::from_str_radix(digest, 16).expect("hex digest");
            (bench, config, digest)
        })
        .collect()
}

#[test]
fn fixture_covers_every_cell_exactly_once() {
    let cells = fixture_cells();
    assert_eq!(cells.len(), Bench::ALL.len() * GOLDEN_LABELS.len());
    for bench in Bench::ALL {
        for label in GOLDEN_LABELS {
            let n = cells
                .iter()
                .filter(|(b, c, _)| b == bench.name() && c == label)
                .count();
            assert_eq!(n, 1, "cell {}/{} recorded once", bench.name(), label);
        }
    }
}

/// One test per workload so a mismatch names the benchmark and the
/// suite parallelizes across the test harness's threads.
macro_rules! golden_bench {
    ($test:ident, $bench:expr) => {
        #[test]
        fn $test() {
            let cells = fixture_cells();
            for label in GOLDEN_LABELS {
                let expected = cells
                    .iter()
                    .find(|(b, c, _)| b == $bench.name() && c == label)
                    .map(|(_, _, d)| *d)
                    .expect("cell recorded");
                let got = golden_digest($bench, label);
                assert_eq!(
                    got,
                    expected,
                    "golden digest mismatch for {}/{}: got {:016x}, recorded {:016x}",
                    $bench.name(),
                    label,
                    got,
                    expected
                );
            }
        }
    };
}

golden_bench!(golden_go, Bench::Go);
golden_bench!(golden_m88ksim, Bench::M88ksim);
golden_bench!(golden_ijpeg, Bench::Ijpeg);
golden_bench!(golden_perl, Bench::Perl);
golden_bench!(golden_vortex, Bench::Vortex);
golden_bench!(golden_gcc, Bench::Gcc);
golden_bench!(golden_compress, Bench::Compress);
