//! Fault isolation and resume, end to end: an injected fault degrades
//! exactly one cell to a structured failure row while every other cell
//! produces numbers; the failure dump round-trips the JSON validator;
//! and a `--resume` over the dump directory completes the matrix
//! bit-identical to an uninterrupted single-worker run.

use std::path::{Path, PathBuf};

use vpir_bench::matrix::{
    run_benches_jobs, run_matrix_outcome, build_programs, InjectFault, MatrixConfig,
    RunOptions,
};
use vpir_bench::perf::{validate_json, REQUIRED_KEYS};
use vpir_bench::state;
use vpir_workloads::{Bench, Scale};

/// Small enough for debug-mode CI, large enough that every configuration
/// commits work and the VP/IR structures see real traffic.
fn tiny() -> MatrixConfig {
    MatrixConfig {
        scale: Scale::of(1),
        max_cycles: 30_000,
        limit_insts: 6_000,
    }
}

/// A scratch directory inside the workspace `target/` tree, wiped at
/// the start of each test so reruns are clean.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/scratch")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn injected_wedge_degrades_one_cell_and_spares_the_rest() {
    let benches = [Bench::Go];
    let cfg = tiny();
    let progs = build_programs(&benches, cfg.scale);
    let dump = scratch("wedge-one-cell");
    let opts = RunOptions {
        dump_dir: Some(dump.clone()),
        resume: false,
        inject_fault: Some(InjectFault::parse("go/ir_late").expect("target")),
    };

    let outcome = run_matrix_outcome(&benches, &progs, cfg, 4, &opts);
    assert_eq!(outcome.total_jobs, 22);
    assert_eq!(outcome.completed_jobs, 21, "21 valid cells out of 22");
    assert_eq!(outcome.failures.len(), 1);
    assert!(outcome.matrix.is_none(), "a failed cell means no full matrix");

    let failure = &outcome.failures[0];
    assert_eq!(failure.bench, "go");
    assert_eq!(failure.config, "ir_late");
    assert_eq!(failure.kind, "livelock", "a wedged commit stage livelocks");

    // The failure dump exists, is well-formed JSON, and embeds the
    // simulator's diagnostic snapshot (ROB state, retired ring).
    let dump_path = failure.dump_path.as_ref().expect("dump enabled");
    let text = std::fs::read_to_string(dump_path).expect("failure dump written");
    validate_json(&text, &["schema", "job_index", "bench", "config", "kind", "error", "sim_error"])
        .expect("failure dump is valid JSON");
    assert!(text.contains(state::FAILURE_SCHEMA));
    assert!(text.contains("\"snapshot\""), "snapshot embedded: {text}");
    assert!(text.contains("\"last_retired\""), "retired ring embedded");

    // Every healthy cell left a reloadable job file; the failed cell
    // left none.
    for i in 0..22 {
        let loaded = state::load_job(&dump, i);
        if i == failure.job_index {
            assert!(loaded.is_none(), "failed cell must not persist a result");
        } else {
            assert!(loaded.is_some(), "cell {i} persisted");
        }
    }
}

#[test]
fn resume_completes_a_faulted_run_bit_identical_to_sequential() {
    let benches = [Bench::Go, Bench::Compress];
    let cfg = tiny();
    let progs = build_programs(&benches, cfg.scale);
    let dump = scratch("resume-bit-identical");

    // First pass: wedge one Compress cell; 43 of 44 cells persist.
    let faulted = RunOptions {
        dump_dir: Some(dump.clone()),
        resume: false,
        inject_fault: Some(InjectFault::parse("compress/magic:ME-SB:vl1").expect("target")),
    };
    let first = run_matrix_outcome(&benches, &progs, cfg, 4, &faulted);
    assert_eq!(first.failures.len(), 1);
    assert_eq!(first.completed_jobs, 43);

    // Second pass: resume without the fault. Only the one missing cell
    // re-executes; the 43 persisted cells reload exactly.
    let resume = RunOptions {
        dump_dir: Some(dump.clone()),
        resume: true,
        inject_fault: None,
    };
    let second = run_matrix_outcome(&benches, &progs, cfg, 4, &resume);
    assert!(second.fully_completed(), "resume fills the failed cell");
    assert_eq!(second.resumed_jobs, 43);
    assert_eq!(second.completed_jobs, 44);

    // The resumed matrix is bit-identical to an uninterrupted
    // single-worker run: persistence must be invisible in the results.
    let fresh = run_benches_jobs(&benches, cfg, 1);
    assert_eq!(
        second.matrix.expect("complete"),
        fresh,
        "resume must reproduce the uninterrupted jobs=1 matrix bit for bit"
    );
}

#[test]
fn an_injected_panic_is_contained_by_the_worker_boundary() {
    let benches = [Bench::Compress];
    let cfg = tiny();
    let progs = build_programs(&benches, cfg.scale);

    let opts = RunOptions {
        dump_dir: None,
        resume: false,
        inject_fault: Some(InjectFault::parse("compress/base:panic").expect("target")),
    };
    let outcome = run_matrix_outcome(&benches, &progs, cfg, 2, &opts);
    assert_eq!(outcome.failures.len(), 1, "exactly the targeted cell fails");
    let failure = &outcome.failures[0];
    assert_eq!(failure.kind, "panic");
    assert!(failure.error.contains("injected fault"), "{}", failure.error);
    assert!(failure.dump_path.is_none(), "no dump dir, no dump path");
    assert_eq!(outcome.completed_jobs, 21, "the other 21 cells still ran");
}

#[test]
fn sim_error_json_round_trips_the_validator() {
    // The core crate emits its diagnostic snapshots as std-only JSON;
    // the bench crate owns the JSON grammar checker. Tie them together:
    // a real watchdog error's serialized form must both pass the
    // grammar validator and parse into a value exposing the snapshot.
    use vpir_core::{CoreConfig, FaultInjection, RunLimits, Simulator};
    use vpir_isa::asm;

    let prog = asm::assemble(
        "       li   r1, 50000
         loop:  addi r2, r2, 1
                addi r1, r1, -1
                bne  r1, r0, loop
                halt",
    )
    .expect("assemble");
    let mut cfg = CoreConfig::table1();
    cfg.fault = FaultInjection::CommitStall { after_commits: 20 };
    cfg.watchdog_cycles = 500;
    let mut sim = Simulator::new(&prog, cfg);
    let err = sim
        .run_checked(RunLimits::unbounded())
        .expect_err("injected wedge");

    let json = err.to_json();
    validate_json(&json, &["kind", "cycle", "message", "snapshot"])
        .expect("SimError JSON is grammatical");
    let value = state::parse_json(&json).expect("parses as a value");
    let snapshot = value.get("snapshot").expect("snapshot present");
    assert!(snapshot.get("last_retired").is_some());
    assert_eq!(
        snapshot.get("committed").and_then(|v| v.as_u64()),
        Some(20)
    );
}

#[test]
fn v2_report_json_validates_and_carries_the_failure_row() {
    let cfg = tiny();
    let dump = scratch("v2-report");
    let opts = RunOptions {
        dump_dir: Some(dump),
        resume: false,
        inject_fault: Some(InjectFault::parse("go/limit").expect("target")),
    };
    let (outcome, perf) =
        vpir_bench::run_matrix_timed_opts(&[Bench::Go], cfg, 2, false, &opts);
    assert_eq!(outcome.failures.len(), 1);

    let json = perf.to_json();
    validate_json(&json, REQUIRED_KEYS).expect("v2 schema validates");
    assert!(json.contains("vpir-bench-matrix-v2"));
    assert!(json.contains("\"config\": \"limit\""));
    assert!(json.contains("\"completed_jobs\": 21"));
    assert!(perf.summary().contains("1 of 22 cells FAILED"));
}
