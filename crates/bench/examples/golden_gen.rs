//! Regenerates the golden-state digest fixture.
//!
//! Prints the fixture JSON to stdout; redirect it over
//! `crates/bench/tests/fixtures/golden_digests.json` only when a
//! semantic change to the simulator is intended.

fn main() {
    print!("{}", vpir_bench::golden::golden_fixture_json());
}
