//! Per-benchmark SB vs NSB branch-resolution-latency probe (figure 4
//! shape check), at the paper_claims test scale. Optional arg filters
//! to one benchmark.

use vpir_core::{BranchResolution, CoreConfig, Reexecution, RunLimits, Simulator, VpConfig, VpKind};
use vpir_workloads::{Bench, Scale};

fn main() {
    let filter = std::env::args().nth(1);
    for bench in Bench::ALL {
        if let Some(f) = &filter {
            if bench.name() != f {
                continue;
            }
        }
        let prog = bench.program(Scale::of(2));
        let mut lat = [0.0f64; 2];
        for (i, br) in [BranchResolution::Sb, BranchResolution::Nsb].into_iter().enumerate() {
            let cfg = CoreConfig::with_vp(VpConfig {
                kind: VpKind::Magic,
                reexecution: Reexecution::Me,
                branch_resolution: br,
                verify_latency: 0,
                ..VpConfig::magic()
            });
            let mut sim = Simulator::new(&prog, cfg);
            sim.run(RunLimits { max_cycles: 400_000, max_insts: 120_000 });
            lat[i] = sim.stats().branch_resolution_latency();
        }
        println!(
            "{:10} sb={:8.4} nsb={:8.4} holds={}",
            bench.name(),
            lat[0],
            lat[1],
            lat[1] >= lat[0] - 1e-9
        );
    }
}
