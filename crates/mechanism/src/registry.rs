//! The configuration-label registry: one vocabulary for every consumer.
//!
//! A *label* names one machine configuration — `base`, a full VP label
//! like `magic:ME-SB:vl1`, `ir_early` / `ir_late`, or a trace-reuse
//! label like `rtb:t8`. The bench matrix's job list, `--inject-fault`
//! target validation, `vpir serve`'s run-request validation, and the
//! CLI's machine parser all resolve labels through this module, so a
//! new mechanism tenant registered here is immediately reachable from
//! every entry point — and a label rejected here is rejected
//! everywhere, with the same vocabulary in the error message.

use vpir_isa::Program;

use crate::config::{
    BranchResolution, Enhancement, IrConfig, Reexecution, RtbConfig, Validation, VpConfig,
    VpKind,
};
use crate::{IrMech, RtbMech, SpeculationMechanism, VpMech};

/// Identifies one VP configuration in the sweep.
pub type VpKey = (VpKind, Reexecution, BranchResolution, u32);

/// All sixteen VP configurations the paper sweeps.
pub fn vp_keys() -> Vec<VpKey> {
    let mut keys = Vec::new();
    for kind in [VpKind::Magic, VpKind::Lvp] {
        for re in [Reexecution::Me, Reexecution::Nme] {
            for br in [BranchResolution::Sb, BranchResolution::Nsb] {
                for vl in [0u32, 1] {
                    keys.push((kind, re, br, vl));
                }
            }
        }
    }
    keys
}

/// A full label like `magic:ME-SB:vl1` for a VP key.
///
/// Every component is included — predictor kind, re-execution policy,
/// branch resolution, and verification latency — so all sixteen keys
/// render distinctly (the seed's `ME-SB`-style label collapsed four
/// configurations onto each label and collided in reports).
pub fn vp_label(key: VpKey) -> String {
    let (kind, re, br, vl) = key;
    format!(
        "{}:{}-{}:vl{}",
        match kind {
            VpKind::Magic => "magic",
            VpKind::Lvp => "lvp",
            VpKind::Stride => "stride",
        },
        match re {
            Reexecution::Me => "ME",
            Reexecution::Nme => "NME",
        },
        match br {
            BranchResolution::Sb => "SB",
            BranchResolution::Nsb => "NSB",
        },
        vl
    )
}

/// The VP configuration behind a key: the key's four axes over the
/// `magic()` defaults.
pub fn vp_config(key: VpKey) -> VpConfig {
    let (kind, re, br, vl) = key;
    VpConfig {
        kind,
        reexecution: re,
        branch_resolution: br,
        verify_latency: vl,
        ..VpConfig::magic()
    }
}

/// Parses a full VP label of the form `kind:RE-BR:vlN` (the inverse of
/// [`vp_label`]).
pub fn parse_vp_label(label: &str) -> Option<VpKey> {
    let (kind, rest) = label.split_once(':')?;
    let (policies, vl) = rest.split_once(':')?;
    let (re, br) = policies.split_once('-')?;
    let kind = match kind {
        "magic" => VpKind::Magic,
        "lvp" => VpKind::Lvp,
        "stride" => VpKind::Stride,
        _ => return None,
    };
    let re = match re {
        "ME" => Reexecution::Me,
        "NME" => Reexecution::Nme,
        _ => return None,
    };
    let br = match br {
        "SB" => BranchResolution::Sb,
        "NSB" => BranchResolution::Nsb,
        _ => return None,
    };
    let vl: u32 = vl.strip_prefix("vl")?.parse().ok()?;
    Some((kind, re, br, vl))
}

/// The registered trace-reuse configurations, in label order
/// (`rtb:t4`, `rtb:t8`).
pub fn rtb_configs() -> [RtbConfig; 2] {
    [RtbConfig::t4(), RtbConfig::t8()]
}

/// Parses an `rtb:tN` label into its configuration (the inverse of
/// [`RtbConfig::label`], over the registered configurations only).
pub fn parse_rtb_label(label: &str) -> Option<RtbConfig> {
    rtb_configs().into_iter().find(|c| c.label() == label)
}

/// Every *machine* configuration label, in matrix job order: `base`,
/// the sixteen VP labels, `ir_early`, `ir_late`, then the trace-reuse
/// labels. (The bench matrix appends its functional `limit` study,
/// which has no machine configuration, after these.)
pub fn machine_labels() -> Vec<String> {
    let mut labels = vec!["base".to_string()];
    labels.extend(vp_keys().into_iter().map(vp_label));
    labels.extend(["ir_early".to_string(), "ir_late".to_string()]);
    labels.extend(rtb_configs().iter().map(|c| c.label()));
    labels
}

/// The enhancement behind a machine label: the inverse of the label
/// vocabulary for every cycle-level configuration. Unknown labels (and
/// the bench-only `limit` study) return `None`.
pub fn enhancement_for_label(label: &str) -> Option<Enhancement> {
    match label {
        "base" => Some(Enhancement::None),
        "ir_early" => Some(Enhancement::Ir(IrConfig::table1())),
        "ir_late" => Some(Enhancement::Ir(IrConfig {
            validation: Validation::Late,
            ..IrConfig::table1()
        })),
        _ => parse_rtb_label(label)
            .map(Enhancement::Rtb)
            .or_else(|| parse_vp_label(label).map(|key| Enhancement::Vp(vp_config(key)))),
    }
}

/// Instantiates the mechanism tenants for an enhancement, in the order
/// the cycle loop must drive them. In the hybrid the reuse test runs
/// first and value prediction covers only the RB misses, so IR precedes
/// VP. The RTB tenant joins the static loop forest of `program` for its
/// per-loop-depth attribution.
pub fn build_mechanisms(
    enhancement: &Enhancement,
    program: &Program,
) -> Vec<Box<dyn SpeculationMechanism + Send>> {
    match enhancement {
        Enhancement::None => Vec::new(),
        Enhancement::Vp(vp) => vec![Box::new(VpMech::new(vp))],
        Enhancement::Ir(ir) => vec![Box::new(IrMech::new(ir))],
        Enhancement::Hybrid(vp, ir) => {
            vec![Box::new(IrMech::new(ir)), Box::new(VpMech::new(vp))]
        }
        Enhancement::Rtb(rtb) => vec![Box::new(RtbMech::new(*rtb, program))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vp_key_space_is_complete_and_labels_round_trip() {
        let keys = vp_keys();
        assert_eq!(keys.len(), 16);
        for &key in &keys {
            assert_eq!(parse_vp_label(&vp_label(key)), Some(key));
        }
        let labels: std::collections::BTreeSet<String> =
            keys.iter().map(|&k| vp_label(k)).collect();
        assert_eq!(labels.len(), 16, "labels alone must be distinct");
    }

    #[test]
    fn machine_labels_resolve_and_unknowns_do_not() {
        for label in machine_labels() {
            assert!(
                enhancement_for_label(&label).is_some(),
                "machine label must resolve: {label}"
            );
        }
        for bad in ["", "limit", "basex", "magic:ME-SB", "magic:XX-SB:vl1", "rtb:t5", "rtb"] {
            assert!(enhancement_for_label(bad).is_none(), "accepted `{bad}`");
        }
    }

    #[test]
    fn rtb_labels_sit_between_ir_and_nothing() {
        let labels = machine_labels();
        assert_eq!(labels.len(), 21, "base + 16 VP + 2 IR + 2 RTB");
        let ir_late = labels.iter().position(|l| l == "ir_late").expect("ir_late");
        assert_eq!(labels.get(ir_late + 1).map(String::as_str), Some("rtb:t4"));
        assert_eq!(labels.get(ir_late + 2).map(String::as_str), Some("rtb:t8"));
        assert_eq!(
            enhancement_for_label("rtb:t8"),
            Some(Enhancement::Rtb(RtbConfig::t8()))
        );
    }

    #[test]
    fn hybrid_builds_reuse_before_prediction() {
        let prog = vpir_isa::asm::assemble("halt").expect("assembles");
        let mechs = build_mechanisms(
            &Enhancement::Hybrid(VpConfig::magic(), IrConfig::table1()),
            &prog,
        );
        let names: Vec<&str> = mechs.iter().map(|m| m.name()).collect();
        assert_eq!(names, ["ir", "vp"]);
    }
}
