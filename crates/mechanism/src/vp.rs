//! The value-prediction tenant.
//!
//! A direct port of the pipeline's hard-wired `dispatch_vp` /
//! commit-train logic behind the [`SpeculationMechanism`] trait. The
//! behaviour is bit-identical to the pre-trait implementation (pinned
//! by the golden-digest suite): the same predictability gate, the same
//! overwrite-even-with-`None` result prediction, and the same
//! address-prediction gate that observes the result prediction made
//! instants earlier in this very call.

use vpir_isa::OpClass;
use vpir_predict::{
    LastValuePredictor, MagicPredictor, StridePredictor, ValuePredictor, VptConfig, VptStats,
};

use crate::config::{VpConfig, VpKind};
use crate::{CommitEffects, CommitEvent, DispatchAction, DispatchQuery, MechExport,
    SpeculationMechanism};

/// One configured value predictor (static dispatch over the kinds).
#[derive(Debug, Clone)]
enum Vp {
    Magic(MagicPredictor),
    Lvp(LastValuePredictor),
    Stride(StridePredictor),
}

impl Vp {
    fn new(kind: VpKind, vpt: VptConfig) -> Vp {
        match kind {
            VpKind::Magic => Vp::Magic(MagicPredictor::new(vpt)),
            VpKind::Lvp => Vp::Lvp(LastValuePredictor::new(vpt)),
            VpKind::Stride => Vp::Stride(StridePredictor::new(vpt)),
        }
    }

    fn predict(&mut self, pc: u64, oracle: Option<u64>) -> Option<u64> {
        match self {
            Vp::Magic(p) => p.predict(pc, oracle),
            Vp::Lvp(p) => p.predict(pc, oracle),
            Vp::Stride(p) => p.predict(pc, oracle),
        }
    }

    fn train(&mut self, pc: u64, actual: u64) {
        match self {
            Vp::Magic(p) => p.train(pc, actual),
            Vp::Lvp(p) => p.train(pc, actual),
            Vp::Stride(p) => p.train(pc, actual),
        }
    }

    fn stats(&self) -> VptStats {
        match self {
            Vp::Magic(p) => p.stats(),
            Vp::Lvp(p) => p.stats(),
            Vp::Stride(p) => p.stats(),
        }
    }
}

/// Value prediction as a pluggable mechanism: a result VPT and an
/// optional address VPT.
#[derive(Debug, Clone)]
pub struct VpMech {
    result: Vp,
    addr: Option<Vp>,
}

impl VpMech {
    /// Builds the predictors described by `vp`.
    pub fn new(vp: &VpConfig) -> VpMech {
        VpMech {
            result: Vp::new(vp.kind, vp.vpt),
            addr: vp.predict_addresses.then(|| Vp::new(vp.kind, vp.vpt)),
        }
    }
}

impl SpeculationMechanism for VpMech {
    fn name(&self) -> &'static str {
        "vp"
    }

    fn on_dispatch(&mut self, q: &DispatchQuery, act: &mut DispatchAction) {
        // In the hybrid, reuse runs first and prediction covers only
        // the RB misses.
        if q.reused {
            return;
        }
        // Results: every register-writing, non-control instruction
        // (including loads — load value prediction).
        let predictable = q.inst.dst.is_some()
            && q.out.result.is_some()
            && !matches!(
                q.inst.op.class(),
                OpClass::Jump | OpClass::JumpReg | OpClass::Misc
            );
        if predictable {
            act.predicted = Some(self.result.predict(q.pc, q.out.result));
        }
        // Addresses: loads whose result was not predicted (by the line
        // above, or by a standing prediction) and whose address did not
        // already come from the reuse buffer.
        let predicted_now = match act.predicted {
            Some(p) => p,
            None => q.predicted,
        };
        if q.is_load && predicted_now.is_none() && !q.addr_reused {
            if let Some(vp) = self.addr.as_mut() {
                act.addr_predicted = Some(vp.predict(q.pc, q.out.addr));
            }
        }
    }

    fn on_commit(&mut self, ev: &CommitEvent, _fx: &mut CommitEffects) {
        if ev.inst.dst.is_some() && ev.inst.op.class() != OpClass::Jump {
            if let Some(actual) = ev.result {
                self.result.train(ev.pc, actual);
            }
        }
        if let Some(mem) = &ev.mem {
            if mem.is_load {
                if let Some(actual) = ev.addr {
                    if let Some(vp) = self.addr.as_mut() {
                        vp.train(ev.pc, actual);
                    }
                }
            }
        }
    }

    fn export(&self, out: &mut MechExport) {
        out.vpt_result = Some(self.result.stats());
        if let Some(vp) = &self.addr {
            out.vpt_addr = Some(vp.stats());
        }
    }
}
