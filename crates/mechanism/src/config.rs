//! Per-mechanism configuration types.
//!
//! These used to live in `vpir-core`'s config module; they moved here
//! when the mechanisms themselves moved behind the
//! [`SpeculationMechanism`](crate::SpeculationMechanism) trait, so that
//! a mechanism and its configuration are declared in the same crate.
//! `vpir-core` re-exports every name, so downstream `use
//! vpir_core::{VpConfig, ...}` imports keep working.

use vpir_predict::VptConfig;
use vpir_reuse::RbConfig;

/// Which value predictor drives the VPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VpKind {
    /// `VP_Magic`: last-*n*-unique-values with oracle selection.
    Magic,
    /// `VP_LVP`: last-value predictor.
    Lvp,
    /// `VP_Stride`: two-delta stride predictor (captures the paper's
    /// *derivable* results, which neither LVP nor Magic track).
    Stride,
}

/// How branches with value-speculative operands are resolved
/// (Section 4.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchResolution {
    /// *Speculative branch resolution*: resolve as soon as the branch
    /// executes, even on value-speculative operands (may cause spurious
    /// squashes).
    Sb,
    /// *Non-speculative branch resolution*: resolve only once the
    /// operands are known non-value-speculative (delays resolution by the
    /// verification latency).
    Nsb,
}

/// How often an instruction may re-execute after value mispredictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reexecution {
    /// *Multiple executions*: re-execute every time a new input value
    /// arrives.
    Me,
    /// *No multiple executions*: re-execute once, after the correct
    /// operands are known.
    Nme,
}

/// When IR validates results (Figure 3's experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Validation {
    /// At decode, the real IR pipeline: reused instructions skip execute,
    /// reused branches resolve immediately.
    Early,
    /// At execute: reuse behaves like an always-correct value prediction
    /// (the instruction still executes and resolves branches there).
    Late,
}

/// Value-prediction configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VpConfig {
    /// The predictor.
    pub kind: VpKind,
    /// SB or NSB branch handling.
    pub branch_resolution: BranchResolution,
    /// ME or NME re-execution policy.
    pub reexecution: Reexecution,
    /// VP-verification latency in cycles (the paper uses 0 and 1).
    pub verify_latency: u32,
    /// Geometry of the result VPT (and of the address VPT).
    pub vpt: VptConfig,
    /// Whether load effective addresses are also predicted.
    pub predict_addresses: bool,
}

impl VpConfig {
    /// `VP_Magic`, ME-SB, 0-cycle verification — the paper's headline
    /// configuration.
    pub fn magic() -> VpConfig {
        VpConfig {
            kind: VpKind::Magic,
            branch_resolution: BranchResolution::Sb,
            reexecution: Reexecution::Me,
            verify_latency: 0,
            vpt: VptConfig::table1(),
            predict_addresses: true,
        }
    }

    /// `VP_LVP`, ME-SB, 0-cycle verification.
    pub fn lvp() -> VpConfig {
        VpConfig {
            kind: VpKind::Lvp,
            ..VpConfig::magic()
        }
    }

    /// Returns `self` with the given branch-resolution policy.
    pub fn with_branches(mut self, br: BranchResolution) -> VpConfig {
        self.branch_resolution = br;
        self
    }

    /// Returns `self` with the given re-execution policy.
    pub fn with_reexecution(mut self, re: Reexecution) -> VpConfig {
        self.reexecution = re;
        self
    }

    /// Returns `self` with the given verification latency.
    pub fn with_verify_latency(mut self, cycles: u32) -> VpConfig {
        self.verify_latency = cycles;
        self
    }

    /// A short label like `"ME-SB"` for reports.
    pub fn label(&self) -> String {
        format!(
            "{}-{}",
            match self.reexecution {
                Reexecution::Me => "ME",
                Reexecution::Nme => "NME",
            },
            match self.branch_resolution {
                BranchResolution::Sb => "SB",
                BranchResolution::Nsb => "NSB",
            }
        )
    }
}

/// Instruction-reuse configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrConfig {
    /// Reuse-buffer geometry and scheme.
    pub rb: RbConfig,
    /// Early (real IR) or late (Figure 3) validation.
    pub validation: Validation,
}

impl IrConfig {
    /// The paper's IR configuration: 4K-entry 4-way RB, augmented
    /// `S_{n+d}`, early validation.
    pub fn table1() -> IrConfig {
        IrConfig {
            rb: RbConfig::table1(),
            validation: Validation::Early,
        }
    }
}

/// Trace-reuse configuration (the RTB — reuse trace buffer — after
/// Coppieters et al.).
///
/// Traces are contiguous runs of dynamic instructions captured along
/// the commit path: straight-line arithmetic/memory instructions,
/// optionally terminated by one conditional branch. A dispatch-time hit
/// whose live-in registers and external load values match the current
/// speculative state replays the whole trace atomically — every member
/// enters the ROB in the same cycle with its recorded result, bypassing
/// the decode-width limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtbConfig {
    /// Maximum members per trace (the capture window; the terminal
    /// branch counts as a member).
    pub max_len: usize,
    /// Minimum members for a capture to be worth installing.
    pub min_len: usize,
    /// RTB sets (indexed by head PC).
    pub sets: usize,
    /// RTB associativity.
    pub ways: usize,
}

impl RtbConfig {
    /// Four-member traces over a 64-set, 4-way RTB (`rtb:t4`).
    pub fn t4() -> RtbConfig {
        RtbConfig {
            max_len: 4,
            min_len: 2,
            sets: 64,
            ways: 4,
        }
    }

    /// Eight-member traces over the same geometry (`rtb:t8`).
    pub fn t8() -> RtbConfig {
        RtbConfig {
            max_len: 8,
            ..RtbConfig::t4()
        }
    }

    /// The registry label for this configuration, e.g. `"rtb:t8"`.
    pub fn label(&self) -> String {
        format!("rtb:t{}", self.max_len)
    }
}

/// The redundancy mechanism under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enhancement {
    /// The base superscalar — no VP, no IR.
    None,
    /// Value prediction.
    Vp(VpConfig),
    /// Instruction reuse.
    Ir(IrConfig),
    /// The hybrid the paper's conclusion calls for: the non-speculative
    /// reuse test runs first; instructions that miss in the RB fall back
    /// to value prediction. Reused results need no verification; only
    /// the predicted remainder is value-speculative.
    Hybrid(VpConfig, IrConfig),
    /// Trace reuse: atomic replay of multi-instruction traces from the
    /// RTB.
    Rtb(RtbConfig),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtb_labels_follow_max_len() {
        assert_eq!(RtbConfig::t4().label(), "rtb:t4");
        assert_eq!(RtbConfig::t8().label(), "rtb:t8");
        assert_eq!(RtbConfig::t4().min_len, 2);
        assert!(RtbConfig::t8().max_len > RtbConfig::t4().max_len);
    }
}
