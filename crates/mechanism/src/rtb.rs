//! Trace reuse: the RTB (reuse trace buffer) tenant.
//!
//! After Coppieters et al. ("Decanting the Contribution of Instruction
//! Types and Loop Structures in the Reuse of Traces"): instead of
//! reusing one instruction at a time, capture contiguous *traces* of
//! dynamic instructions and replay a whole trace atomically on a
//! dispatch-time hit.
//!
//! **Capture** rides the dispatch stream (speculative path included —
//! squashes discard affected captures). A trace is a straight-line run
//! of arithmetic / memory instructions, optionally terminated by one
//! conditional branch; direct/indirect jumps and `Misc` ops break the
//! run. A finalized capture waits in a pending queue until its last
//! member *commits* — a capture with a squashed member is discarded
//! (the wrong-path-invalidation guarantee, proven at trace granularity
//! by the squash characterization test). At install time the trace's
//! interface is computed: *live-in* registers (sources not produced by
//! an earlier member) with their captured values, and *external loads*
//! (member loads not fully covered by an earlier in-trace store) with
//! their captured `(address, width, value)`. A member load partially
//! overlapped by an in-trace store is unclassifiable; the whole capture
//! is dropped.
//!
//! **Replay** runs at the top of the dispatch stage: on an RTB hit for
//! the next fetch PC whose live-ins match the speculative register
//! file, whose external loads match speculative memory, and whose
//! members fit the free ROB/LSQ/checkpoint capacity, the core
//! dispatches every member this cycle — bypassing the decode-width
//! limit, which is the point of trace-level reuse. Each member is still
//! executed functionally at dispatch; a guard compares the recorded
//! outcome against the recomputation and aborts the replay on any
//! disagreement (the member then proceeds as a normal dispatch), so
//! correctness never rests on the recording. A replayed terminal
//! branch resolves at decode with its recorded outcome — which the
//! guard has just proven equal to the functional outcome, so a trace
//! replay can never inject a misprediction.
//!
//! **Attribution** happens at commit: every committed trace member is
//! attributed to its instruction class and to the natural-loop nesting
//! depth of its PC (joined from `vpir-isa-analyze`'s loop forest),
//! feeding the per-type / per-loop-structure decanting tables in
//! `SimStats::report()`.

use std::collections::VecDeque;

use vpir_isa::{LoadSource, MemWidth, OpClass, Program, Reg, INST_BYTES, TEXT_BASE};

use crate::config::RtbConfig;
use crate::{
    class_index, CommitEffects, CommitEvent, DispatchAction, DispatchQuery, MechExport,
    MemberPlan, ReplayQuery, SpeculationMechanism,
};
use vpir_stats::RtbStats;

/// One member of a pending (not yet installed) capture, with the
/// provenance needed to compute the trace interface at install time.
#[derive(Debug, Clone, Copy, Default)]
struct PendingMember {
    pc: u64,
    class: Option<OpClass>,
    dst: Option<Reg>,
    srcs: [Option<(Reg, u64)>; 2],
    result: Option<u64>,
    mem: Option<(u64, MemWidth)>,
    taken: bool,
    target: u64,
}

/// A finalized capture waiting for its last member to commit.
#[derive(Debug, Clone, Default)]
struct Pending {
    first_seq: u64,
    last_seq: u64,
    members: Vec<PendingMember>,
}

/// One member of an installed trace (the replay-time view).
#[derive(Debug, Clone, Copy)]
struct MemberRec {
    pc: u64,
    class: Option<OpClass>,
    result: Option<u64>,
    addr: Option<u64>,
    taken: bool,
    target: u64,
}

/// One RTB way. Invalid entries keep their member/interface vectors so
/// eviction reuses the capacity (rule R7: no `Vec<Option<..>>`).
#[derive(Debug, Clone, Default)]
struct TraceEntry {
    valid: bool,
    head_pc: u64,
    last_used: u64,
    members: Vec<MemberRec>,
    live_ins: Vec<(Reg, u64)>,
    ext_loads: Vec<(u64, MemWidth, u64)>,
}

/// The in-progress capture window.
#[derive(Debug, Clone, Default)]
struct TraceBuilder {
    members: Vec<PendingMember>,
    first_seq: u64,
    next_pc: u64,
}

/// Cursor of a granted replay, consumed by the member dispatches that
/// follow within the same dispatch stage.
#[derive(Debug, Clone, Copy)]
struct ReplayState {
    entry_idx: usize,
    cursor: usize,
}

/// Trace reuse as a pluggable mechanism.
#[derive(Debug, Clone)]
pub struct RtbMech {
    config: RtbConfig,
    /// Natural-loop nesting depth per static instruction, indexed by
    /// `(pc - TEXT_BASE) / INST_BYTES` (dense — no hashing, R1).
    depths: Vec<u32>,
    /// `sets * ways` entries, set-major.
    table: Vec<TraceEntry>,
    /// Deterministic LRU clock (bumped per install and per replay).
    stamp: u64,
    builder: TraceBuilder,
    pending: VecDeque<Pending>,
    pending_pool: Vec<Pending>,
    replay: Option<ReplayState>,
    stats: RtbStats,
}

impl RtbMech {
    /// Builds an RTB for `program`, joining the static loop forest for
    /// per-depth attribution.
    pub fn new(config: RtbConfig, program: &Program) -> RtbMech {
        let analysis = vpir_isa_analyze::analyze_program(program, "rtb");
        let mut depths = Vec::new();
        for summary in &analysis.insts {
            let idx = (summary.addr.wrapping_sub(TEXT_BASE) / INST_BYTES) as usize;
            if idx >= depths.len() {
                depths.resize(idx + 1, 0);
            }
            if let Some(d) = depths.get_mut(idx) {
                *d = summary.loop_depth;
            }
        }
        let entries = config.sets.max(1) * config.ways.max(1);
        RtbMech {
            config,
            depths,
            table: vec![TraceEntry::default(); entries],
            stamp: 0,
            builder: TraceBuilder::default(),
            pending: VecDeque::new(),
            pending_pool: Vec::new(),
            replay: None,
            stats: RtbStats::default(),
        }
    }

    fn depth_of(&self, pc: u64) -> u32 {
        let idx = (pc.wrapping_sub(TEXT_BASE) / INST_BYTES) as usize;
        self.depths.get(idx).copied().unwrap_or(0)
    }

    fn set_base(&self, head_pc: u64) -> usize {
        let sets = self.config.sets.max(1);
        ((head_pc / INST_BYTES) as usize % sets) * self.config.ways.max(1)
    }

    fn builder_reset(&mut self) {
        self.builder.members.clear();
        self.builder.first_seq = 0;
        self.builder.next_pc = 0;
    }

    fn push_member(&mut self, q: &DispatchQuery, taken: bool, target: u64) {
        if self.builder.members.is_empty() {
            self.builder.first_seq = q.seq;
        }
        let class = q.inst.op.class();
        let is_mem = matches!(class, OpClass::Load | OpClass::Store);
        let [sv0, sv1] = q.src_values;
        let srcs = [q.inst.src1.zip(sv0), q.inst.src2.zip(sv1)];
        self.builder.members.push(PendingMember {
            pc: q.pc,
            class: Some(class),
            dst: q.inst.dst,
            srcs,
            result: q.out.result,
            mem: if is_mem {
                q.out.addr.zip(q.inst.op.mem_width())
            } else {
                None
            },
            taken,
            target,
        });
    }

    fn finalize_pending(&mut self, last_seq: u64) {
        let mut p = self.pending_pool.pop().unwrap_or_default();
        p.members.clear();
        std::mem::swap(&mut p.members, &mut self.builder.members);
        p.first_seq = self.builder.first_seq;
        p.last_seq = last_seq;
        self.pending.push_back(p);
        self.stats.captured += 1;
        self.builder_reset();
    }

    /// Feeds one normally-dispatching instruction into the capture
    /// window.
    fn capture(&mut self, q: &DispatchQuery) {
        let class = q.inst.op.class();
        match class {
            OpClass::Jump | OpClass::JumpReg | OpClass::Misc => {
                self.builder_reset();
                return;
            }
            _ => {}
        }
        if !self.builder.members.is_empty() && q.pc != self.builder.next_pc {
            // The stream was redirected under us; start over.
            self.builder_reset();
        }
        if class == OpClass::Branch {
            // A branch may only terminate a trace, never head one.
            let long_enough = self.builder.members.len() + 1 >= self.config.min_len;
            let (taken, target) = match q.out.control {
                Some(c) => (c.taken, c.target),
                None => {
                    self.builder_reset();
                    return;
                }
            };
            if long_enough && self.builder.members.len() < self.config.max_len {
                self.push_member(q, taken, target);
                self.finalize_pending(q.seq);
            } else {
                self.builder_reset();
            }
            return;
        }
        // A memory member without a functional address cannot be
        // classified at install time; give up on this window.
        if matches!(class, OpClass::Load | OpClass::Store) && q.out.addr.is_none() {
            self.builder_reset();
            return;
        }
        self.push_member(q, false, 0);
        self.builder.next_pc = q.pc.wrapping_add(INST_BYTES);
        if self.builder.members.len() >= self.config.max_len {
            self.finalize_pending(q.seq);
        }
    }

    fn recycle(&mut self, mut p: Pending) {
        p.members.clear();
        self.pending_pool.push(p);
    }

    /// Promotes a fully-committed pending capture into the RTB.
    fn install(&mut self, p: Pending) {
        let Some(head) = p.members.first().copied() else {
            self.recycle(p);
            return;
        };
        // Compute the trace interface: live-in registers and external
        // loads. `written` / `seen` are bitsets over register indices
        // (NUM_REGS = 65 ≤ 128).
        let mut live_ins: Vec<(Reg, u64)> = Vec::new();
        let mut ext_loads: Vec<(u64, MemWidth, u64)> = Vec::new();
        let mut written = 0u128;
        let mut seen = 0u128;
        let mut drop_trace = false;
        for (i, m) in p.members.iter().enumerate() {
            for src in m.srcs.iter().flatten() {
                let (reg, val) = *src;
                if reg.is_zero() {
                    continue;
                }
                let bit = 1u128 << reg.index();
                if written & bit == 0 && seen & bit == 0 {
                    seen |= bit;
                    live_ins.push((reg, val));
                }
            }
            if let Some(dst) = m.dst {
                if !dst.is_zero() {
                    written |= 1u128 << dst.index();
                }
            }
            if m.class == Some(OpClass::Load) {
                let Some((laddr, lwidth)) = m.mem else {
                    drop_trace = true;
                    break;
                };
                let lend = laddr + lwidth.bytes();
                // The youngest earlier in-trace store overlapping this
                // load decides: full cover → internal (the functional
                // replay recomputes it), partial → unclassifiable.
                let mut covered: Option<bool> = None;
                for earlier in p.members.iter().take(i) {
                    if earlier.class != Some(OpClass::Store) {
                        continue;
                    }
                    let Some((saddr, swidth)) = earlier.mem else { continue };
                    let send = saddr + swidth.bytes();
                    if saddr < lend && laddr < send {
                        covered = Some(saddr <= laddr && send >= lend);
                    }
                }
                match covered {
                    None => {
                        let Some(v) = m.result else {
                            drop_trace = true;
                            break;
                        };
                        ext_loads.push((laddr, lwidth, v));
                    }
                    Some(true) => {}
                    Some(false) => {
                        drop_trace = true;
                        break;
                    }
                }
            }
        }
        if drop_trace {
            self.stats.dropped += 1;
            self.recycle(p);
            return;
        }

        // Way choice: an existing entry for this head PC is refreshed;
        // otherwise an invalid way, otherwise deterministic LRU.
        let base = self.set_base(head.pc);
        let ways = self.config.ways.max(1);
        let mut victim = base;
        let mut victim_used = u64::MAX;
        let mut refresh = false;
        for w in 0..ways {
            let Some(e) = self.table.get(base + w) else { continue };
            if e.valid && e.head_pc == head.pc {
                victim = base + w;
                refresh = true;
                break;
            }
            let used = if e.valid { e.last_used } else { 0 };
            if used < victim_used {
                victim_used = used;
                victim = base + w;
            }
        }
        let _ = refresh;
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(e) = self.table.get_mut(victim) {
            e.valid = true;
            e.head_pc = head.pc;
            e.last_used = stamp;
            e.members.clear();
            e.members.extend(p.members.iter().map(|m| MemberRec {
                pc: m.pc,
                class: m.class,
                result: m.result,
                addr: m.mem.map(|(a, _)| a),
                taken: m.taken,
                target: m.target,
            }));
            e.live_ins.clear();
            e.live_ins.extend_from_slice(&live_ins);
            e.ext_loads.clear();
            e.ext_loads.extend_from_slice(&ext_loads);
            self.stats.installed += 1;
        }
        self.recycle(p);
    }

    /// Consumes one replay-cursor member if `q` matches it. Returns
    /// true when `q` was handled (either granted or just aborted) so
    /// capture does not observe replayed members.
    fn replay_match(&mut self, q: &DispatchQuery, act: &mut DispatchAction) -> bool {
        let Some(rs) = self.replay else { return false };
        let member = self.table.get(rs.entry_idx).and_then(|e| {
            if e.valid {
                e.members.get(rs.cursor).copied().map(|m| (m, e.members.len()))
            } else {
                None
            }
        });
        let Some((m, len)) = member else {
            self.replay = None;
            return false;
        };
        if m.pc != q.pc {
            // The stream was redirected between the grant and this
            // dispatch; the plan no longer applies.
            self.replay = None;
            self.stats.aborted += 1;
            return false;
        }
        let ok = if m.class == Some(OpClass::Branch) {
            q.out.control.map(|c| (c.taken, c.target)) == Some((m.taken, m.target))
        } else {
            m.result == q.out.result && m.addr == q.out.addr
        };
        if !ok {
            // Recorded outcome disagrees with the functional
            // recomputation: abort; this member (and the rest of the
            // plan) dispatches normally.
            self.replay = None;
            self.stats.aborted += 1;
            return true;
        }
        act.trace_member = true;
        self.replay = if rs.cursor + 1 < len {
            Some(ReplayState {
                entry_idx: rs.entry_idx,
                cursor: rs.cursor + 1,
            })
        } else {
            None
        };
        true
    }
}

impl SpeculationMechanism for RtbMech {
    fn name(&self) -> &'static str {
        "rtb"
    }

    fn has_replay(&self) -> bool {
        true
    }

    fn on_dispatch(&mut self, q: &DispatchQuery, act: &mut DispatchAction) {
        if self.replay_match(q, act) {
            return;
        }
        self.capture(q);
    }

    fn on_commit(&mut self, ev: &CommitEvent, _fx: &mut CommitEffects) {
        // Pendings are queued in capture order; every member of a
        // pending whose last member has committed must itself have
        // committed (a squashed member would have discarded it).
        while self
            .pending
            .front()
            .is_some_and(|p| p.last_seq <= ev.seq)
        {
            if let Some(p) = self.pending.pop_front() {
                self.install(p);
            }
        }
        if ev.trace_reused {
            self.stats.committed_reused += 1;
            let ci = class_index(ev.inst.op.class());
            if let Some(c) = self.stats.per_class.get_mut(ci) {
                *c += 1;
            }
            let di = (self.depth_of(ev.pc) as usize).min(4);
            if let Some(c) = self.stats.per_depth.get_mut(di) {
                *c += 1;
            }
        }
    }

    fn on_squash(&mut self, keep_seq: u64, _now: u64) {
        // Wrong-path invalidation: any capture with a squashed member
        // (its last_seq is younger than the squash point) is discarded,
        // the capture window restarts, and an in-flight replay plan is
        // dropped.
        self.builder_reset();
        self.replay = None;
        while self
            .pending
            .back()
            .is_some_and(|p| p.last_seq > keep_seq)
        {
            if let Some(p) = self.pending.pop_back() {
                self.stats.pending_squashed += 1;
                self.recycle(p);
            }
        }
    }

    fn replay_begin(&mut self, q: &ReplayQuery<'_>, plans: &mut Vec<MemberPlan>) -> bool {
        if self.replay.is_some() {
            return false;
        }
        let base = self.set_base(q.pc);
        let ways = self.config.ways.max(1);
        let mut found = None;
        for w in 0..ways {
            if let Some(e) = self.table.get(base + w) {
                if e.valid && e.head_pc == q.pc {
                    found = Some(base + w);
                    break;
                }
            }
        }
        let Some(idx) = found else { return false };
        let Some(entry) = self.table.get(idx) else { return false };
        let n = entry.members.len();
        if n == 0 || n > q.rob_free {
            return false;
        }
        let mem_n = entry
            .members
            .iter()
            .filter(|m| matches!(m.class, Some(OpClass::Load) | Some(OpClass::Store)))
            .count();
        if mem_n > q.lsq_free {
            return false;
        }
        let ctrl_n = entry
            .members
            .iter()
            .filter(|m| m.class == Some(OpClass::Branch))
            .count();
        if ctrl_n > q.cp_free {
            return false;
        }
        // Validate the trace interface against current speculative
        // state: every live-in register and every external load value
        // must match what the members saw at capture.
        for &(reg, val) in &entry.live_ins {
            if q.regs.read(reg) != val {
                return false;
            }
        }
        for &(addr, width, val) in &entry.ext_loads {
            if q.mem.load(addr, width) != val {
                return false;
            }
        }
        plans.clear();
        plans.extend(entry.members.iter().map(|m| MemberPlan {
            pc: m.pc,
            is_ctrl: m.class == Some(OpClass::Branch),
            taken: m.taken,
            target: m.target,
        }));
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(e) = self.table.get_mut(idx) {
            e.last_used = stamp;
        }
        self.stats.replays += 1;
        self.stats.replayed_insts += n as u64;
        self.replay = Some(ReplayState {
            entry_idx: idx,
            cursor: 0,
        });
        true
    }

    fn replay_abort(&mut self) {
        if self.replay.take().is_some() {
            self.stats.aborted += 1;
        }
    }

    fn export(&self, out: &mut MechExport) {
        out.rtb = Some(self.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RtbConfig;

    fn program() -> Program {
        vpir_isa::asm::assemble(
            "       li   r1, 8
             loop:  addi r2, r2, 3
                    addi r3, r3, 5
                    addi r1, r1, -1
                    bne  r1, r0, loop
                    halt",
        )
        .expect("assembles")
    }

    #[test]
    fn loop_depths_join_the_static_analysis() {
        let rtb = RtbMech::new(RtbConfig::t4(), &program());
        // The loop body sits at depth 1; the prologue at depth 0.
        assert_eq!(rtb.depth_of(TEXT_BASE), 0);
        assert_eq!(rtb.depth_of(TEXT_BASE + INST_BYTES), 1);
    }

    #[test]
    fn set_indexing_stays_in_bounds() {
        let rtb = RtbMech::new(RtbConfig::t8(), &program());
        for pc in (0..4096u64).map(|i| TEXT_BASE + i * INST_BYTES) {
            let base = rtb.set_base(pc);
            assert!(base + rtb.config.ways <= rtb.table.len());
        }
    }
}
