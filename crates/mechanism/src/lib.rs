//! Pluggable speculation mechanisms.
//!
//! The source paper compares exactly two redundancy mechanisms — value
//! prediction and instruction reuse — and both used to be hard-wired
//! into the cycle loop. This crate extracts the interface the two
//! already shared into [`SpeculationMechanism`]: a dispatch-time query
//! (produce a value/result or pass), a writeback/commit-time
//! update/verify hook, and squash notification. The cycle loop in
//! `vpir-core` drives every mechanism only through this trait; VP and
//! IR are the first two tenants (bit-identical to the hard-wired
//! implementations, pinned by the golden-digest suite), and trace reuse
//! ([`RtbMech`], after Coppieters et al.) is the first new one.
//!
//! The [`registry`] module is the single source of truth for
//! configuration labels (`base`, `magic:ME-SB:vl1`, `ir_early`,
//! `rtb:t8`, ...): the bench matrix, `vpir serve`'s request
//! validators, and the CLI's `--machine` parser all resolve labels
//! through it.
//!
//! Mechanism state is deliberately split from pipeline state: a
//! mechanism owns its tables (VPT, RB, RTB) and never touches the ROB
//! or the speculative register file directly. The core describes one
//! instruction per hook call through plain-data *query* structs and
//! receives *action* structs back, so the timing model stays in one
//! place and a new mechanism cannot corrupt pipeline invariants.

pub mod config;
mod ir;
pub mod registry;
mod rtb;
mod vp;

pub use config::{
    BranchResolution, Enhancement, IrConfig, Reexecution, RtbConfig, Validation, VpConfig,
    VpKind,
};
pub use ir::IrMech;
pub use registry::build_mechanisms;
pub use rtb::RtbMech;
pub use vp::VpMech;

use vpir_isa::{ExecOut, Inst, MemImage, MemWidth, OpClass, Reg, RegFile};
use vpir_predict::VptStats;
use vpir_reuse::{EntryRef, OperandView, RbInsert, ReuseStats};
use vpir_stats::RtbStats;

/// Everything a mechanism may inspect about one dispatching
/// instruction. All fields are plain copies taken from the ROB *after*
/// any earlier mechanism's action was applied, so in a multi-mechanism
/// configuration (the paper's hybrid) a later mechanism observes the
/// effect of an earlier one — exactly as the hard-wired hybrid did.
#[derive(Debug, Clone, Copy)]
pub struct DispatchQuery {
    /// Program counter.
    pub pc: u64,
    /// Dispatch sequence number.
    pub seq: u64,
    /// Current cycle.
    pub now: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// The functional (oracle-along-the-speculative-path) execution
    /// outcome computed at dispatch.
    pub out: ExecOut,
    /// Source-operand values read at dispatch, in operand order.
    pub src_values: [Option<u64>; 2],
    /// True for loads (ROB `loads` mask).
    pub is_load: bool,
    /// Result value prediction already standing on this slot.
    pub predicted: Option<u64>,
    /// True when an earlier mechanism already granted full reuse.
    pub reused: bool,
    /// True when an earlier mechanism already granted address reuse.
    pub addr_reused: bool,
    /// Per-operand reuse-buffer views (register, view), populated only
    /// for mechanisms that return true from
    /// [`SpeculationMechanism::wants_operand_views`].
    pub views: [(Option<Reg>, OperandView); 2],
    /// Reuse-buffer entries of in-flight producers feeding this
    /// instruction (the `S_{n+d}` dependence-chain input), populated
    /// with `views`.
    pub chain: [Option<EntryRef>; 2],
    /// For loads: true when an in-flight earlier store may overlap this
    /// load's address, which makes a full-result reuse claim unsafe.
    /// Populated with `views`.
    pub store_conflict: bool,
}

/// What a full-reuse grant means for the pipeline (mirrors the early /
/// late validation arms of the hard-wired IR implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseGrant {
    /// Tag-only hit: remember the source entry, reuse nothing.
    Tag,
    /// Early validation, full result: skip execute, resolve control at
    /// decode.
    EarlyFull,
    /// Early validation, address-only: the load's effective address is
    /// known at decode.
    EarlyAddr(u64),
    /// Late validation, full result: behaves as an always-correct value
    /// prediction.
    LateFull,
    /// Late validation, address-only prediction.
    LateAddr(u64),
}

/// A reuse claim: which RB entry produced it and what it grants.
#[derive(Debug, Clone, Copy)]
pub struct ReuseAction {
    /// The reuse-buffer entry backing the claim (flagged on squash for
    /// the squash-recovery statistic).
    pub entry: EntryRef,
    /// What the pipeline should do with the claim.
    pub grant: ReuseGrant,
}

/// The dispatch-time outcome of one mechanism for one instruction.
/// Everything defaults to "pass".
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchAction {
    /// `Some(p)` overwrites the slot's result prediction with `p`
    /// (which may itself be `None` — a predictor that declines still
    /// clears any stale prediction, as the hard-wired VP did).
    pub predicted: Option<Option<u64>>,
    /// `Some(p)` overwrites the slot's address prediction.
    pub addr_predicted: Option<Option<u64>>,
    /// A reuse claim for this instruction.
    pub reuse: Option<ReuseAction>,
    /// This instruction is a member of an in-progress trace replay: the
    /// pipeline marks it trace-reused (skips execute, publishes the
    /// functional result, resolves a terminal branch at decode).
    pub trace_member: bool,
}

/// One committing instruction, described to every mechanism.
#[derive(Debug, Clone, Copy)]
pub struct CommitEvent {
    /// Commit sequence number.
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Architected result value (the destination write), if any.
    pub result: Option<u64>,
    /// Architected effective address for memory operations.
    pub addr: Option<u64>,
    /// Memory-operation shape, for loads/stores.
    pub mem: Option<CommitMem>,
    /// The instruction committed under a full-reuse grant.
    pub reused: bool,
    /// The instruction committed under an address-reuse grant.
    pub addr_reused: bool,
    /// The instruction committed as a replayed trace member.
    pub trace_reused: bool,
    /// The RB entry that backed a reuse grant, if any.
    pub reuse_source: Option<EntryRef>,
}

/// Memory shape of a committing load or store.
#[derive(Debug, Clone, Copy)]
pub struct CommitMem {
    /// True for loads, false for stores.
    pub is_load: bool,
    /// Access width.
    pub width: MemWidth,
}

/// Effects a mechanism reports back from a commit.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitEffects {
    /// The committing reuse was backed by an entry inserted on a since
    /// -squashed path (counts toward `squash_recovered`).
    pub squash_recovered: bool,
}

/// One squashed in-flight instruction, described to every mechanism
/// during misprediction recovery.
#[derive(Debug, Clone, Copy)]
pub struct SquashVictim {
    /// The victim's sequence number.
    pub seq: u64,
    /// The RB entry this instruction inserted at writeback, if any —
    /// a wrong-path capture the mechanism must treat as suspect.
    pub rb_entry: Option<EntryRef>,
    /// `(address, width)` when the victim was a store with a computed
    /// address: speculative memory under that range is rolled back.
    pub squashed_store: Option<(u64, MemWidth)>,
}

/// The machine state a replay-capable mechanism validates a trace
/// against at dispatch time.
pub struct ReplayQuery<'a> {
    /// The PC at the head of the fetch queue.
    pub pc: u64,
    /// Current cycle.
    pub now: u64,
    /// The speculative (dispatch-path) register file.
    pub regs: &'a RegFile,
    /// The speculative memory image (includes in-flight stores).
    pub mem: &'a MemImage,
    /// Free ROB slots this cycle.
    pub rob_free: usize,
    /// Free load/store-queue slots this cycle.
    pub lsq_free: usize,
    /// Free branch checkpoints this cycle.
    pub cp_free: usize,
}

/// One member of a granted trace replay, in program order.
#[derive(Debug, Clone, Copy)]
pub struct MemberPlan {
    /// Member PC.
    pub pc: u64,
    /// True when this member is the trace's terminal conditional
    /// branch.
    pub is_ctrl: bool,
    /// Recorded branch direction (terminal member only).
    pub taken: bool,
    /// Recorded branch target (terminal member only).
    pub target: u64,
}

/// Per-mechanism statistics surfaced into `SimStats` at the end of a
/// run.
#[derive(Debug, Clone, Default)]
pub struct MechExport {
    /// Result-VPT statistics (VP tenant).
    pub vpt_result: Option<VptStats>,
    /// Address-VPT statistics (VP tenant).
    pub vpt_addr: Option<VptStats>,
    /// Reuse-buffer statistics (IR tenant).
    pub rb: Option<ReuseStats>,
    /// Trace-reuse statistics (RTB tenant).
    pub rtb: Option<RtbStats>,
}

/// A speculation mechanism the cycle loop can drive.
///
/// The contract has three mandatory hook groups — dispatch-time query
/// ([`on_dispatch`](SpeculationMechanism::on_dispatch)), commit-time
/// update/verify ([`on_commit`](SpeculationMechanism::on_commit)), and
/// squash notification ([`on_squash`](SpeculationMechanism::on_squash)
/// and friends) — plus optional capabilities (writeback capture, atomic
/// trace replay) that default to "not supported". A mechanism never
/// mutates pipeline state; it answers queries and the core applies the
/// actions.
pub trait SpeculationMechanism {
    /// Short stable name (`"vp"`, `"ir"`, `"rtb"`), used in reports and
    /// diagnostics.
    fn name(&self) -> &'static str;

    /// True when [`DispatchQuery::views`], [`DispatchQuery::chain`] and
    /// [`DispatchQuery::store_conflict`] must be populated (the reuse
    /// test needs operand provenance; plain predictors do not).
    fn wants_operand_views(&self) -> bool {
        false
    }

    /// True when the mechanism captures executed instructions at
    /// writeback ([`on_executed`](SpeculationMechanism::on_executed)).
    fn wants_exec_records(&self) -> bool {
        false
    }

    /// True when the mechanism can replay multi-instruction traces
    /// ([`replay_begin`](SpeculationMechanism::replay_begin)).
    fn has_replay(&self) -> bool {
        false
    }

    /// Dispatch-time query: inspect one dispatching instruction and
    /// fill in `act` (or leave it defaulted to pass).
    fn on_dispatch(&mut self, q: &DispatchQuery, act: &mut DispatchAction);

    /// Writeback-time capture: one instruction finished executing with
    /// correct inputs. Returns the mechanism's handle for the capture
    /// (stored in the ROB and handed back in [`SquashVictim::rb_entry`]
    /// / [`CommitEvent::reuse_source`]).
    fn on_executed(&mut self, _rec: &RbInsert) -> Option<EntryRef> {
        None
    }

    /// Commit-time update/verify: train predictors, promote captures,
    /// attribute reuse.
    fn on_commit(&mut self, _ev: &CommitEvent, _fx: &mut CommitEffects) {}

    /// One in-flight instruction is being squashed.
    fn on_squash_victim(&mut self, _v: &SquashVictim) {}

    /// A squash rolled the machine back to `keep_seq` (everything
    /// younger is gone) at cycle `now`.
    fn on_squash(&mut self, _keep_seq: u64, _now: u64) {}

    /// Post-squash architectural-view repair: `reg` now reads `value`
    /// on the restored path.
    fn on_squash_restore(&mut self, _reg: Reg, _value: u64) {}

    /// Offer an atomic trace replay starting at `q.pc`. On a validated
    /// hit the mechanism fills `plans` (program order) and returns
    /// true; the core then dispatches every member this cycle.
    fn replay_begin(&mut self, _q: &ReplayQuery<'_>, _plans: &mut Vec<MemberPlan>) -> bool {
        false
    }

    /// Abort an in-progress replay (core-side validation failed).
    fn replay_abort(&mut self) {}

    /// Surface end-of-run statistics.
    fn export(&self, _out: &mut MechExport) {}
}

/// Dense per-class index for attribution arrays: the nine [`OpClass`]
/// variants in declaration order.
pub fn class_index(class: OpClass) -> usize {
    match class {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::Load => 2,
        OpClass::Store => 3,
        OpClass::Branch => 4,
        OpClass::Jump => 5,
        OpClass::JumpReg => 6,
        OpClass::Fp => 7,
        OpClass::Misc => 8,
    }
}

/// The class names matching [`class_index`] positions, for reports.
pub const CLASS_NAMES: [&str; 9] = [
    "int-alu", "int-mul", "load", "store", "branch", "jump", "jump-reg", "fp", "misc",
];
