//! The instruction-reuse tenant.
//!
//! A direct port of the pipeline's hard-wired `dispatch_ir` plus the
//! commit/squash reuse-buffer maintenance, behind the
//! [`SpeculationMechanism`] trait. Bit-identical to the pre-trait
//! implementation (golden-digest pinned): the same operand views, the
//! same dependence-chain (`S_{n+d}`) input, the same store-conflict
//! downgrade, and the same non-speculative soundness guard.

use vpir_isa::{OpClass, Reg};
use vpir_reuse::{EntryRef, OperandView, RbInsert, ReuseBuffer};

use crate::config::{IrConfig, Validation};
use crate::{
    CommitEffects, CommitEvent, DispatchAction, DispatchQuery, MechExport, ReuseAction,
    ReuseGrant, SpeculationMechanism, SquashVictim,
};

/// Instruction reuse as a pluggable mechanism: the reuse buffer and the
/// validation policy.
#[derive(Debug, Clone)]
pub struct IrMech {
    rb: ReuseBuffer,
    validation: Validation,
}

impl IrMech {
    /// Builds the reuse buffer described by `ir`.
    pub fn new(ir: &IrConfig) -> IrMech {
        IrMech {
            rb: ReuseBuffer::new(ir.rb),
            validation: ir.validation,
        }
    }
}

impl SpeculationMechanism for IrMech {
    fn name(&self) -> &'static str {
        "ir"
    }

    fn wants_operand_views(&self) -> bool {
        true
    }

    fn wants_exec_records(&self) -> bool {
        true
    }

    fn on_dispatch(&mut self, q: &DispatchQuery, act: &mut DispatchAction) {
        let op = q.inst.op;
        match op.class() {
            OpClass::Misc | OpClass::Jump => return,
            _ => {}
        }
        let views = q.views;
        let lookup_view = move |r: Reg| {
            for (reg, v) in views.iter() {
                if *reg == Some(r) {
                    return *v;
                }
            }
            OperandView::default()
        };
        let [c0, c1] = q.chain;
        let backing;
        let reused_now: &[EntryRef] = match (c0, c1) {
            (Some(a), Some(b)) => {
                backing = [a, b];
                &backing
            }
            (Some(a), None) | (None, Some(a)) => {
                backing = [a, a];
                &backing[..1]
            }
            (None, None) => &[],
        };

        let Some(mut hit) = self.rb.lookup(q.pc, op, &lookup_view, reused_now) else {
            return;
        };

        // A reused load must still snoop older in-flight stores: if one
        // overlaps its address, the buffered value may be stale relative
        // to this path — only the address computation is reusable. The
        // core performed the scan ([`DispatchQuery::store_conflict`]).
        if hit.full && op.class() == OpClass::Load && q.store_conflict {
            hit.full = false;
            hit.result = None;
        }

        // Guard: the reuse test is non-speculative, so a hit must agree
        // with the architectural truth for this dynamic instance.
        let sound = match op.class() {
            OpClass::Branch => hit.result == q.out.control.map(|c| c.taken as u64),
            OpClass::JumpReg => hit.result == q.out.control.map(|c| c.target),
            OpClass::Load | OpClass::Store => {
                (!hit.full || hit.result == q.out.result)
                    && (hit.addr.is_none() || hit.addr == q.out.addr)
            }
            _ => !hit.full || hit.result == q.out.result,
        };
        debug_assert!(sound, "reuse test returned a wrong result for {:?}", q.inst);
        if !sound {
            return;
        }

        let grant = match self.validation {
            Validation::Early => {
                if hit.full {
                    ReuseGrant::EarlyFull
                } else if let Some(addr) = hit.addr {
                    ReuseGrant::EarlyAddr(addr)
                } else {
                    ReuseGrant::Tag
                }
            }
            Validation::Late => {
                if hit.full {
                    ReuseGrant::LateFull
                } else if let Some(addr) = hit.addr {
                    ReuseGrant::LateAddr(addr)
                } else {
                    ReuseGrant::Tag
                }
            }
        };
        act.reuse = Some(ReuseAction {
            entry: hit.entry,
            grant,
        });
    }

    fn on_executed(&mut self, rec: &RbInsert) -> Option<EntryRef> {
        Some(self.rb.insert(*rec))
    }

    fn on_commit(&mut self, ev: &CommitEvent, fx: &mut CommitEffects) {
        // Architected register writes invalidate dependent entries.
        if let (Some(dst), Some(v)) = (ev.inst.dst, ev.result) {
            self.rb.on_reg_write(dst, v);
        }
        // Committed stores invalidate overlapping load entries.
        if let Some(mem) = &ev.mem {
            if !mem.is_load {
                if let Some(addr) = ev.addr {
                    self.rb.on_store(addr, mem.width);
                }
            }
        }
        // Squash-recovery accounting: a committing reuse backed by an
        // entry inserted on a squashed path recovered wrong-path work.
        if ev.reused || ev.addr_reused {
            if let Some(entry) = ev.reuse_source {
                if self.rb.take_flag(entry) {
                    fx.squash_recovered = true;
                }
            }
        }
    }

    fn on_squash_victim(&mut self, v: &SquashVictim) {
        if let Some(entry) = v.rb_entry {
            self.rb.flag(entry);
        }
        // A squashed store never becomes architectural, but loads on
        // its path may have captured its (forwarded) value into the
        // reuse buffer — invalidate those entries.
        if let Some((addr, width)) = v.squashed_store {
            self.rb.on_store(addr, width);
        }
    }

    fn on_squash_restore(&mut self, reg: Reg, value: u64) {
        self.rb.on_reg_write(reg, value);
    }

    fn export(&self, out: &mut MechExport) {
        out.rb = Some(self.rb.stats());
    }
}
