//! Simulation statistics.
//!
//! Every quantity reported in the paper's Tables 2–6 and Figures 3–7 is
//! derived from these counters.

use vpir_mem::CacheStats;
use vpir_predict::VptStats;
use vpir_reuse::ReuseStats;
use vpir_stats::RtbStats;

/// Counters accumulated over one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions committed (architectural progress).
    pub committed: u64,
    /// Instructions dispatched (including wrong path).
    pub dispatched: u64,
    /// Execution events on functional units (re-executions count again).
    pub executions: u64,

    // ---- branches ----
    /// Conditional branches committed.
    pub branches: u64,
    /// Committed conditional branches whose fetch-time direction
    /// prediction was wrong.
    pub branch_mispredicts: u64,
    /// Committed returns (`jr ra`).
    pub returns: u64,
    /// Committed returns whose predicted target was wrong.
    pub return_mispredicts: u64,
    /// Squash events (each control-flow repair; spurious value-induced
    /// squashes count here too).
    pub squashes: u64,
    /// Squash events caused by branches resolving on value-speculative
    /// operands that later turned out correct (spurious squashes).
    pub spurious_squashes: u64,
    /// Sum over committed control instructions of
    /// `resolve_cycle - dispatch_cycle` (branch resolution latency,
    /// Figure 4).
    pub branch_resolution_latency_sum: u64,
    /// Number of committed control instructions in the above sum.
    pub branch_resolution_count: u64,
    /// Instructions that had executed at least once when a squash
    /// discarded them (Table 5 numerator base).
    pub squashed_executed: u64,
    /// Committed instructions whose reuse hit an RB entry written by a
    /// control-squashed instruction (Table 5 "recovered").
    pub squash_recovered: u64,

    // ---- value prediction ----
    /// Committed result-producing instructions.
    pub result_producers: u64,
    /// Committed instructions whose result was predicted.
    pub result_predicted: u64,
    /// ... of which the prediction was correct.
    pub result_pred_correct: u64,
    /// Committed memory operations.
    pub mem_ops: u64,
    /// Committed loads whose effective address was predicted.
    pub addr_predicted: u64,
    /// ... of which the prediction was correct.
    pub addr_pred_correct: u64,
    /// Histogram of per-instruction execution counts at commit:
    /// `[never, once, twice, three or more]`.
    pub exec_histogram: [u64; 4],

    // ---- instruction reuse ----
    /// Committed instructions whose full result was reused.
    pub reused_full: u64,
    /// Committed memory operations whose effective address came from the
    /// RB (includes fully reused memory operations).
    pub reused_addr: u64,

    // ---- resources ----
    /// Requests for a functional unit by ready instructions.
    pub fu_requests: u64,
    /// ... that were denied (unit busy or issue slot exhausted).
    pub fu_denials: u64,
    /// Data-cache port requests.
    pub port_requests: u64,
    /// ... that were denied.
    pub port_denials: u64,

    // ---- substructures ----
    /// Instruction-cache hit/miss counters.
    pub icache: CacheStats,
    /// Data-cache hit/miss counters.
    pub dcache: CacheStats,
    /// Result-VPT counters (zero when VP is off).
    pub vpt_result: VptStats,
    /// Address-VPT counters (zero when address prediction is off).
    pub vpt_addr: VptStats,
    /// Reuse-buffer counters (zero when IR is off).
    pub rb: ReuseStats,
    /// Trace-reuse counters (zero when the RTB is off), including the
    /// per-instruction-class and per-loop-depth attribution of committed
    /// trace members.
    pub rtb: RtbStats,
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch prediction accuracy (percent).
    pub fn branch_pred_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            100.0 * (self.branches - self.branch_mispredicts) as f64 / self.branches as f64
        }
    }

    /// Return-target prediction accuracy (percent).
    pub fn return_pred_rate(&self) -> f64 {
        if self.returns == 0 {
            100.0
        } else {
            100.0 * (self.returns - self.return_mispredicts) as f64 / self.returns as f64
        }
    }

    /// Percent of committed instructions whose result was reused (Table 3).
    pub fn reuse_result_rate(&self) -> f64 {
        pct(self.reused_full, self.committed)
    }

    /// Percent of committed memory ops whose address was reused.
    pub fn reuse_addr_rate(&self) -> f64 {
        pct(self.reused_addr, self.mem_ops)
    }

    /// Percent of committed instructions correctly value predicted.
    pub fn vp_result_rate(&self) -> f64 {
        pct(self.result_pred_correct, self.committed)
    }

    /// Percent of committed instructions value predicted *incorrectly*.
    pub fn vp_result_mispred_rate(&self) -> f64 {
        pct(self.result_predicted - self.result_pred_correct, self.committed)
    }

    /// Percent of committed memory ops with correctly predicted address.
    pub fn vp_addr_rate(&self) -> f64 {
        pct(self.addr_pred_correct, self.mem_ops)
    }

    /// Percent of committed memory ops with mispredicted address.
    pub fn vp_addr_mispred_rate(&self) -> f64 {
        pct(self.addr_predicted - self.addr_pred_correct, self.mem_ops)
    }

    /// Mean branch-resolution latency in cycles (Figure 4).
    pub fn branch_resolution_latency(&self) -> f64 {
        if self.branch_resolution_count == 0 {
            0.0
        } else {
            self.branch_resolution_latency_sum as f64 / self.branch_resolution_count as f64
        }
    }

    /// Resource-contention ratio: denied / requested (Figure 5).
    pub fn contention(&self) -> f64 {
        let req = self.fu_requests + self.port_requests;
        let den = self.fu_denials + self.port_denials;
        if req == 0 {
            0.0
        } else {
            den as f64 / req as f64
        }
    }

    /// Percent of executed instructions later squashed (Table 5).
    pub fn squashed_exec_rate(&self) -> f64 {
        pct(self.squashed_executed, self.executions)
    }

    /// Percent of squashed executed instructions recovered by IR (Table 5).
    pub fn squash_recovery_rate(&self) -> f64 {
        pct(self.squash_recovered, self.squashed_executed)
    }

    /// Percent of committed instructions executed exactly `n` times
    /// (n = 1, 2, or 3+; Table 6).
    pub fn exec_times_rate(&self, n: usize) -> f64 {
        let idx = n.min(3);
        pct(self.exec_histogram[idx], self.committed)
    }
}

impl SimStats {
    /// Renders a human-readable summary of the run.
    ///
    /// # Examples
    ///
    /// ```
    /// use vpir_core::SimStats;
    /// let s = SimStats { cycles: 100, committed: 250, ..SimStats::default() };
    /// let text = s.report();
    /// assert!(text.contains("IPC"));
    /// ```
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycles {}  dispatched {}  committed {}  IPC {:.3}",
            self.cycles,
            self.dispatched,
            self.committed,
            self.ipc()
        );
        let _ = writeln!(
            out,
            "branches {} ({:.1}% predicted)  returns {} ({:.1}%)  squashes {} ({} spurious)",
            self.branches,
            self.branch_pred_rate(),
            self.returns,
            self.return_pred_rate(),
            self.squashes,
            self.spurious_squashes
        );
        if self.result_predicted > 0 || self.addr_predicted > 0 {
            let _ = writeln!(
                out,
                "VP: results {:.1}% correct / {:.1}% wrong; addresses {:.1}% / {:.1}%",
                self.vp_result_rate(),
                self.vp_result_mispred_rate(),
                self.vp_addr_rate(),
                self.vp_addr_mispred_rate()
            );
            let _ = writeln!(
                out,
                "    covered {:.1}% of {} result producers; VPT {} lookups (+{} addr)",
                pct(self.result_predicted, self.result_producers),
                self.result_producers,
                self.vpt_result.lookups,
                self.vpt_addr.lookups
            );
        }
        if self.reused_full > 0 || self.reused_addr > 0 {
            let _ = writeln!(
                out,
                "IR: {:.1}% of results reused; {:.1}% of memory ops reused an address",
                self.reuse_result_rate(),
                self.reuse_addr_rate()
            );
            let _ = writeln!(
                out,
                "    RB: {} inserts, {} evictions, {} reg / {} mem invalidations",
                self.rb.inserts,
                self.rb.evictions,
                self.rb.reg_invalidations,
                self.rb.mem_invalidations
            );
        }
        if self.rtb != RtbStats::default() {
            let _ = writeln!(
                out,
                "RTB: {} replays ({} insts, mean len {:.2}); {:.1}% of commits were trace members",
                self.rtb.replays,
                self.rtb.replayed_insts,
                self.rtb.mean_trace_len(),
                self.rtb.committed_reuse_pct(self.committed)
            );
            let _ = writeln!(
                out,
                "    captures: {} finalized, {} installed ({:.1}%), {} dropped, {} squashed, {} replay aborts",
                self.rtb.captured,
                self.rtb.installed,
                self.rtb.install_pct(),
                self.rtb.dropped,
                self.rtb.pending_squashed,
                self.rtb.aborted
            );
            let mut by_class = String::new();
            for (name, count) in vpir_mechanism::CLASS_NAMES.iter().zip(self.rtb.per_class) {
                if count > 0 {
                    if !by_class.is_empty() {
                        by_class.push_str("  ");
                    }
                    let _ = write!(by_class, "{name} {count}");
                }
            }
            if !by_class.is_empty() {
                let _ = writeln!(out, "    reused by type: {by_class}");
            }
            let mut by_depth = String::new();
            for (depth, count) in self.rtb.per_depth.iter().enumerate() {
                if *count > 0 {
                    if !by_depth.is_empty() {
                        by_depth.push_str("  ");
                    }
                    let tag = if depth == 4 { "4+".to_string() } else { depth.to_string() };
                    let _ = write!(by_depth, "depth{tag} {count}");
                }
            }
            if !by_depth.is_empty() {
                let _ = writeln!(out, "    reused by loop depth: {by_depth}");
            }
        }
        let _ = writeln!(
            out,
            "caches: icache {}/{} hits  dcache {}/{} hits",
            self.icache.hits,
            self.icache.accesses(),
            self.dcache.hits,
            self.dcache.accesses()
        );
        let _ = writeln!(
            out,
            "resources: {:.2}% contention  |  exec histogram {:?}",
            100.0 * self.contention(),
            self.exec_histogram
        );
        out
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            branches: 50,
            branch_mispredicts: 5,
            reused_full: 25,
            mem_ops: 50,
            reused_addr: 10,
            fu_requests: 90,
            fu_denials: 9,
            port_requests: 10,
            port_denials: 1,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.branch_pred_rate() - 90.0).abs() < 1e-12);
        assert!((s.reuse_result_rate() - 10.0).abs() < 1e-12);
        assert!((s.reuse_addr_rate() - 20.0).abs() < 1e-12);
        assert!((s.contention() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn report_renders_all_sections() {
        let s = SimStats {
            cycles: 10,
            committed: 20,
            reused_full: 5,
            result_predicted: 3,
            result_pred_correct: 2,
            ..SimStats::default()
        };
        let r = s.report();
        assert!(r.contains("IPC"));
        assert!(r.contains("VP:"));
        assert!(r.contains("IR:"));
    }

    #[test]
    fn rtb_report_attributes_by_type_and_loop_depth() {
        let mut s = SimStats {
            cycles: 10,
            committed: 100,
            ..SimStats::default()
        };
        assert!(
            !s.report().contains("RTB:"),
            "RTB section must stay silent when the mechanism is off"
        );
        s.rtb = RtbStats {
            captured: 10,
            installed: 8,
            replays: 4,
            replayed_insts: 12,
            committed_reused: 12,
            ..RtbStats::default()
        };
        s.rtb.per_class[0] = 9;
        s.rtb.per_class[2] = 3;
        s.rtb.per_depth[1] = 10;
        s.rtb.per_depth[4] = 2;
        let r = s.report();
        assert!(r.contains("RTB: 4 replays"));
        assert!(r.contains("int-alu 9"));
        assert!(r.contains("load 3"));
        assert!(r.contains("depth1 10"));
        assert!(r.contains("depth4+ 2"));
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.branch_pred_rate(), 0.0);
        assert_eq!(s.return_pred_rate(), 100.0);
        assert_eq!(s.contention(), 0.0);
        assert_eq!(s.branch_resolution_latency(), 0.0);
    }
}
