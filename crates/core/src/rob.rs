//! The reorder buffer.
//!
//! Entries hold both the *architectural truth* for their dynamic instance
//! (computed functionally at dispatch) and the *timing state* of the
//! value as consumers see it — including a possibly wrong,
//! value-speculative visible value. The Table 1 machine's 32-entry LSQ is
//! as large as the ROB, so load/store ordering is resolved by walking
//! older ROB entries rather than by a separate capacity-limited queue
//! (the LSQ can never be the binding constraint; see DESIGN.md).

use vpir_isa::{ExecOut, Inst, MemWidth};
use vpir_reuse::EntryRef;

/// A value as consumers currently see it (may be speculative or wrong).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisibleValue {
    /// The value.
    pub value: u64,
    /// First cycle consumers may issue using it.
    pub since: u64,
}

/// An execution in flight on a functional unit.
#[derive(Debug, Clone, Copy)]
pub struct PendingExec {
    /// Cycle the result becomes visible.
    pub finish: u64,
    /// Visible input values consumed at issue.
    pub inputs: [Option<u64>; 2],
    /// Whether those inputs equal the architecturally correct ones.
    pub inputs_correct: bool,
    /// Whether every input was non-value-speculative at issue.
    pub inputs_final: bool,
}

/// Control-transfer state for branches and jumps.
#[derive(Debug, Clone)]
pub struct CtrlState {
    /// Direction the front end currently follows (rewritten on squash).
    pub followed_taken: bool,
    /// Target the front end currently follows when taken.
    pub followed_target: u64,
    /// The original fetch-time direction (for prediction-rate stats).
    pub original_taken: bool,
    /// The original fetch-time target (for return-prediction stats).
    pub original_target: u64,
    /// Direction-predictor token (gshare history snapshot).
    pub bp_token: u64,
    /// Whether the fetch-time prediction came from the RAS.
    pub used_ras: bool,
    /// Whether the branch has been finally resolved.
    pub resolved: bool,
    /// Cycle of final resolution (valid when `resolved`).
    pub resolve_cycle: u64,
    /// `exec_count` at the last resolution action (SB re-acts on each
    /// new execution).
    pub acted_count: u32,
}

/// Memory state for loads and stores.
#[derive(Debug, Clone, Copy)]
pub struct MemState {
    /// Load (true) or store (false).
    pub is_load: bool,
    /// Access width.
    pub width: MemWidth,
    /// Cycle the *correct* effective address became known; `None` until
    /// address generation completes with correct inputs (or the address
    /// was reused).
    pub addr_known: Option<u64>,
    /// The address produced by the most recent address generation (may
    /// be wrong under value speculation).
    pub computed_addr: Option<u64>,
    /// For loads: in-flight memory access completing at this cycle.
    pub access_finish: Option<u64>,
    /// For loads: the address the in-flight/completed access used
    /// (detects wrong-address-prediction accesses).
    pub accessed_addr: Option<u64>,
}

/// One reorder-buffer entry.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Global dynamic sequence number (age).
    pub seq: u64,
    /// Instruction address.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Dispatch cycle.
    pub dispatch_cycle: u64,
    /// Architectural outputs for this dynamic instance (dispatch-time
    /// functional execution on the *current path*).
    pub out: ExecOut,
    /// Architecturally correct source-operand values.
    pub src_values: [Option<u64>; 2],
    /// In-flight producers at dispatch: `(rob slot, seq)` per operand;
    /// `None` means the operand came from the architected register file.
    pub producers: [Option<(usize, u64)>; 2],

    /// The value consumers currently see, if any.
    pub visible: Option<VisibleValue>,
    /// Cycle from which the value is final *and* verified (non-spec).
    pub nonspec_cycle: Option<u64>,
    /// Execution in flight, if any.
    pub exec: Option<PendingExec>,
    /// Completed execution events.
    pub exec_count: u32,
    /// Inputs consumed by the most recent completed execution.
    pub last_inputs: [Option<u64>; 2],
    /// Whether the most recent completed execution used correct inputs.
    pub last_inputs_correct: bool,
    /// Whether the most recent completed execution used final inputs.
    pub last_inputs_final: bool,

    /// Control outcome computed by the most recent execution (or by the
    /// reuse test), from possibly wrong inputs: `(taken, target)`.
    pub computed_ctrl: Option<(bool, u64)>,

    /// VP: predicted result value, if a prediction was made.
    pub predicted: Option<u64>,
    /// VP: predicted effective address (loads).
    pub addr_predicted: Option<u64>,

    /// IR: full result reused at decode.
    pub reused: bool,
    /// IR: address (only) reused at decode.
    pub addr_reused: bool,
    /// IR (late validation): reuse treated as a correct prediction.
    pub late_reused: bool,
    /// IR: the RB entry the reuse test hit.
    pub reuse_source: Option<EntryRef>,
    /// IR: RB entry this instruction wrote or refreshed (dependence ptr).
    pub rb_entry: Option<EntryRef>,

    /// Control state for branches/jumps.
    pub ctrl: Option<CtrlState>,
    /// Memory state for loads/stores.
    pub mem: Option<MemState>,
}

impl RobEntry {
    /// Whether the entry's correct result value is visible to consumers
    /// at `cycle` (it may still be speculative).
    pub fn value_visible(&self, cycle: u64) -> Option<u64> {
        match self.visible {
            Some(v) if v.since <= cycle => Some(v.value),
            _ => None,
        }
    }

    /// Whether the entry is non-value-speculative at `cycle`.
    pub fn nonspec(&self, cycle: u64) -> bool {
        self.nonspec_cycle.is_some_and(|c| c <= cycle)
    }

    /// Whether the visible value equals the architectural result.
    pub fn visible_correct(&self) -> bool {
        match (self.visible, self.out.result) {
            (Some(v), Some(r)) => v.value == r,
            (None, _) => false,
            (Some(_), None) => true, // no register result to be wrong about
        }
    }

    /// Whether this instruction writes a register.
    pub fn writes_reg(&self) -> bool {
        self.inst.dst.is_some() && self.out.result.is_some()
    }
}

/// A fixed-capacity circular reorder buffer.
#[derive(Debug)]
pub struct Rob {
    slots: Vec<Option<RobEntry>>,
    head: usize,
    len: usize,
}

impl Rob {
    /// Creates an empty ROB with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Rob {
        assert!(capacity > 0, "ROB capacity must be positive");
        Rob {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
        }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the ROB is full.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Allocates a slot at the tail; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full.
    pub fn push(&mut self, entry: RobEntry) -> usize {
        assert!(!self.is_full(), "ROB overflow");
        let idx = (self.head + self.len) % self.slots.len();
        self.slots[idx] = Some(entry);
        self.len += 1;
        idx
    }

    /// The oldest entry, if any.
    pub fn front(&self) -> Option<&RobEntry> {
        if self.len == 0 {
            None
        } else {
            self.slots[self.head].as_ref()
        }
    }

    /// Removes and returns the oldest entry.
    pub fn pop_front(&mut self) -> Option<RobEntry> {
        if self.len == 0 {
            return None;
        }
        let e = self.slots[self.head].take();
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        e
    }

    /// Entry at `slot`, if occupied.
    pub fn get(&self, slot: usize) -> Option<&RobEntry> {
        self.slots[slot].as_ref()
    }

    /// Mutable entry at `slot`, if occupied.
    pub fn get_mut(&mut self, slot: usize) -> Option<&mut RobEntry> {
        self.slots[slot].as_mut()
    }

    /// Entry at a slot known to be occupied (an index obtained from
    /// [`Rob::slots_in_order`] or [`Rob::push`] this cycle, with no
    /// intervening pop or squash).
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty — that is a pipeline bookkeeping bug,
    /// not a recoverable condition.
    pub fn entry(&self, slot: usize) -> &RobEntry {
        self.slots[slot].as_ref().expect("live ROB slot") // vpir: allow(panic, caller holds a live slot index from this cycle; an empty slot is a pipeline bug)
    }

    /// Mutable counterpart of [`Rob::entry`].
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty (see [`Rob::entry`]).
    pub fn entry_mut(&mut self, slot: usize) -> &mut RobEntry {
        self.slots[slot].as_mut().expect("live ROB slot") // vpir: allow(panic, caller holds a live slot index from this cycle; an empty slot is a pipeline bug)
    }

    /// Slot indices in age order (oldest first).
    pub fn slots_in_order(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).map(move |i| (self.head + i) % self.slots.len())
    }

    /// Checks the buffer's structural invariants: the live window holds
    /// only occupied slots in strictly increasing age order, and every
    /// slot outside it is vacant. Returns a description of the first
    /// violation. Used by the simulator's opt-in paranoia mode.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.len > self.slots.len() {
            return Err(format!(
                "ROB len {} exceeds capacity {}",
                self.len,
                self.slots.len()
            ));
        }
        let mut prev: Option<u64> = None;
        for slot in self.slots_in_order() {
            let Some(e) = self.get(slot) else {
                return Err(format!("ROB slot {slot} inside the live window is empty"));
            };
            if let Some(p) = prev {
                if e.seq <= p {
                    return Err(format!(
                        "ROB out of age order: seq {} follows seq {p}",
                        e.seq
                    ));
                }
            }
            prev = Some(e.seq);
        }
        for idx in 0..self.slots.len() {
            let offset = (idx + self.slots.len() - self.head) % self.slots.len();
            if offset >= self.len && self.slots.get(idx).is_some_and(|s| s.is_some()) {
                return Err(format!("ROB slot {idx} outside the live window is occupied"));
            }
        }
        Ok(())
    }

    /// Discards every entry younger than `seq`, returning the discarded
    /// entries youngest-last.
    pub fn squash_after(&mut self, seq: u64) -> Vec<RobEntry> {
        let mut dropped = Vec::new();
        self.squash_after_into(seq, &mut dropped);
        dropped
    }

    /// Allocation-free counterpart of [`Rob::squash_after`]: appends the
    /// discarded entries to `out` (cleared first), youngest-last, reusing
    /// `out`'s capacity.
    pub fn squash_after_into(&mut self, seq: u64, out: &mut Vec<RobEntry>) {
        out.clear();
        while self.len > 0 {
            let tail = (self.head + self.len - 1) % self.slots.len();
            let victim = match self.slots[tail].take() {
                Some(e) if e.seq > seq => e,
                other => {
                    self.slots[tail] = other;
                    break;
                }
            };
            out.push(victim);
            self.len -= 1;
        }
        out.reverse();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpir_isa::Inst;

    fn entry(seq: u64) -> RobEntry {
        RobEntry {
            seq,
            pc: 0x1000 + seq * 4,
            inst: Inst::NOP,
            dispatch_cycle: 0,
            out: ExecOut::default(),
            src_values: [None, None],
            producers: [None, None],
            visible: None,
            nonspec_cycle: None,
            exec: None,
            exec_count: 0,
            last_inputs: [None, None],
            last_inputs_correct: false,
            last_inputs_final: false,
            computed_ctrl: None,
            predicted: None,
            addr_predicted: None,
            reused: false,
            addr_reused: false,
            late_reused: false,
            reuse_source: None,
            rb_entry: None,
            ctrl: None,
            mem: None,
        }
    }

    #[test]
    fn fifo_order() {
        let mut rob = Rob::new(4);
        let a = rob.push(entry(1));
        let b = rob.push(entry(2));
        assert_ne!(a, b);
        assert_eq!(rob.front().unwrap().seq, 1);
        assert_eq!(rob.pop_front().unwrap().seq, 1);
        assert_eq!(rob.pop_front().unwrap().seq, 2);
        assert!(rob.pop_front().is_none());
    }

    #[test]
    fn wraps_around() {
        let mut rob = Rob::new(3);
        for seq in 1..=3 {
            rob.push(entry(seq));
        }
        assert!(rob.is_full());
        rob.pop_front();
        let idx = rob.push(entry(4));
        assert_eq!(idx, 0, "reuses the freed slot");
        let seqs: Vec<u64> = rob
            .slots_in_order()
            .map(|s| rob.get(s).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn squash_drops_younger_only() {
        let mut rob = Rob::new(8);
        for seq in 1..=6 {
            rob.push(entry(seq));
        }
        let dropped = rob.squash_after(3);
        assert_eq!(dropped.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(rob.len(), 3);
        // New entries can be pushed after the squash.
        rob.push(entry(7));
        let seqs: Vec<u64> = rob
            .slots_in_order()
            .map(|s| rob.get(s).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![1, 2, 3, 7]);
    }

    #[test]
    fn squash_everything() {
        let mut rob = Rob::new(4);
        rob.push(entry(5));
        rob.push(entry(6));
        let dropped = rob.squash_after(0);
        assert_eq!(dropped.len(), 2);
        assert!(rob.is_empty());
    }

    #[test]
    fn visible_value_timing() {
        let mut e = entry(1);
        e.visible = Some(VisibleValue { value: 42, since: 10 });
        assert_eq!(e.value_visible(9), None);
        assert_eq!(e.value_visible(10), Some(42));
        assert!(!e.nonspec(100));
        e.nonspec_cycle = Some(12);
        assert!(!e.nonspec(11));
        assert!(e.nonspec(12));
    }

    #[test]
    fn consistency_check_accepts_wrapped_state_and_flags_disorder() {
        let mut rob = Rob::new(3);
        for seq in 1..=3 {
            rob.push(entry(seq));
        }
        rob.pop_front();
        rob.push(entry(4)); // wrapped
        assert!(rob.check_consistency().is_ok());

        // Corrupt the age order through the public mutable accessor.
        let tail = rob.slots_in_order().last().unwrap();
        rob.get_mut(tail).unwrap().seq = 1;
        let err = rob.check_consistency().unwrap_err();
        assert!(err.contains("out of age order"), "{err}");
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(1));
        rob.push(entry(2));
    }
}
