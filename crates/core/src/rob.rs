//! The reorder buffer, stored as structure-of-arrays columns.
//!
//! Entries hold both the *architectural truth* for their dynamic instance
//! (computed functionally at dispatch) and the *timing state* of the
//! value as consumers see it — including a possibly wrong,
//! value-speculative visible value. The Table 1 machine's 32-entry LSQ is
//! as large as the ROB, so load/store ordering is resolved by walking
//! older ROB entries rather than by a separate capacity-limited queue
//! (the LSQ can never be the binding constraint; see DESIGN.md).
//!
//! # Columnar layout
//!
//! Per-entry state lives in parallel column vectors indexed by ROB slot
//! (the `radix`-style typed-column organization), not in an
//! array-of-structs `Vec<Option<RobEntry>>`. Each pipeline stage touches
//! only the columns it reads, and *which* slots a stage visits is driven
//! by per-stage bitmaps ([`SlotMask`]) combined with bitwise ops — a
//! stage visits `popcount` slots, not `rob.len()` slots. Dense masked
//! iteration walks the circular live window in age order (oldest first),
//! so iteration order — which is part of the simulated machine's
//! deterministic behaviour — is identical to the old full-window scan.
//!
//! Option-typed timing fields are collapsed into plain columns with the
//! [`NO_CYCLE`] sentinel (cycle numbers never reach `u64::MAX / 4`) or a
//! validity bitmap; occupancy itself is the `valid` bitmap, so there is
//! no double-`Option` and no panicking `entry()` accessor.

use vpir_isa::{ExecOut, Inst, MemWidth, OpClass};
use vpir_reuse::EntryRef;

/// Sentinel for "no cycle recorded" in cycle-number columns
/// ([`Rob::vis_since`], [`Rob::nonspec_cycle`], [`Rob::exec_finish`]).
/// Run limits cap cycles far below this.
pub const NO_CYCLE: u64 = u64::MAX;

/// Control-transfer state for branches and jumps.
#[derive(Debug, Clone, Copy, Default)]
pub struct CtrlState {
    /// Direction the front end currently follows (rewritten on squash).
    pub followed_taken: bool,
    /// Target the front end currently follows when taken.
    pub followed_target: u64,
    /// The original fetch-time direction (for prediction-rate stats).
    pub original_taken: bool,
    /// The original fetch-time target (for return-prediction stats).
    pub original_target: u64,
    /// Direction-predictor token (gshare history snapshot).
    pub bp_token: u64,
    /// Whether the fetch-time prediction came from the RAS.
    pub used_ras: bool,
    /// Whether the branch has been finally resolved.
    pub resolved: bool,
    /// Cycle of final resolution (valid when `resolved`).
    pub resolve_cycle: u64,
    /// `exec_count` at the last resolution action (SB re-acts on each
    /// new execution).
    pub acted_count: u32,
}

/// Memory state for loads and stores.
#[derive(Debug, Clone, Copy)]
pub struct MemState {
    /// Load (true) or store (false).
    pub is_load: bool,
    /// Access width.
    pub width: MemWidth,
    /// Cycle the *correct* effective address became known; `None` until
    /// address generation completes with correct inputs (or the address
    /// was reused).
    pub addr_known: Option<u64>,
    /// The address produced by the most recent address generation (may
    /// be wrong under value speculation).
    pub computed_addr: Option<u64>,
    /// For loads: in-flight memory access completing at this cycle.
    pub access_finish: Option<u64>,
    /// For loads: the address the in-flight/completed access used
    /// (detects wrong-address-prediction accesses).
    pub accessed_addr: Option<u64>,
}

impl Default for MemState {
    fn default() -> MemState {
        MemState {
            is_load: false,
            width: MemWidth::B8,
            addr_known: None,
            computed_addr: None,
            access_finish: None,
            accessed_addr: None,
        }
    }
}

/// Per-entry boolean flags packed into one `u32` column.
pub mod flag {
    /// IR (late validation): reuse treated as a correct prediction.
    pub const LATE_REUSED: u32 = 1 << 0;
    /// The most recent completed execution used correct inputs.
    pub const LAST_CORRECT: u32 = 1 << 1;
    /// The most recent completed execution used final inputs.
    pub const LAST_FINAL: u32 = 1 << 2;
    /// The in-flight execution's inputs equal the architectural ones.
    pub const EXEC_IN_CORRECT: u32 = 1 << 3;
    /// The in-flight execution's inputs were all non-speculative.
    pub const EXEC_IN_FINAL: u32 = 1 << 4;
    /// The [`CtrlState`](super::CtrlState) column is valid for this slot.
    pub const HAS_CTRL: u32 = 1 << 5;
    /// The [`MemState`](super::MemState) column is valid for this slot.
    pub const HAS_MEM: u32 = 1 << 6;
}

/// A bitmap over ROB slots: one bit per slot, packed into `u64` words.
///
/// Per-stage masks are the index vectors of the columnar layout: a
/// stage's candidate set is a bitwise expression over a few masks, and
/// iteration visits only set bits (in age order, via
/// [`Rob::for_each_masked`]).
#[derive(Debug, Clone, Default)]
pub struct SlotMask {
    pub(crate) words: Vec<u64>,
}

impl SlotMask {
    fn new(capacity: usize) -> SlotMask {
        SlotMask {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, slot: usize) {
        self.words[slot / 64] |= 1 << (slot % 64);
    }

    #[inline]
    pub(crate) fn clear(&mut self, slot: usize) {
        self.words[slot / 64] &= !(1 << (slot % 64));
    }

    #[inline]
    pub(crate) fn assign(&mut self, slot: usize, on: bool) {
        if on {
            self.set(slot);
        } else {
            self.clear(slot);
        }
    }

    #[inline]
    pub(crate) fn test(&self, slot: usize) -> bool {
        self.words[slot / 64] & (1 << (slot % 64)) != 0
    }
}

/// A fixed-capacity circular reorder buffer over columnar state.
///
/// Columns are `pub(crate)`: the pipeline reads and writes fields
/// directly by slot index (`rob.seq[slot]`), while the structural state
/// (head, length, occupancy bitmap) is managed through methods so the
/// live window and the masks can never disagree with each other.
#[derive(Debug)]
pub struct Rob {
    cap: usize,
    head: usize,
    len: usize,

    // ---- columns, all of length `cap` ----
    /// Global dynamic sequence number (age).
    pub(crate) seq: Vec<u64>,
    /// Instruction address.
    pub(crate) pc: Vec<u64>,
    /// The instruction.
    pub(crate) inst: Vec<Inst>,
    /// Dispatch cycle.
    pub(crate) dispatch_cycle: Vec<u64>,
    /// Architectural outputs for this dynamic instance (dispatch-time
    /// functional execution on the *current path*).
    pub(crate) out: Vec<ExecOut>,
    /// Architecturally correct source-operand values.
    pub(crate) src_values: Vec<[Option<u64>; 2]>,
    /// In-flight producers at dispatch: `(rob slot, seq)` per operand;
    /// `None` means the operand came from the architected register file.
    pub(crate) producers: Vec<[Option<(usize, u64)>; 2]>,
    /// The value consumers currently see (valid iff `vis_since[slot]
    /// != NO_CYCLE`; visible from that cycle on).
    pub(crate) vis_value: Vec<u64>,
    /// First cycle consumers may issue using `vis_value`.
    pub(crate) vis_since: Vec<u64>,
    /// Cycle from which the value is final *and* verified (`NO_CYCLE`
    /// until then; the `nonspec` mask mirrors "recorded at all").
    pub(crate) nonspec_cycle: Vec<u64>,
    /// In-flight execution: result-visible cycle (`NO_CYCLE` when no
    /// execution is in flight; the `exec` mask mirrors this).
    pub(crate) exec_finish: Vec<u64>,
    /// In-flight execution: visible input values consumed at issue.
    pub(crate) exec_inputs: Vec<[Option<u64>; 2]>,
    /// Completed execution events.
    pub(crate) exec_count: Vec<u32>,
    /// Inputs consumed by the most recent completed execution.
    pub(crate) last_inputs: Vec<[Option<u64>; 2]>,
    /// Control outcome computed by the most recent execution (or by the
    /// reuse test), from possibly wrong inputs: `(taken, target)`.
    /// Valid iff the `ctrl_out` mask bit is set.
    pub(crate) computed_ctrl: Vec<(bool, u64)>,
    /// VP: predicted result value, if a prediction was made.
    pub(crate) predicted: Vec<Option<u64>>,
    /// VP: predicted effective address (loads).
    pub(crate) addr_predicted: Vec<Option<u64>>,
    /// IR: the RB entry the reuse test hit.
    pub(crate) reuse_source: Vec<Option<EntryRef>>,
    /// IR: RB entry this instruction wrote or refreshed (dependence ptr).
    pub(crate) rb_entry: Vec<Option<EntryRef>>,
    /// Control state for branches/jumps (valid iff `flag::HAS_CTRL`).
    pub(crate) ctrl: Vec<CtrlState>,
    /// Memory state for loads/stores (valid iff `flag::HAS_MEM`).
    pub(crate) mem: Vec<MemState>,
    /// Packed boolean flags (see [`flag`]).
    pub(crate) flags: Vec<u32>,

    // ---- per-stage masks ----
    /// Occupancy: exactly the slots inside the live window.
    pub(crate) valid: SlotMask,
    /// Execution in flight (writeback candidates).
    pub(crate) exec: SlotMask,
    /// `nonspec_cycle` recorded (present, not necessarily reached).
    pub(crate) nonspec: SlotMask,
    /// Executed at least once with correct inputs (promotion candidates).
    pub(crate) settled: SlotMask,
    /// Unresolved branch/indirect-jump (resolution candidates).
    pub(crate) ctrl_unres: SlotMask,
    /// `computed_ctrl` valid.
    pub(crate) ctrl_out: SlotMask,
    /// Loads.
    pub(crate) loads: SlotMask,
    /// Stores.
    pub(crate) stores: SlotMask,
    /// IR: full result reused at decode.
    pub(crate) reused: SlotMask,
    /// IR: address (only) reused at decode (address generation done).
    pub(crate) addr_reused: SlotMask,
    /// RTB: dispatched as a validated trace-replay member (settled at
    /// decode like `reused`, but attributed to trace reuse).
    pub(crate) trace_reused: SlotMask,
    /// Loads with a memory access in flight or completed.
    pub(crate) accessed: SlotMask,
    /// Ever needs a functional unit (class is not Misc/Jump).
    pub(crate) execable: SlotMask,
    /// Issue-stage sleepers: candidates that were examined and found
    /// blocked on a producer whose unblocking is guaranteed to arrive as
    /// an event ([`Rob::set_visible`], [`Rob::set_nonspec`], or the
    /// producer leaving the window). Excluded from issue collection
    /// until [`Rob::wake_dependents`] clears them; skipping them is
    /// observationally identical to the poll that would have found them
    /// still blocked (a blocked candidate touches no machine state).
    pub(crate) asleep: SlotMask,
    /// `issue_waiters[p * words + w]`: bitmask (same layout as a
    /// [`SlotMask`] word) of sleepers waiting on producer slot `p`.
    /// Bits may go stale (a sleeper woken through one producer stays
    /// recorded under another); a stale wake is a harmless extra poll.
    issue_waiters: Vec<u64>,
}

impl Rob {
    /// Creates an empty ROB with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Rob {
        assert!(capacity > 0, "ROB capacity must be positive");
        Rob {
            cap: capacity,
            head: 0,
            len: 0,
            seq: vec![0; capacity],
            pc: vec![0; capacity],
            inst: vec![Inst::NOP; capacity],
            dispatch_cycle: vec![0; capacity],
            out: vec![ExecOut::default(); capacity],
            src_values: vec![[None, None]; capacity],
            producers: vec![[None, None]; capacity],
            vis_value: vec![0; capacity],
            vis_since: vec![NO_CYCLE; capacity],
            nonspec_cycle: vec![NO_CYCLE; capacity],
            exec_finish: vec![NO_CYCLE; capacity],
            exec_inputs: vec![[None, None]; capacity],
            exec_count: vec![0; capacity],
            last_inputs: vec![[None, None]; capacity],
            computed_ctrl: vec![(false, 0); capacity],
            predicted: vec![None; capacity],
            addr_predicted: vec![None; capacity],
            reuse_source: vec![None; capacity],
            rb_entry: vec![None; capacity],
            ctrl: vec![CtrlState::default(); capacity],
            mem: vec![MemState::default(); capacity],
            flags: vec![0; capacity],
            valid: SlotMask::new(capacity),
            exec: SlotMask::new(capacity),
            nonspec: SlotMask::new(capacity),
            settled: SlotMask::new(capacity),
            ctrl_unres: SlotMask::new(capacity),
            ctrl_out: SlotMask::new(capacity),
            loads: SlotMask::new(capacity),
            stores: SlotMask::new(capacity),
            reused: SlotMask::new(capacity),
            addr_reused: SlotMask::new(capacity),
            trace_reused: SlotMask::new(capacity),
            accessed: SlotMask::new(capacity),
            execable: SlotMask::new(capacity),
            asleep: SlotMask::new(capacity),
            issue_waiters: vec![0; capacity * capacity.div_ceil(64)],
        }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the ROB is full.
    pub fn is_full(&self) -> bool {
        self.len == self.cap
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whether `slot` holds a live entry.
    #[inline]
    pub fn is_live(&self, slot: usize) -> bool {
        self.valid.test(slot)
    }

    /// The slot of the oldest entry, if any.
    #[inline]
    pub fn head_slot(&self) -> Option<usize> {
        (self.len > 0).then_some(self.head)
    }

    /// Begins allocating the tail slot: resets every column for the new
    /// entry and records the dispatch-time facts. The entry is *not* yet
    /// part of the live window — scans during the rest of dispatch (the
    /// reuse test's store snoop) must not see it — until
    /// [`Rob::commit_push`].
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full.
    #[allow(clippy::too_many_arguments)] // the dispatch-time facts of one instruction
    pub(crate) fn begin_push(
        &mut self,
        seq: u64,
        pc: u64,
        inst: Inst,
        dispatch_cycle: u64,
        out: ExecOut,
        src_values: [Option<u64>; 2],
        producers: [Option<(usize, u64)>; 2],
    ) -> usize {
        assert!(!self.is_full(), "ROB overflow");
        let slot = (self.head + self.len) % self.cap;
        self.clear_slot_masks(slot);
        self.seq[slot] = seq;
        self.pc[slot] = pc;
        self.inst[slot] = inst;
        self.dispatch_cycle[slot] = dispatch_cycle;
        self.out[slot] = out;
        self.src_values[slot] = src_values;
        self.producers[slot] = producers;
        self.vis_since[slot] = NO_CYCLE;
        self.nonspec_cycle[slot] = NO_CYCLE;
        self.exec_finish[slot] = NO_CYCLE;
        self.exec_inputs[slot] = [None, None];
        self.exec_count[slot] = 0;
        self.last_inputs[slot] = [None, None];
        self.predicted[slot] = None;
        self.addr_predicted[slot] = None;
        self.reuse_source[slot] = None;
        self.rb_entry[slot] = None;
        self.flags[slot] = 0;
        match inst.op.class() {
            OpClass::Misc | OpClass::Jump => {}
            OpClass::Load => {
                self.loads.set(slot);
                self.execable.set(slot);
            }
            OpClass::Store => {
                self.stores.set(slot);
                self.execable.set(slot);
            }
            _ => self.execable.set(slot),
        }
        slot
    }

    /// Completes the allocation started by [`Rob::begin_push`]: the
    /// entry joins the live window.
    pub(crate) fn commit_push(&mut self, slot: usize) {
        debug_assert_eq!(slot, (self.head + self.len) % self.cap);
        self.valid.set(slot);
        self.len += 1;
    }

    /// Frees the oldest entry (after commit has read its columns).
    ///
    /// # Panics
    ///
    /// Panics if the ROB is empty.
    pub(crate) fn free_head(&mut self) {
        assert!(self.len > 0, "free_head on empty ROB");
        // Consumers blocked on this producer fall back to their
        // dispatch-time operand values once it leaves the window.
        self.wake_dependents(self.head);
        self.clear_slot_masks(self.head);
        self.head = (self.head + 1) % self.cap;
        self.len -= 1;
    }

    /// Clears every mask bit for `slot` (column data may stay stale; the
    /// next [`Rob::begin_push`] for the slot resets it).
    fn clear_slot_masks(&mut self, slot: usize) {
        self.valid.clear(slot);
        self.exec.clear(slot);
        self.nonspec.clear(slot);
        self.settled.clear(slot);
        self.ctrl_unres.clear(slot);
        self.ctrl_out.clear(slot);
        self.loads.clear(slot);
        self.stores.clear(slot);
        self.reused.clear(slot);
        self.addr_reused.clear(slot);
        self.trace_reused.clear(slot);
        self.accessed.clear(slot);
        self.execable.clear(slot);
        self.asleep.clear(slot);
        // Drop this slot's waiter row (its role as a producer); its own
        // bits in other rows go stale and are cleaned up lazily (a stale
        // wake is just an extra poll).
        let stride = self.asleep.words.len();
        self.issue_waiters[slot * stride..(slot + 1) * stride].fill(0);
        self.flags[slot] = 0;
    }

    /// Puts an issue candidate to sleep until one of `blockers` (live
    /// producer slots) produces a wake event. Callers must only pass
    /// blockers whose unblocking is event-guaranteed — never a producer
    /// whose state changes at an already-known future cycle.
    pub(crate) fn sleep_issue(&mut self, slot: usize, blockers: [Option<usize>; 2]) {
        let stride = self.asleep.words.len();
        let (w, bit) = (slot / 64, 1u64 << (slot % 64));
        for p in blockers.into_iter().flatten() {
            self.issue_waiters[p * stride + w] |= bit;
        }
        self.asleep.set(slot);
    }

    /// Wakes every issue sleeper recorded under `producer`: called on
    /// the producer's visibility, finality, and window-exit events (the
    /// complete set of transitions that can unblock a sleeper).
    #[inline]
    pub(crate) fn wake_dependents(&mut self, producer: usize) {
        let stride = self.asleep.words.len();
        let row = producer * stride;
        for w in 0..stride {
            let m = self.issue_waiters[row + w];
            if m != 0 {
                self.asleep.words[w] &= !m;
                self.issue_waiters[row + w] = 0;
            }
        }
    }

    /// The slot holding the `i`-th oldest live entry.
    #[inline]
    pub(crate) fn slot_of_age(&self, i: usize) -> usize {
        debug_assert!(i < self.len);
        (self.head + i) % self.cap
    }

    /// How many live entries are younger than `seq` (they occupy the
    /// youngest slots of the live window).
    pub(crate) fn count_younger(&self, seq: u64) -> usize {
        let mut k = 0;
        for i in (0..self.len).rev() {
            if self.seq[self.slot_of_age(i)] > seq {
                k += 1;
            } else {
                break;
            }
        }
        k
    }

    /// Discards the youngest `k` entries (the caller has already done
    /// per-victim bookkeeping by reading their columns).
    pub(crate) fn truncate_tail(&mut self, k: usize) {
        assert!(k <= self.len, "truncating more than the ROB holds");
        for i in (self.len - k..self.len).rev() {
            let slot = self.slot_of_age(i);
            self.clear_slot_masks(slot);
        }
        self.len -= k;
    }

    /// Slot indices in age order (oldest first). The full-window scan —
    /// paranoia checks and tests only; stages use masked iteration.
    pub fn slots_in_order(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).map(move |i| (self.head + i) % self.cap)
    }

    /// Visits every live slot whose bit is set in the mask expression
    /// `word` (a bitwise combination of this ROB's masks, evaluated one
    /// `u64` word at a time), in age order. Stops early when `f` returns
    /// `false`.
    ///
    /// The circular live window is walked as up to two linear ranges, so
    /// age order holds across wrap-around and cost is proportional to
    /// mask words plus set bits, not to window length.
    #[inline]
    pub(crate) fn for_each_masked(
        &self,
        word: impl Fn(&Rob, usize) -> u64,
        mut f: impl FnMut(usize) -> bool,
    ) {
        let end = self.head + self.len;
        let (r1, r2) = if end <= self.cap {
            ((self.head, end), (0, 0))
        } else {
            ((self.head, self.cap), (0, end - self.cap))
        };
        for (lo, hi) in [r1, r2] {
            if lo >= hi {
                continue;
            }
            let w0 = lo / 64;
            let w1 = hi.div_ceil(64);
            for w in w0..w1 {
                let mut bits = word(self, w) & self.valid.words[w];
                if w == w0 {
                    bits &= !0u64 << (lo % 64);
                }
                let word_end = (w + 1) * 64;
                if word_end > hi {
                    let keep = hi - w * 64;
                    bits &= (1u64 << keep) - 1;
                }
                while bits != 0 {
                    let slot = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if !f(slot) {
                        return;
                    }
                }
            }
        }
    }

    /// Collects the masked slots in age order into `out` (cleared
    /// first), reusing its capacity.
    #[inline]
    pub(crate) fn collect_masked(
        &self,
        word: impl Fn(&Rob, usize) -> u64,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        self.for_each_masked(word, |slot| {
            out.push(slot);
            true
        });
    }

    /// Writeback candidates: executions in flight.
    pub(crate) fn collect_writeback(&self, out: &mut Vec<usize>) {
        self.collect_masked(|r, w| r.exec.words[w], out);
    }

    /// Promotion candidates: executed with correct inputs, not yet
    /// final, no execution in flight.
    pub(crate) fn collect_promote(&self, out: &mut Vec<usize>) {
        self.collect_masked(
            |r, w| r.settled.words[w] & !r.nonspec.words[w] & !r.exec.words[w],
            out,
        );
    }

    /// Branch-resolution candidates: unresolved control with a computed
    /// outcome and no execution in flight.
    pub(crate) fn collect_resolve(&self, out: &mut Vec<usize>) {
        self.collect_masked(
            |r, w| r.ctrl_unres.words[w] & r.ctrl_out.words[w] & !r.exec.words[w],
            out,
        );
    }

    /// Memory-access candidates: loads that have not been fully reused
    /// and have no access in flight or completed.
    pub(crate) fn collect_mem_access(&self, out: &mut Vec<usize>) {
        self.collect_masked(
            |r, w| {
                r.loads.words[w]
                    & !r.reused.words[w]
                    & !r.trace_reused.words[w]
                    & !r.accessed.words[w]
            },
            out,
        );
    }

    /// Issue candidates: the statically-known part of the needs-exec
    /// predicate (never-executing classes, reuse, in-flight execution,
    /// finished address generation); the per-slot dynamic part
    /// (re-execution policy) stays in the issue stage.
    ///
    /// `settled` (executed, last inputs correct) is excluded up front:
    /// for a non-reused candidate it is exactly the needs-exec
    /// early-out, and settled instructions dominate a full window.
    pub(crate) fn collect_issue(&self, out: &mut Vec<usize>) {
        self.collect_masked(
            |r, w| {
                r.execable.words[w]
                    & !r.exec.words[w]
                    & !r.reused.words[w]
                    & !r.trace_reused.words[w]
                    & !r.addr_reused.words[w]
                    & !r.settled.words[w]
                    & !r.asleep.words[w]
            },
            out,
        );
    }

    /// Memory operations currently occupying load/store-queue entries.
    pub(crate) fn mem_ops_in_flight(&self) -> usize {
        self.loads
            .words
            .iter()
            .zip(&self.stores.words)
            .zip(&self.valid.words)
            .map(|((l, s), v)| ((l | s) & v).count_ones() as usize)
            .sum()
    }

    // ---- per-slot field helpers ----

    /// The sequence number of the oldest entry, if any.
    pub fn head_seq(&self) -> Option<u64> {
        self.head_slot().map(|s| self.seq[s])
    }

    /// The PC of the oldest entry, if any.
    pub fn head_pc(&self) -> Option<u64> {
        self.head_slot().map(|s| self.pc[s])
    }

    /// The entry's correct-or-speculative value as visible to consumers
    /// at `cycle`.
    #[inline]
    pub(crate) fn value_visible(&self, slot: usize, cycle: u64) -> Option<u64> {
        (self.vis_since[slot] <= cycle).then(|| self.vis_value[slot])
    }

    /// Whether the entry is non-value-speculative at `cycle`.
    #[inline]
    pub(crate) fn nonspec_at(&self, slot: usize, cycle: u64) -> bool {
        self.nonspec_cycle[slot] <= cycle
    }

    /// Makes `value` visible to consumers from `since`.
    #[inline]
    pub(crate) fn set_visible(&mut self, slot: usize, value: u64, since: u64) {
        self.vis_value[slot] = value;
        self.vis_since[slot] = since;
        self.wake_dependents(slot);
    }

    /// Removes the visible value (a stale speculative access).
    #[inline]
    pub(crate) fn clear_visible(&mut self, slot: usize) {
        self.vis_since[slot] = NO_CYCLE;
    }

    /// Records the cycle from which the entry is final and verified.
    #[inline]
    pub(crate) fn set_nonspec(&mut self, slot: usize, cycle: u64) {
        self.nonspec_cycle[slot] = cycle;
        self.nonspec.set(slot);
        self.wake_dependents(slot);
    }

    /// Tests a packed per-entry flag (see [`flag`]).
    #[inline]
    pub(crate) fn has_flag(&self, slot: usize, bit: u32) -> bool {
        self.flags[slot] & bit != 0
    }

    /// Sets or clears a packed per-entry flag.
    #[inline]
    pub(crate) fn assign_flag(&mut self, slot: usize, bit: u32, on: bool) {
        if on {
            self.flags[slot] |= bit;
        } else {
            self.flags[slot] &= !bit;
        }
    }

    /// Checks the buffer's structural invariants — the live window holds
    /// only valid slots in strictly increasing age order, every slot
    /// outside it is vacant — and that each derived mask agrees with the
    /// column it mirrors. Returns a description of the first violation.
    /// Used by the simulator's opt-in paranoia mode and by tests.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.len > self.cap {
            return Err(format!("ROB len {} exceeds capacity {}", self.len, self.cap));
        }
        let mut prev: Option<u64> = None;
        for slot in self.slots_in_order() {
            if !self.valid.test(slot) {
                return Err(format!("ROB slot {slot} inside the live window is empty"));
            }
            let seq = self.seq[slot];
            if let Some(p) = prev {
                if seq <= p {
                    return Err(format!("ROB out of age order: seq {seq} follows seq {p}"));
                }
            }
            prev = Some(seq);
        }
        for slot in 0..self.cap {
            let offset = (slot + self.cap - self.head) % self.cap;
            if offset >= self.len && self.valid.test(slot) {
                return Err(format!("ROB slot {slot} outside the live window is occupied"));
            }
        }
        // Mask/column cross-validation: each incrementally-maintained
        // mask must equal the predicate it mirrors.
        for slot in self.slots_in_order() {
            let class = self.inst[slot].op.class();
            let checks: [(&str, bool, bool); 7] = [
                ("exec", self.exec.test(slot), self.exec_finish[slot] != NO_CYCLE),
                ("nonspec", self.nonspec.test(slot), self.nonspec_cycle[slot] != NO_CYCLE),
                (
                    "settled",
                    self.settled.test(slot),
                    self.exec_count[slot] > 0 && self.has_flag(slot, flag::LAST_CORRECT),
                ),
                (
                    "ctrl_unres",
                    self.ctrl_unres.test(slot),
                    self.has_flag(slot, flag::HAS_CTRL) && !self.ctrl[slot].resolved,
                ),
                ("loads", self.loads.test(slot), class == OpClass::Load),
                ("stores", self.stores.test(slot), class == OpClass::Store),
                (
                    "execable",
                    self.execable.test(slot),
                    !matches!(class, OpClass::Misc | OpClass::Jump),
                ),
            ];
            for (name, mask, col) in checks {
                if mask != col {
                    return Err(format!(
                        "mask `{name}` disagrees with its column at slot {slot} \
                         (seq {}): mask {mask}, column {col}",
                        self.seq[slot]
                    ));
                }
            }
            if self.accessed.test(slot)
                != (self.has_flag(slot, flag::HAS_MEM) && self.mem[slot].access_finish.is_some())
            {
                return Err(format!(
                    "mask `accessed` disagrees with mem state at slot {slot} (seq {})",
                    self.seq[slot]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpir_isa::Inst;

    fn push(rob: &mut Rob, seq: u64) -> usize {
        let slot = rob.begin_push(
            seq,
            0x1000 + seq * 4,
            Inst::NOP,
            0,
            ExecOut::default(),
            [None, None],
            [None, None],
        );
        rob.commit_push(slot);
        slot
    }

    #[test]
    fn fifo_order() {
        let mut rob = Rob::new(4);
        let a = push(&mut rob, 1);
        let b = push(&mut rob, 2);
        assert_ne!(a, b);
        assert_eq!(rob.head_seq(), Some(1));
        rob.free_head();
        assert_eq!(rob.head_seq(), Some(2));
        rob.free_head();
        assert_eq!(rob.head_seq(), None);
    }

    #[test]
    fn wraps_around() {
        let mut rob = Rob::new(3);
        for seq in 1..=3 {
            push(&mut rob, seq);
        }
        assert!(rob.is_full());
        rob.free_head();
        let idx = push(&mut rob, 4);
        assert_eq!(idx, 0, "reuses the freed slot");
        let seqs: Vec<u64> = rob.slots_in_order().map(|s| rob.seq[s]).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert!(rob.check_consistency().is_ok());
    }

    #[test]
    fn squash_drops_younger_only() {
        let mut rob = Rob::new(8);
        for seq in 1..=6 {
            push(&mut rob, seq);
        }
        let k = rob.count_younger(3);
        assert_eq!(k, 3);
        let victims: Vec<u64> = (rob.len() - k..rob.len())
            .map(|i| rob.seq[rob.slot_of_age(i)])
            .collect();
        assert_eq!(victims, vec![4, 5, 6]);
        rob.truncate_tail(k);
        assert_eq!(rob.len(), 3);
        // New entries can be pushed after the squash.
        push(&mut rob, 7);
        let seqs: Vec<u64> = rob.slots_in_order().map(|s| rob.seq[s]).collect();
        assert_eq!(seqs, vec![1, 2, 3, 7]);
        assert!(rob.check_consistency().is_ok());
    }

    #[test]
    fn squash_everything() {
        let mut rob = Rob::new(4);
        push(&mut rob, 5);
        push(&mut rob, 6);
        let k = rob.count_younger(0);
        assert_eq!(k, 2);
        rob.truncate_tail(k);
        assert!(rob.is_empty());
    }

    #[test]
    fn visible_value_timing() {
        let mut rob = Rob::new(2);
        let s = push(&mut rob, 1);
        rob.set_visible(s, 42, 10);
        assert_eq!(rob.value_visible(s, 9), None);
        assert_eq!(rob.value_visible(s, 10), Some(42));
        assert!(!rob.nonspec_at(s, 100));
        rob.set_nonspec(s, 12);
        assert!(!rob.nonspec_at(s, 11));
        assert!(rob.nonspec_at(s, 12));
    }

    #[test]
    fn consistency_flags_mask_column_disagreement() {
        let mut rob = Rob::new(3);
        for seq in 1..=3 {
            push(&mut rob, seq);
        }
        rob.free_head();
        push(&mut rob, 4); // wrapped
        assert!(rob.check_consistency().is_ok());

        // Corrupt the age order.
        let tail = rob.slots_in_order().last().unwrap();
        rob.seq[tail] = 1;
        let err = rob.check_consistency().unwrap_err();
        assert!(err.contains("out of age order"), "{err}");
        rob.seq[tail] = 4;

        // Desynchronize a mask from its column.
        rob.nonspec_cycle[tail] = 17;
        let err = rob.check_consistency().unwrap_err();
        assert!(err.contains("nonspec"), "{err}");
        rob.nonspec.set(tail);
        assert!(rob.check_consistency().is_ok());
    }

    #[test]
    fn masked_iteration_is_age_ordered_across_wrap() {
        let mut rob = Rob::new(4);
        for seq in 1..=4 {
            push(&mut rob, seq);
        }
        rob.free_head();
        rob.free_head();
        push(&mut rob, 5);
        push(&mut rob, 6); // window wraps: slots 2,3,0,1 hold 3,4,5,6
        let mut seen = Vec::new();
        rob.for_each_masked(
            |r, w| r.valid.words[w],
            |slot| {
                seen.push(rob.seq[slot]);
                true
            },
        );
        assert_eq!(seen, vec![3, 4, 5, 6]);
        // Early exit stops mid-iteration.
        let mut first = None;
        rob.for_each_masked(
            |r, w| r.valid.words[w],
            |slot| {
                first = Some(rob.seq[slot]);
                false
            },
        );
        assert_eq!(first, Some(3));
    }

    #[test]
    fn mem_ops_counted_by_masks() {
        let mut rob = Rob::new(4);
        let s = push(&mut rob, 1);
        assert_eq!(rob.mem_ops_in_flight(), 0);
        rob.loads.set(s);
        assert_eq!(rob.mem_ops_in_flight(), 1);
        rob.free_head();
        assert_eq!(rob.mem_ops_in_flight(), 0, "freed slots leave the count");
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        push(&mut rob, 1);
        push(&mut rob, 2);
    }
}
