//! Functional-unit pool with issue intervals.

use vpir_isa::{FuClass, Op};

/// Tracks per-unit busy times for the five Table 1 pools.
///
/// A unit accepts a new operation when its previous operation's *issue
/// interval* has elapsed (divides are effectively non-pipelined:
/// `int div` holds its unit for 19 cycles, `fp div` for 12, `fp sqrt`
/// for 24).
///
/// # Examples
///
/// ```
/// use vpir_core::FuPool;
/// use vpir_isa::Op;
///
/// let mut pool = FuPool::table1();
/// // One int divider: a second divide in the same cycle is denied.
/// assert!(pool.try_issue(10, Op::Div));
/// assert!(!pool.try_issue(10, Op::Div));
/// assert!(!pool.try_issue(20, Op::Div)); // still busy (interval 19)
/// assert!(pool.try_issue(29, Op::Div));
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    /// `busy_until[pool][unit]`: first cycle the unit is free again.
    busy_until: [Vec<u64>; 5],
    requests: u64,
    denials: u64,
}

impl FuPool {
    /// Creates a pool with `counts[FuClass::index()]` units per class.
    pub fn new(counts: [usize; 5]) -> FuPool {
        FuPool {
            busy_until: counts.map(|n| vec![0; n]),
            requests: 0,
            denials: 0,
        }
    }

    /// The Table 1 pool: 8 int ALUs, 2 load/store, 1 int mul/div,
    /// 4 FP adders, 1 FP mul/div.
    pub fn table1() -> FuPool {
        let mut counts = [0; 5];
        for fu in FuClass::ALL {
            counts[fu.index()] = fu.default_count();
        }
        FuPool::new(counts)
    }

    /// Tries to issue `op` in `cycle`; on success the chosen unit is busy
    /// for the op's issue interval. Returns whether a unit was granted.
    pub fn try_issue(&mut self, cycle: u64, op: Op) -> bool {
        self.requests += 1;
        let pool = &mut self.busy_until[op.fu_class().index()];
        match pool.iter_mut().find(|b| **b <= cycle) {
            Some(slot) => {
                *slot = cycle + op.latency().1 as u64;
                true
            }
            None => {
                self.denials += 1;
                false
            }
        }
    }

    /// Whether a unit for `op` is free in `cycle` (no state change, no
    /// contention accounting).
    pub fn peek(&self, cycle: u64, op: Op) -> bool {
        self.busy_until[op.fu_class().index()]
            .iter()
            .any(|b| *b <= cycle)
    }

    /// Total `(requests, denials)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.requests, self.denials)
    }

    /// Clears busy state (used after a full pipeline squash is *not*
    /// appropriate — units keep executing squashed work — so this exists
    /// only for tests and run boundaries).
    pub fn reset(&mut self) {
        for pool in &mut self.busy_until {
            pool.fill(0);
        }
        self.requests = 0;
        self.denials = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_alu_accepts_every_cycle() {
        let mut p = FuPool::table1();
        for c in 0..20 {
            assert!(p.try_issue(c, Op::Add));
        }
        assert_eq!(p.totals(), (20, 0));
    }

    #[test]
    fn alu_width_is_eight() {
        let mut p = FuPool::table1();
        for _ in 0..8 {
            assert!(p.try_issue(5, Op::Add));
        }
        assert!(!p.try_issue(5, Op::Add));
        assert!(p.try_issue(6, Op::Add));
    }

    #[test]
    fn divider_blocks_for_issue_interval() {
        let mut p = FuPool::table1();
        assert!(p.try_issue(0, Op::Div));
        assert!(!p.try_issue(18, Op::Div));
        assert!(p.try_issue(19, Op::Div));
    }

    #[test]
    fn multiplier_is_pipelined() {
        let mut p = FuPool::table1();
        assert!(p.try_issue(0, Op::Mul));
        assert!(p.try_issue(1, Op::Mul));
    }

    #[test]
    fn pools_are_independent() {
        let mut p = FuPool::table1();
        assert!(p.try_issue(0, Op::DivF));
        assert!(!p.try_issue(0, Op::SqrtF), "same FP mul/div unit");
        assert!(p.try_issue(0, Op::AddF), "FP adders are separate");
        assert!(p.try_issue(0, Op::Lw));
        assert!(p.try_issue(0, Op::Sw));
        assert!(!p.try_issue(0, Op::Lb), "only two load/store units");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut p = FuPool::table1();
        assert!(p.peek(0, Op::Div));
        assert!(p.peek(0, Op::Div));
        assert!(p.try_issue(0, Op::Div));
        assert!(!p.peek(1, Op::Div));
        assert_eq!(p.totals(), (1, 0), "peek is not a request");
    }
}
