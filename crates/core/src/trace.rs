//! Per-instruction pipeline tracing.
//!
//! When enabled, the simulator records the lifecycle of the first *N*
//! dispatched instructions — dispatch, (re)issue, completion, resolution
//! and commit cycles, plus how the instruction was satisfied (executed,
//! value predicted, reused) — and can render them as a text timeline
//! similar to classic pipeline viewers.

use std::fmt::Write as _;

use vpir_isa::Inst;

/// How a traced instruction's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Executed normally.
    Executed,
    /// Result (or address) predicted; executed to verify.
    Predicted,
    /// Result reused; never executed.
    Reused,
    /// Address reused; memory access still performed.
    AddrReused,
    /// Discarded by a squash.
    Squashed,
}

/// Lifecycle of one traced dynamic instruction.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Instruction address.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Dispatch (decode + rename) cycle.
    pub dispatch: u64,
    /// Cycles at which executions were issued (re-executions append).
    pub issues: Vec<u64>,
    /// Cycles at which executions completed.
    pub completions: Vec<u64>,
    /// Commit cycle, if the instruction committed.
    pub commit: Option<u64>,
    /// Squash cycle, if the instruction was discarded.
    pub squash: Option<u64>,
    /// How the result was obtained.
    pub outcome: TraceOutcome,
}

/// A bounded log of [`TraceRecord`]s for the first *N* dispatches.
#[derive(Debug, Default)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
    capacity: usize,
    first_seq: Option<u64>,
}

impl TraceLog {
    /// Creates a log that captures the first `capacity` dispatches.
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog {
            records: Vec::with_capacity(capacity.min(4096)),
            capacity,
            first_seq: None,
        }
    }

    /// The captured records, in dispatch order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    pub(crate) fn on_dispatch(&mut self, seq: u64, pc: u64, inst: Inst, cycle: u64) {
        if self.records.len() >= self.capacity {
            return;
        }
        self.first_seq.get_or_insert(seq);
        self.records.push(TraceRecord {
            seq,
            pc,
            inst,
            dispatch: cycle,
            issues: Vec::new(),
            completions: Vec::new(),
            commit: None,
            squash: None,
            outcome: TraceOutcome::Executed,
        });
    }

    fn get(&mut self, seq: u64) -> Option<&mut TraceRecord> {
        let first = self.first_seq?;
        let idx = seq.checked_sub(first)? as usize;
        self.records.get_mut(idx).filter(|r| r.seq == seq)
    }

    pub(crate) fn on_issue(&mut self, seq: u64, cycle: u64) {
        if let Some(r) = self.get(seq) {
            r.issues.push(cycle);
        }
    }

    pub(crate) fn on_complete(&mut self, seq: u64, cycle: u64) {
        if let Some(r) = self.get(seq) {
            r.completions.push(cycle);
        }
    }

    pub(crate) fn on_outcome(&mut self, seq: u64, outcome: TraceOutcome) {
        if let Some(r) = self.get(seq) {
            if r.outcome == TraceOutcome::Executed {
                r.outcome = outcome;
            }
        }
    }

    pub(crate) fn on_commit(&mut self, seq: u64, cycle: u64) {
        if let Some(r) = self.get(seq) {
            r.commit = Some(cycle);
        }
    }

    pub(crate) fn on_squash(&mut self, seq: u64, cycle: u64) {
        if let Some(r) = self.get(seq) {
            r.squash = Some(cycle);
            r.outcome = TraceOutcome::Squashed;
        }
    }

    /// Renders the log as a text timeline: one row per instruction,
    /// `D` dispatch, `i` issue, `x` completion, `C` commit, `#` squash.
    ///
    /// # Examples
    ///
    /// ```text
    /// seq pc      instruction          |D..ix...C      |
    /// ```
    pub fn render(&self) -> String {
        let Some(end) = self
            .records
            .iter()
            .map(|r| {
                r.commit
                    .or(r.squash)
                    .unwrap_or(r.dispatch)
                    .max(r.completions.last().copied().unwrap_or(0))
            })
            .max()
        else {
            return String::new();
        };
        let start = self.records.iter().map(|r| r.dispatch).min().unwrap_or(0);
        let width = ((end - start) as usize + 2).min(240);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:<10} {:<26} |{}| outcome",
            "seq",
            "pc",
            "instruction",
            " ".repeat(width)
        );
        for r in &self.records {
            let mut lane = vec![b' '; width];
            let mut put = |cycle: u64, ch: u8| {
                let c = (cycle.saturating_sub(start)) as usize;
                if c < lane.len() {
                    // Later events overwrite earlier markers in the cell.
                    lane[c] = ch;
                }
            };
            put(r.dispatch, b'D');
            for &c in &r.issues {
                put(c, b'i');
            }
            for &c in &r.completions {
                put(c, b'x');
            }
            if let Some(c) = r.commit {
                put(c, b'C');
            }
            if let Some(c) = r.squash {
                put(c, b'#');
            }
            let _ = writeln!(
                out,
                "{:>5} {:<#10x} {:<26} |{}| {:?}",
                r.seq,
                r.pc,
                r.inst.to_string(),
                String::from_utf8_lossy(&lane),
                r.outcome
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpir_isa::Op;

    fn inst() -> Inst {
        Inst::rri(Op::Addi, vpir_isa::Reg::int(1), vpir_isa::Reg::ZERO, 1)
    }

    #[test]
    fn captures_up_to_capacity() {
        let mut log = TraceLog::new(2);
        log.on_dispatch(1, 0x1000, inst(), 10);
        log.on_dispatch(2, 0x1004, inst(), 10);
        log.on_dispatch(3, 0x1008, inst(), 11);
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn lifecycle_updates_reach_the_right_record() {
        let mut log = TraceLog::new(4);
        log.on_dispatch(5, 0x1000, inst(), 1);
        log.on_dispatch(6, 0x1004, inst(), 1);
        log.on_issue(6, 2);
        log.on_complete(6, 3);
        log.on_commit(6, 4);
        log.on_squash(5, 3);
        let r5 = &log.records()[0];
        let r6 = &log.records()[1];
        assert_eq!(r5.squash, Some(3));
        assert_eq!(r5.outcome, TraceOutcome::Squashed);
        assert_eq!(r6.issues, vec![2]);
        assert_eq!(r6.completions, vec![3]);
        assert_eq!(r6.commit, Some(4));
    }

    #[test]
    fn updates_for_untracked_seq_are_ignored() {
        let mut log = TraceLog::new(1);
        log.on_dispatch(1, 0x1000, inst(), 1);
        log.on_issue(99, 2);
        log.on_commit(99, 3);
        assert!(log.records()[0].issues.is_empty());
    }

    #[test]
    fn render_contains_markers() {
        let mut log = TraceLog::new(2);
        log.on_dispatch(1, 0x1000, inst(), 1);
        log.on_issue(1, 2);
        log.on_complete(1, 3);
        log.on_commit(1, 4);
        let s = log.render();
        assert!(s.contains('D'));
        assert!(s.contains('i'));
        assert!(s.contains('x'));
        assert!(s.contains('C'));
        assert!(s.contains("addi"));
    }

    #[test]
    fn empty_log_renders_empty() {
        let log = TraceLog::new(4);
        assert!(log.render().is_empty());
    }
}
