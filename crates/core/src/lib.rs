//! # vpir-core — the out-of-order pipeline simulator
//!
//! A cycle-level model of the paper's Table 1 machine: a 4-way
//! dynamically scheduled superscalar with a 32-entry reorder buffer,
//! gshare branch prediction, non-blocking caches, and the two
//! redundancy-exploiting mechanisms under study — a Value Prediction
//! Table ([`Enhancement::Vp`]) and a Reuse Buffer ([`Enhancement::Ir`]).
//!
//! See [`Simulator`] for the main entry point and `DESIGN.md` at the
//! repository root for the modelling decisions (execute-at-dispatch,
//! value-speculation tracking, squash recovery).
//!
//! # Examples
//!
//! ```
//! use vpir_core::{CoreConfig, IrConfig, RunLimits, Simulator};
//! use vpir_isa::asm;
//!
//! let prog = asm::assemble(
//!     "       li   r1, 50
//!      loop:  addi r2, r2, 2
//!             addi r1, r1, -1
//!             bne  r1, r0, loop
//!             halt",
//! )?;
//! let mut sim = Simulator::new(&prog, CoreConfig::with_ir(IrConfig::table1()));
//! let stats = sim.run(RunLimits::unbounded());
//! assert!(stats.committed > 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod fu;
mod pipeline;
mod rob;
mod spec_state;
mod stats;
mod trace;

pub use config::{
    BranchResolution, CoreConfig, Enhancement, FaultInjection, FrontEnd, IrConfig,
    Reexecution, RtbConfig, Validation, VpConfig, VpKind,
};
pub use error::{DiagSnapshot, RetiredInst, SimError, RETIRED_RING};
pub use fu::FuPool;
pub use pipeline::{RunLimits, Simulator};
pub use rob::{CtrlState, MemState, Rob, NO_CYCLE};
pub use spec_state::SpecState;
pub use stats::SimStats;
pub use trace::{TraceLog, TraceOutcome, TraceRecord};
