//! Simulator configuration.
//!
//! [`CoreConfig::table1`] reproduces the paper's base machine exactly;
//! the [`Enhancement`] field selects the baseline, one of the four VP
//! configurations at either verification latency, or IR with early or
//! late validation.

use vpir_isa::FuClass;
use vpir_mem::CacheConfig;
use vpir_predict::VptConfig;
use vpir_reuse::RbConfig;

/// Which value predictor drives the VPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VpKind {
    /// `VP_Magic`: last-*n*-unique-values with oracle selection.
    Magic,
    /// `VP_LVP`: last-value predictor.
    Lvp,
    /// `VP_Stride`: two-delta stride predictor (captures the paper's
    /// *derivable* results, which neither LVP nor Magic track).
    Stride,
}

/// How branches with value-speculative operands are resolved
/// (Section 4.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchResolution {
    /// *Speculative branch resolution*: resolve as soon as the branch
    /// executes, even on value-speculative operands (may cause spurious
    /// squashes).
    Sb,
    /// *Non-speculative branch resolution*: resolve only once the
    /// operands are known non-value-speculative (delays resolution by the
    /// verification latency).
    Nsb,
}

/// How often an instruction may re-execute after value mispredictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reexecution {
    /// *Multiple executions*: re-execute every time a new input value
    /// arrives.
    Me,
    /// *No multiple executions*: re-execute once, after the correct
    /// operands are known.
    Nme,
}

/// When IR validates results (Figure 3's experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Validation {
    /// At decode, the real IR pipeline: reused instructions skip execute,
    /// reused branches resolve immediately.
    Early,
    /// At execute: reuse behaves like an always-correct value prediction
    /// (the instruction still executes and resolves branches there).
    Late,
}

/// Value-prediction configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VpConfig {
    /// The predictor.
    pub kind: VpKind,
    /// SB or NSB branch handling.
    pub branch_resolution: BranchResolution,
    /// ME or NME re-execution policy.
    pub reexecution: Reexecution,
    /// VP-verification latency in cycles (the paper uses 0 and 1).
    pub verify_latency: u32,
    /// Geometry of the result VPT (and of the address VPT).
    pub vpt: VptConfig,
    /// Whether load effective addresses are also predicted.
    pub predict_addresses: bool,
}

impl VpConfig {
    /// `VP_Magic`, ME-SB, 0-cycle verification — the paper's headline
    /// configuration.
    pub fn magic() -> VpConfig {
        VpConfig {
            kind: VpKind::Magic,
            branch_resolution: BranchResolution::Sb,
            reexecution: Reexecution::Me,
            verify_latency: 0,
            vpt: VptConfig::table1(),
            predict_addresses: true,
        }
    }

    /// `VP_LVP`, ME-SB, 0-cycle verification.
    pub fn lvp() -> VpConfig {
        VpConfig {
            kind: VpKind::Lvp,
            ..VpConfig::magic()
        }
    }

    /// Returns `self` with the given branch-resolution policy.
    pub fn with_branches(mut self, br: BranchResolution) -> VpConfig {
        self.branch_resolution = br;
        self
    }

    /// Returns `self` with the given re-execution policy.
    pub fn with_reexecution(mut self, re: Reexecution) -> VpConfig {
        self.reexecution = re;
        self
    }

    /// Returns `self` with the given verification latency.
    pub fn with_verify_latency(mut self, cycles: u32) -> VpConfig {
        self.verify_latency = cycles;
        self
    }

    /// A short label like `"ME-SB"` for reports.
    pub fn label(&self) -> String {
        format!(
            "{}-{}",
            match self.reexecution {
                Reexecution::Me => "ME",
                Reexecution::Nme => "NME",
            },
            match self.branch_resolution {
                BranchResolution::Sb => "SB",
                BranchResolution::Nsb => "NSB",
            }
        )
    }
}

/// Instruction-reuse configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrConfig {
    /// Reuse-buffer geometry and scheme.
    pub rb: RbConfig,
    /// Early (real IR) or late (Figure 3) validation.
    pub validation: Validation,
}

impl IrConfig {
    /// The paper's IR configuration: 4K-entry 4-way RB, augmented
    /// `S_{n+d}`, early validation.
    pub fn table1() -> IrConfig {
        IrConfig {
            rb: RbConfig::table1(),
            validation: Validation::Early,
        }
    }
}

/// Which direction predictor drives the front end (Table 1 uses gshare;
/// the alternatives support sensitivity studies of how VP's and IR's
/// branch interactions scale with prediction quality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrontEnd {
    /// Gshare, 10-bit history / 16K counters (the paper's machine).
    #[default]
    Gshare,
    /// A PC-indexed bimodal table (weaker on correlated branches).
    Bimodal,
    /// Static predict-taken (the stress baseline).
    StaticTaken,
}

/// Deterministic fault injection for testing the failure model.
///
/// These knobs wedge the machine in controlled, reproducible ways so
/// the watchdog and the bench harness's graceful degradation can be
/// exercised without depending on a real (and therefore fixable) bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultInjection {
    /// No injected fault (the only setting for real experiments).
    #[default]
    None,
    /// Refuse to commit any instruction once `after_commits` have
    /// committed. In-flight work drains, the ROB fills, and no further
    /// architectural progress is possible — a deterministic livelock
    /// that trips the forward-progress watchdog exactly
    /// `watchdog_cycles` after the last commit.
    CommitStall {
        /// Commit count after which the commit stage wedges.
        after_commits: u64,
    },
}

/// The redundancy mechanism under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enhancement {
    /// The base superscalar — no VP, no IR.
    None,
    /// Value prediction.
    Vp(VpConfig),
    /// Instruction reuse.
    Ir(IrConfig),
    /// The hybrid the paper's conclusion calls for: the non-speculative
    /// reuse test runs first; instructions that miss in the RB fall back
    /// to value prediction. Reused results need no verification; only
    /// the predicted remainder is value-speculative.
    Hybrid(VpConfig, IrConfig),
}

/// Full machine configuration (Table 1 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions dispatched (decoded + renamed) per cycle.
    pub decode_width: usize,
    /// Operations issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Load/store-queue entries.
    pub lsq_size: usize,
    /// Maximum unresolved branches in flight.
    pub max_branches: usize,
    /// Fetch cannot cross a boundary of this many bytes in one cycle.
    pub fetch_line_bytes: u64,
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
    /// Data-cache ports.
    pub dcache_ports: u32,
    /// Functional-unit counts, indexed by [`FuClass::index`].
    pub fu_counts: [usize; 5],
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Front-end direction predictor.
    pub front_end: FrontEnd,
    /// The mechanism under study.
    pub enhancement: Enhancement,
    /// Forward-progress watchdog: if no instruction commits for this
    /// many cycles the run fails with a structured `Livelock`/`Deadlock`
    /// error instead of spinning to the cycle limit. Memory latencies
    /// are tens of cycles, so the default (one million cycles with zero
    /// commits) can only fire on a genuine wedge.
    pub watchdog_cycles: u64,
    /// Opt-in per-cycle invariant checking (ROB ordering, checkpoint
    /// stack, rename map, speculation-field sanity). Costly; meant for
    /// debugging and differential tests, off for experiments.
    pub paranoia: bool,
    /// Deterministic fault injection for failure-model tests.
    pub fault: FaultInjection,
    /// Per-instruction trace capacity: with a non-zero value the
    /// simulator records the first N committed/squashed instructions in
    /// a `TraceLog` from cycle zero (equivalent to calling
    /// `Simulator::enable_trace` before the first step). Zero — the
    /// default — collects nothing and costs nothing.
    pub trace_capacity: usize,
    /// Collect per-static-PC committed-execution / RB-hit / VPT-correct
    /// counters (`Simulator::pc_profile`). Off by default: the map
    /// allocates per static instruction, which the allocation-free cycle
    /// loop otherwise avoids.
    pub pc_profile: bool,
}

impl CoreConfig {
    /// The paper's Table 1 machine with no enhancement.
    pub fn table1() -> CoreConfig {
        CoreConfig {
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 32,
            lsq_size: 32,
            max_branches: 8,
            fetch_line_bytes: 32,
            icache: CacheConfig::table1_inst(),
            dcache: CacheConfig::table1_data(),
            dcache_ports: 2,
            fu_counts: {
                let mut c = [0; 5];
                for fu in FuClass::ALL {
                    c[fu.index()] = fu.default_count();
                }
                c
            },
            ras_depth: 16,
            front_end: FrontEnd::Gshare,
            enhancement: Enhancement::None,
            watchdog_cycles: 1_000_000,
            paranoia: false,
            fault: FaultInjection::None,
            trace_capacity: 0,
            pc_profile: false,
        }
    }

    /// Table 1 machine with a VP configuration.
    pub fn with_vp(vp: VpConfig) -> CoreConfig {
        CoreConfig {
            enhancement: Enhancement::Vp(vp),
            ..CoreConfig::table1()
        }
    }

    /// Table 1 machine with an IR configuration.
    pub fn with_ir(ir: IrConfig) -> CoreConfig {
        CoreConfig {
            enhancement: Enhancement::Ir(ir),
            ..CoreConfig::table1()
        }
    }

    /// Table 1 machine with the VP+IR hybrid (reuse first, predict on a
    /// reuse miss).
    pub fn with_hybrid(vp: VpConfig, ir: IrConfig) -> CoreConfig {
        CoreConfig {
            enhancement: Enhancement::Hybrid(vp, ir),
            ..CoreConfig::table1()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any width or buffer size is zero.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0, "fetch width must be positive");
        assert!(self.decode_width > 0, "decode width must be positive");
        assert!(self.issue_width > 0, "issue width must be positive");
        assert!(self.commit_width > 0, "commit width must be positive");
        assert!(self.rob_size > 1, "ROB too small");
        assert!(self.lsq_size > 0, "LSQ too small");
        assert!(self.max_branches > 0, "need at least one branch checkpoint");
        assert!(
            self.fetch_line_bytes.is_power_of_two(),
            "fetch line must be a power of two"
        );
        assert!(self.watchdog_cycles > 0, "watchdog window must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = CoreConfig::table1();
        c.validate();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_size, 32);
        assert_eq!(c.lsq_size, 32);
        assert_eq!(c.max_branches, 8);
        assert_eq!(c.fu_counts, [8, 2, 1, 4, 1]);
        assert_eq!(c.dcache_ports, 2);
        assert_eq!(c.icache.size_bytes, 64 * 1024);
    }

    #[test]
    fn vp_labels() {
        let vp = VpConfig::magic();
        assert_eq!(vp.label(), "ME-SB");
        assert_eq!(
            vp.with_branches(BranchResolution::Nsb)
                .with_reexecution(Reexecution::Nme)
                .label(),
            "NME-NSB"
        );
    }

    #[test]
    fn failure_model_defaults() {
        let c = CoreConfig::table1();
        assert_eq!(c.watchdog_cycles, 1_000_000);
        assert!(!c.paranoia);
        assert_eq!(c.fault, FaultInjection::None);
    }

    #[test]
    #[should_panic(expected = "watchdog window must be positive")]
    fn zero_watchdog_rejected() {
        let mut c = CoreConfig::table1();
        c.watchdog_cycles = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "ROB too small")]
    fn degenerate_rob_rejected() {
        let mut c = CoreConfig::table1();
        c.rob_size = 1;
        c.validate();
    }
}
