//! Simulator configuration.
//!
//! [`CoreConfig::table1`] reproduces the paper's base machine exactly;
//! the [`Enhancement`] field selects the baseline, one of the VP
//! configurations at either verification latency, IR with early or late
//! validation, or trace reuse. The per-mechanism configuration types
//! (`VpConfig`, `IrConfig`, `RtbConfig`, `Enhancement`, ...) live in
//! `vpir-mechanism` next to the mechanisms themselves and are
//! re-exported here so existing `use vpir_core::{VpConfig, ...}`
//! imports keep working.

use vpir_isa::FuClass;
use vpir_mem::CacheConfig;

pub use vpir_mechanism::{
    BranchResolution, Enhancement, IrConfig, Reexecution, RtbConfig, Validation, VpConfig,
    VpKind,
};

/// Which direction predictor drives the front end (Table 1 uses gshare;
/// the alternatives support sensitivity studies of how VP's and IR's
/// branch interactions scale with prediction quality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrontEnd {
    /// Gshare, 10-bit history / 16K counters (the paper's machine).
    #[default]
    Gshare,
    /// A PC-indexed bimodal table (weaker on correlated branches).
    Bimodal,
    /// Static predict-taken (the stress baseline).
    StaticTaken,
}

/// Deterministic fault injection for testing the failure model.
///
/// These knobs wedge the machine in controlled, reproducible ways so
/// the watchdog and the bench harness's graceful degradation can be
/// exercised without depending on a real (and therefore fixable) bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultInjection {
    /// No injected fault (the only setting for real experiments).
    #[default]
    None,
    /// Refuse to commit any instruction once `after_commits` have
    /// committed. In-flight work drains, the ROB fills, and no further
    /// architectural progress is possible — a deterministic livelock
    /// that trips the forward-progress watchdog exactly
    /// `watchdog_cycles` after the last commit.
    CommitStall {
        /// Commit count after which the commit stage wedges.
        after_commits: u64,
    },
}

/// Full machine configuration (Table 1 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions dispatched (decoded + renamed) per cycle.
    pub decode_width: usize,
    /// Operations issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Load/store-queue entries.
    pub lsq_size: usize,
    /// Maximum unresolved branches in flight.
    pub max_branches: usize,
    /// Fetch cannot cross a boundary of this many bytes in one cycle.
    pub fetch_line_bytes: u64,
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
    /// Data-cache ports.
    pub dcache_ports: u32,
    /// Functional-unit counts, indexed by [`FuClass::index`].
    pub fu_counts: [usize; 5],
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Front-end direction predictor.
    pub front_end: FrontEnd,
    /// The mechanism under study.
    pub enhancement: Enhancement,
    /// Forward-progress watchdog: if no instruction commits for this
    /// many cycles the run fails with a structured `Livelock`/`Deadlock`
    /// error instead of spinning to the cycle limit. Memory latencies
    /// are tens of cycles, so the default (one million cycles with zero
    /// commits) can only fire on a genuine wedge.
    pub watchdog_cycles: u64,
    /// Opt-in per-cycle invariant checking (ROB ordering, checkpoint
    /// stack, rename map, speculation-field sanity). Costly; meant for
    /// debugging and differential tests, off for experiments.
    pub paranoia: bool,
    /// Deterministic fault injection for failure-model tests.
    pub fault: FaultInjection,
    /// Per-instruction trace capacity: with a non-zero value the
    /// simulator records the first N committed/squashed instructions in
    /// a `TraceLog` from cycle zero (equivalent to calling
    /// `Simulator::enable_trace` before the first step). Zero — the
    /// default — collects nothing and costs nothing.
    pub trace_capacity: usize,
    /// Collect per-static-PC committed-execution / RB-hit / VPT-correct
    /// counters (`Simulator::pc_profile`). Off by default: the map
    /// allocates per static instruction, which the allocation-free cycle
    /// loop otherwise avoids.
    pub pc_profile: bool,
}

impl CoreConfig {
    /// The paper's Table 1 machine with no enhancement.
    pub fn table1() -> CoreConfig {
        CoreConfig {
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 32,
            lsq_size: 32,
            max_branches: 8,
            fetch_line_bytes: 32,
            icache: CacheConfig::table1_inst(),
            dcache: CacheConfig::table1_data(),
            dcache_ports: 2,
            fu_counts: {
                let mut c = [0; 5];
                for fu in FuClass::ALL {
                    c[fu.index()] = fu.default_count();
                }
                c
            },
            ras_depth: 16,
            front_end: FrontEnd::Gshare,
            enhancement: Enhancement::None,
            watchdog_cycles: 1_000_000,
            paranoia: false,
            fault: FaultInjection::None,
            trace_capacity: 0,
            pc_profile: false,
        }
    }

    /// Table 1 machine with the given enhancement.
    pub fn with_enhancement(enhancement: Enhancement) -> CoreConfig {
        CoreConfig {
            enhancement,
            ..CoreConfig::table1()
        }
    }

    /// Table 1 machine with a VP configuration.
    pub fn with_vp(vp: VpConfig) -> CoreConfig {
        CoreConfig::with_enhancement(Enhancement::Vp(vp))
    }

    /// Table 1 machine with an IR configuration.
    pub fn with_ir(ir: IrConfig) -> CoreConfig {
        CoreConfig::with_enhancement(Enhancement::Ir(ir))
    }

    /// Table 1 machine with the VP+IR hybrid (reuse first, predict on a
    /// reuse miss).
    pub fn with_hybrid(vp: VpConfig, ir: IrConfig) -> CoreConfig {
        CoreConfig::with_enhancement(Enhancement::Hybrid(vp, ir))
    }

    /// Table 1 machine with a trace-reuse (RTB) configuration.
    pub fn with_rtb(rtb: RtbConfig) -> CoreConfig {
        CoreConfig::with_enhancement(Enhancement::Rtb(rtb))
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any width or buffer size is zero.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0, "fetch width must be positive");
        assert!(self.decode_width > 0, "decode width must be positive");
        assert!(self.issue_width > 0, "issue width must be positive");
        assert!(self.commit_width > 0, "commit width must be positive");
        assert!(self.rob_size > 1, "ROB too small");
        assert!(self.lsq_size > 0, "LSQ too small");
        assert!(self.max_branches > 0, "need at least one branch checkpoint");
        assert!(
            self.fetch_line_bytes.is_power_of_two(),
            "fetch line must be a power of two"
        );
        assert!(self.watchdog_cycles > 0, "watchdog window must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = CoreConfig::table1();
        c.validate();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_size, 32);
        assert_eq!(c.lsq_size, 32);
        assert_eq!(c.max_branches, 8);
        assert_eq!(c.fu_counts, [8, 2, 1, 4, 1]);
        assert_eq!(c.dcache_ports, 2);
        assert_eq!(c.icache.size_bytes, 64 * 1024);
    }

    #[test]
    fn vp_labels() {
        let vp = VpConfig::magic();
        assert_eq!(vp.label(), "ME-SB");
        assert_eq!(
            vp.with_branches(BranchResolution::Nsb)
                .with_reexecution(Reexecution::Nme)
                .label(),
            "NME-NSB"
        );
    }

    #[test]
    fn enhancement_constructors_agree() {
        assert_eq!(
            CoreConfig::with_rtb(RtbConfig::t8()),
            CoreConfig::with_enhancement(Enhancement::Rtb(RtbConfig::t8()))
        );
        assert_eq!(
            CoreConfig::with_ir(IrConfig::table1()).enhancement,
            Enhancement::Ir(IrConfig::table1())
        );
    }

    #[test]
    fn failure_model_defaults() {
        let c = CoreConfig::table1();
        assert_eq!(c.watchdog_cycles, 1_000_000);
        assert!(!c.paranoia);
        assert_eq!(c.fault, FaultInjection::None);
    }

    #[test]
    #[should_panic(expected = "watchdog window must be positive")]
    fn zero_watchdog_rejected() {
        let mut c = CoreConfig::table1();
        c.watchdog_cycles = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "ROB too small")]
    fn degenerate_rob_rejected() {
        let mut c = CoreConfig::table1();
        c.rob_size = 1;
        c.validate();
    }
}
