//! The simulator failure model.
//!
//! A cycle-level simulator has two very different failure shapes. A
//! *workload* failure (cycle cap reached before `halt`) is a normal,
//! expected outcome of a capped run. A *simulator* failure — a wedge
//! where no instruction ever retires again, or a broken internal
//! invariant — used to spin to `max_cycles` or panic a worker thread.
//! [`SimError`] gives every such failure a structured identity, and
//! [`DiagSnapshot`] captures the machine state at the point of failure
//! so the wedge is diagnosable after the fact: the last retired
//! instructions, ROB occupancy, the checkpoint stack, and the
//! per-stage counters.
//!
//! Snapshots serialise with the same std-only hand-rolled JSON style as
//! `crates/bench/src/perf.rs`; the emitted text round-trips that
//! module's `validate_json` checker (pinned by
//! `crates/bench/tests/failure.rs`).

use std::fmt;

use vpir_isa::Op;

/// How many retired instructions the diagnostic ring buffer keeps.
pub const RETIRED_RING: usize = 16;

/// One retired instruction in the diagnostic ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetiredInst {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Instruction address.
    pub pc: u64,
    /// The opcode.
    pub op: Op,
    /// Commit cycle.
    pub cycle: u64,
}

/// A deterministic snapshot of machine state at the point of failure.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiagSnapshot {
    /// Cycle the snapshot was taken.
    pub cycle: u64,
    /// Instructions committed so far.
    pub committed: u64,
    /// Instructions dispatched so far (including wrong path).
    pub dispatched: u64,
    /// Execution events so far.
    pub executions: u64,
    /// Squash events so far.
    pub squashes: u64,
    /// Occupied ROB entries.
    pub rob_len: usize,
    /// Total ROB capacity.
    pub rob_capacity: usize,
    /// Sequence number at the ROB head, if any.
    pub rob_head_seq: Option<u64>,
    /// PC at the ROB head, if any.
    pub rob_head_pc: Option<u64>,
    /// Live branch checkpoints (sequence numbers, oldest first).
    pub checkpoint_seqs: Vec<u64>,
    /// Next fetch PC.
    pub fetch_pc: u64,
    /// Whether fetch is halted (drained or fell off the text segment).
    pub fetch_halted: bool,
    /// Instructions waiting in the fetch queue.
    pub fetch_queue_len: usize,
    /// The last retired instructions, oldest first (at most
    /// [`RETIRED_RING`]).
    pub last_retired: Vec<RetiredInst>,
}

impl DiagSnapshot {
    /// Serialises the snapshot as a JSON object (std-only, same style
    /// as the bench perf emitter).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        push_kv(&mut s, "cycle", &self.cycle.to_string());
        push_kv(&mut s, "committed", &self.committed.to_string());
        push_kv(&mut s, "dispatched", &self.dispatched.to_string());
        push_kv(&mut s, "executions", &self.executions.to_string());
        push_kv(&mut s, "squashes", &self.squashes.to_string());
        push_kv(&mut s, "rob_len", &self.rob_len.to_string());
        push_kv(&mut s, "rob_capacity", &self.rob_capacity.to_string());
        push_kv(&mut s, "rob_head_seq", &json_opt(self.rob_head_seq));
        push_kv(&mut s, "rob_head_pc", &json_opt(self.rob_head_pc));
        s.push_str("  \"checkpoint_seqs\": [");
        for (i, seq) in self.checkpoint_seqs.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&seq.to_string());
        }
        s.push_str("],\n");
        push_kv(&mut s, "fetch_pc", &self.fetch_pc.to_string());
        push_kv(&mut s, "fetch_halted", &self.fetch_halted.to_string());
        push_kv(&mut s, "fetch_queue_len", &self.fetch_queue_len.to_string());
        s.push_str("  \"last_retired\": [");
        for (i, r) in self.last_retired.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"seq\": {}, \"pc\": {}, \"op\": {}, \"cycle\": {}}}",
                r.seq,
                r.pc,
                json_str(&format!("{:?}", r.op)),
                r.cycle
            ));
        }
        if !self.last_retired.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}");
        s
    }
}

fn push_kv(s: &mut String, key: &str, value: &str) {
    s.push_str("  \"");
    s.push_str(key);
    s.push_str("\": ");
    s.push_str(value);
    s.push_str(",\n");
}

fn json_opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Escapes and quotes a string for JSON (escaping itself is the shared
/// `vpir-jsonlite` implementation).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    out.push_str(&vpir_jsonlite::json_escape(s));
    out.push('"');
    out
}

/// Structured simulator failures (the taxonomy the bench harness keys
/// its per-cell degradation on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The forward-progress watchdog fired while the machine was still
    /// doing work (dispatching, executing, or squashing) — instructions
    /// flow but none retires, e.g. a self-feeding replay loop.
    Livelock {
        /// Cycle the watchdog fired.
        cycle: u64,
        /// The configured watchdog window.
        watchdog_cycles: u64,
        /// Cycle of the last committed instruction.
        last_commit_cycle: u64,
        /// Machine state at the trip point.
        snapshot: Box<DiagSnapshot>,
    },
    /// The forward-progress watchdog fired with the machine fully idle:
    /// nothing retires and nothing is in flight (e.g. fetch fell off
    /// the text segment on the architecturally true path).
    Deadlock {
        /// Cycle the watchdog fired.
        cycle: u64,
        /// The configured watchdog window.
        watchdog_cycles: u64,
        /// Cycle of the last committed instruction.
        last_commit_cycle: u64,
        /// Machine state at the trip point.
        snapshot: Box<DiagSnapshot>,
    },
    /// A per-cycle paranoia check found the machine in an inconsistent
    /// state (ROB ordering, checkpoint stack, or speculation-field
    /// sanity).
    InvariantViolation {
        /// Cycle of the failed check.
        cycle: u64,
        /// Which invariant failed.
        what: String,
        /// Machine state at the failed check.
        snapshot: Box<DiagSnapshot>,
    },
    /// A run that was required to halt hit its cycle or instruction
    /// budget first (see `Simulator::run_to_halt`).
    CycleBudgetExceeded {
        /// Cycle the budget ran out.
        cycle: u64,
        /// The configured cycle budget.
        max_cycles: u64,
        /// Instructions committed within the budget.
        committed: u64,
    },
    /// An internal bookkeeping contract was broken (a state that the
    /// pipeline should make unrepresentable was observed) — previously
    /// a panic, now a structured fatal error.
    Internal {
        /// Cycle of the detection.
        cycle: u64,
        /// What was observed.
        what: String,
    },
}

impl SimError {
    /// Short machine-readable kind tag (`"livelock"`, `"deadlock"`,
    /// `"invariant_violation"`, `"cycle_budget_exceeded"`,
    /// `"internal"`).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Livelock { .. } => "livelock",
            SimError::Deadlock { .. } => "deadlock",
            SimError::InvariantViolation { .. } => "invariant_violation",
            SimError::CycleBudgetExceeded { .. } => "cycle_budget_exceeded",
            SimError::Internal { .. } => "internal",
        }
    }

    /// Cycle at which the failure was detected.
    pub fn cycle(&self) -> u64 {
        match self {
            SimError::Livelock { cycle, .. }
            | SimError::Deadlock { cycle, .. }
            | SimError::InvariantViolation { cycle, .. }
            | SimError::CycleBudgetExceeded { cycle, .. }
            | SimError::Internal { cycle, .. } => *cycle,
        }
    }

    /// The diagnostic snapshot, when the failure carries one.
    pub fn snapshot(&self) -> Option<&DiagSnapshot> {
        match self {
            SimError::Livelock { snapshot, .. }
            | SimError::Deadlock { snapshot, .. }
            | SimError::InvariantViolation { snapshot, .. } => Some(snapshot),
            _ => None,
        }
    }

    /// Serialises the error (kind, message, and snapshot if any) as a
    /// JSON object suitable for a failure dump file.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        push_kv(&mut s, "kind", &json_str(self.kind()));
        push_kv(&mut s, "cycle", &self.cycle().to_string());
        push_kv(&mut s, "message", &json_str(&self.to_string()));
        match self.snapshot() {
            Some(snap) => {
                s.push_str("  \"snapshot\": ");
                // Indent the nested object to keep the dump readable.
                let nested = snap.to_json().replace('\n', "\n  ");
                s.push_str(&nested);
                s.push('\n');
            }
            None => s.push_str("  \"snapshot\": null\n"),
        }
        s.push('}');
        s
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Livelock {
                cycle,
                watchdog_cycles,
                last_commit_cycle,
                ..
            } => write!(
                f,
                "livelock: no instruction retired for {watchdog_cycles} cycles \
                 (last commit at cycle {last_commit_cycle}, tripped at {cycle}) \
                 while the pipeline was still active"
            ),
            SimError::Deadlock {
                cycle,
                watchdog_cycles,
                last_commit_cycle,
                ..
            } => write!(
                f,
                "deadlock: no instruction retired for {watchdog_cycles} cycles \
                 (last commit at cycle {last_commit_cycle}, tripped at {cycle}) \
                 with the pipeline fully idle"
            ),
            SimError::InvariantViolation { cycle, what, .. } => {
                write!(f, "invariant violation at cycle {cycle}: {what}")
            }
            SimError::CycleBudgetExceeded {
                cycle,
                max_cycles,
                committed,
            } => write!(
                f,
                "cycle budget exceeded: {committed} instructions committed in \
                 {cycle} of {max_cycles} budgeted cycles without reaching halt"
            ),
            SimError::Internal { cycle, what } => {
                write!(f, "internal error at cycle {cycle}: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_cycles_are_exposed() {
        let e = SimError::CycleBudgetExceeded {
            cycle: 10,
            max_cycles: 10,
            committed: 3,
        };
        assert_eq!(e.kind(), "cycle_budget_exceeded");
        assert_eq!(e.cycle(), 10);
        assert!(e.snapshot().is_none());
        assert!(e.to_string().contains("without reaching halt"));
    }

    #[test]
    fn snapshot_json_contains_every_section() {
        let snap = DiagSnapshot {
            cycle: 42,
            committed: 7,
            rob_len: 3,
            rob_capacity: 32,
            rob_head_seq: Some(8),
            rob_head_pc: Some(0x1000),
            checkpoint_seqs: vec![9, 11],
            last_retired: vec![RetiredInst {
                seq: 7,
                pc: 0x0ffc,
                op: Op::Addi,
                cycle: 40,
            }],
            ..DiagSnapshot::default()
        };
        let json = snap.to_json();
        for key in [
            "\"cycle\"",
            "\"rob_len\"",
            "\"checkpoint_seqs\"",
            "\"last_retired\"",
            "\"fetch_halted\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let err = SimError::InvariantViolation {
            cycle: 42,
            what: "rob \"order\"".to_string(),
            snapshot: Box::new(snap),
        };
        let dump = err.to_json();
        assert!(dump.contains("\"kind\": \"invariant_violation\""));
        assert!(dump.contains("rob \\\"order\\\""), "escaping: {dump}");
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
